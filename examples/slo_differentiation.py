"""SLO differentiation: compare every controller on the paper's workload.

Runs a shortened version (9 of 18 periods, half-length) of the paper's
mixed workload under each controller — no control, DB2 QP static control,
MPL admission control, and the Query Scheduler — and prints a side-by-side
goal-attainment comparison, i.e. the condensed story of Figures 4-6.

Run with:  python examples/slo_differentiation.py
"""

from __future__ import annotations

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import run_experiment

CONTROLLERS = (
    ("none", "No class control (Fig. 4)"),
    ("qp", "DB2 QP priority control (Fig. 5)"),
    ("mpl", "MPL admission control ([5])"),
    ("qs", "Query Scheduler (Fig. 6)"),
)


def main() -> None:
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=120.0, num_periods=9),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=60.0),
        planner=PlannerConfig(control_interval=60.0),
    )

    rows = []
    for name, label in CONTROLLERS:
        print("running {} ...".format(label))
        result = run_experiment(controller=name, config=config)
        attainment = result.goal_attainment()
        class3_series = [
            v
            for v in result.collector.performance_series(
                next(c for c in result.classes if c.name == "class3")
            )
            if v is not None
        ]
        rows.append((label, attainment, max(class3_series)))

    print()
    print("{:<34} | {:>7} | {:>7} | {:>7} | {:>12}".format(
        "controller", "class1", "class2", "class3", "worst c3 rt"))
    print("-" * 82)
    for label, attainment, worst in rows:
        print("{:<34} | {:>6.0%} | {:>6.0%} | {:>6.0%} | {:>10.3f}s".format(
            label,
            attainment["class1"],
            attainment["class2"],
            attainment["class3"],
            worst,
        ))
    print()
    print("class goals: class1 velocity 0.40, class2 velocity 0.60, "
          "class3 avg response time 0.25s")


if __name__ == "__main__":
    main()
