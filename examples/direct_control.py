"""Direct in-engine control: the paper's future work, working.

Section 5 of the paper: "The most effective way to manage performance of
OLTP workload is to directly control it.  One approach is to implement the
control mechanism inside the DBMS itself."

This example builds the scenario indirect control cannot handle: *two* OLTP
streams — latency-critical payments and a low-importance batch-write storm.
Both bypass Query Patroller (interception would cost more than the
transactions themselves), so the paper's Query Scheduler cannot tell them
apart.  The in-engine gate can: when the storm arrives, the batch class is
throttled at admission and payments keep their SLO.

Run with:  python examples/direct_control.py
"""

from __future__ import annotations

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.service_class import ResponseTimeGoal, ServiceClass, VelocityGoal
from repro.experiments.runner import build_bundle, make_controller
from repro.workloads.schedule import PeriodSchedule
from repro.workloads.spec import QueryTemplate, WorkloadMix
from repro.workloads.tpch import tpch_mix


def scenario():
    classes = [
        ServiceClass("reports", "olap", VelocityGoal(0.5), importance=2),
        ServiceClass("payments", "oltp", ResponseTimeGoal(0.20), importance=3),
        ServiceClass("batchwrites", "oltp", ResponseTimeGoal(3.0), importance=1),
    ]
    mixes = {
        "reports": tpch_mix(),
        "payments": WorkloadMix("payments", [
            QueryTemplate("payment", "oltp", cpu_demand=0.012, io_demand=0.004,
                          variability=0.2),
        ]),
        "batchwrites": WorkloadMix("batchwrites", [
            QueryTemplate("bulk_write", "oltp", cpu_demand=0.030,
                          io_demand=0.012, variability=0.2),
        ]),
    }
    schedule = PeriodSchedule(
        90.0,
        {
            "reports": (3, 3, 3, 3),
            "payments": (8, 8, 8, 8),
            "batchwrites": (4, 40, 4, 40),  # periods 2 and 4: the storm
        },
    )
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=90.0, num_periods=4),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=45.0),
        planner=PlannerConfig(control_interval=45.0),
    )
    return classes, mixes, schedule, config


def run(controller_name):
    classes, mixes, schedule, config = scenario()
    bundle = build_bundle(config=config, schedule=schedule,
                          classes=classes, mixes=mixes)
    controller = make_controller(bundle, controller_name)
    controller.start()
    bundle.manager.start()
    bundle.run()
    return bundle


def main() -> None:
    print("running the batch-write storm without control, then with the")
    print("in-engine DirectScheduler (periods 2 and 4 are the storm)...")
    print()
    baseline = run("none")
    direct = run("direct")
    base_rt = baseline.collector.metric_series("payments", "response_time")
    direct_rt = direct.collector.metric_series("payments", "response_time")
    batch_none = baseline.collector.metric_series("batchwrites", "response_time")
    batch_direct = direct.collector.metric_series("batchwrites", "response_time")
    print("payments avg response time per period (goal 0.20s):")
    print("{:>8} | {:>10} | {:>10}".format("period", "no control", "direct"))
    print("-" * 36)
    for period in range(4):
        print("{:>8} | {:>10.3f} | {:>10.3f}".format(
            period + 1,
            base_rt[period] or float("nan"),
            direct_rt[period] or float("nan"),
        ))
    print()
    print("the rescue is paid for by the low-importance storm class:")
    print("  batchwrites storm rt: none={:.2f}s, direct={:.2f}s".format(
        batch_none[1] or float("nan"), batch_direct[1] or float("nan")))
    print()
    print(direct.controller.describe())


if __name__ == "__main__":
    main()
