"""Custom workloads: define your own classes, templates, goals and schedule.

Shows the library as a downstream user would adopt it: a reporting class
(big scans), an ETL class (medium batch queries), and an interactive
point-lookup class, each with its own SLO and importance, driven through
the Query Scheduler on a custom intensity schedule.

Run with:  python examples/custom_workload.py
"""

from __future__ import annotations

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.service_class import ResponseTimeGoal, ServiceClass, VelocityGoal
from repro.experiments.runner import build_bundle, make_controller
from repro.metrics.report import format_period_table, format_summary
from repro.workloads.schedule import PeriodSchedule
from repro.workloads.spec import QueryTemplate, WorkloadMix


def build_workloads():
    reporting = WorkloadMix(
        "reporting",
        [
            QueryTemplate("daily_rollup", "olap", cpu_demand=5.0, io_demand=9.0,
                          rounds=4, weight=2.0, parallelism=2),
            QueryTemplate("cohort_scan", "olap", cpu_demand=3.0, io_demand=6.0,
                          rounds=4, weight=3.0, parallelism=2),
            QueryTemplate("year_end", "olap", cpu_demand=9.0, io_demand=16.0,
                          rounds=4, weight=1.0, parallelism=2),
        ],
    )
    etl = WorkloadMix(
        "etl",
        [
            QueryTemplate("load_batch", "olap", cpu_demand=2.0, io_demand=5.0,
                          rounds=2, weight=3.0, parallelism=2),
            QueryTemplate("transform", "olap", cpu_demand=3.5, io_demand=4.0,
                          rounds=2, weight=2.0, parallelism=2),
        ],
    )
    lookups = WorkloadMix(
        "lookups",
        [
            QueryTemplate("point_read", "oltp", cpu_demand=0.008, io_demand=0.004,
                          weight=7.0),
            QueryTemplate("point_write", "oltp", cpu_demand=0.016, io_demand=0.006,
                          weight=3.0),
        ],
    )
    return reporting, etl, lookups


def main() -> None:
    reporting_mix, etl_mix, lookup_mix = build_workloads()
    classes = [
        ServiceClass("reporting", "olap", VelocityGoal(0.5), importance=1),
        ServiceClass("etl", "olap", VelocityGoal(0.7), importance=2),
        ServiceClass("lookups", "oltp", ResponseTimeGoal(0.20), importance=3),
    ]
    schedule = PeriodSchedule(
        90.0,
        {
            "reporting": (3, 3, 5, 5, 3, 3),
            "etl": (2, 4, 2, 4, 2, 4),
            "lookups": (10, 10, 22, 22, 10, 22),
        },
    )
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=90.0, num_periods=6),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=45.0),
        planner=PlannerConfig(control_interval=45.0),
    )

    bundle = build_bundle(
        config=config,
        schedule=schedule,
        classes=classes,
        mixes={
            "reporting": reporting_mix,
            "etl": etl_mix,
            "lookups": lookup_mix,
        },
    )
    scheduler = make_controller(bundle, "qs")
    scheduler.planner.add_plan_listener(bundle.collector.on_plan)
    scheduler.start()
    bundle.manager.start()
    bundle.run()

    print(scheduler.describe())
    print()
    print(format_period_table(bundle.collector, classes, title="Per-period metrics"))
    print()
    print(format_summary(bundle.collector, classes, title="Attainment"))
    print()
    print("Cost limits over time for the lookup class (time, timerons):")
    for time, limit in bundle.collector.plan_series("lookups"):
        print("  {:>6.0f}s  {:>8.0f}".format(time, limit))


if __name__ == "__main__":
    main()
