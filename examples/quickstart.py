"""Quickstart: run the Query Scheduler on a small mixed workload.

Builds the full simulated stack (DB2-like engine + Query Patroller +
TPC-H/TPC-C clients), installs the Query Scheduler, runs a few minutes of
simulated time, and prints per-class SLO attainment and the final plan.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_period_table, format_summary
from repro.workloads.schedule import PeriodSchedule


def main() -> None:
    # Four 90-second periods: OLTP load swings light -> heavy -> light -> heavy.
    schedule = PeriodSchedule(
        90.0,
        {
            "class1": (2, 3, 2, 3),
            "class2": (3, 4, 3, 4),
            "class3": (12, 25, 12, 25),
        },
    )
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=90.0, num_periods=4),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=45.0),
        planner=PlannerConfig(control_interval=45.0),
    )

    result = run_experiment(controller="qs", config=config, schedule=schedule)

    print(result.bundle.controller.describe())
    print()
    print(format_period_table(result.collector, result.classes,
                              title="Per-period goal metrics"))
    print()
    print(format_summary(result.collector, result.classes, title="Attainment"))
    print()
    plan = result.bundle.controller.plan
    print("Final scheduling plan (timerons):")
    for name, limit in sorted(plan.items()):
        print("  {:<8} {:>8.0f}".format(name, limit))
    print("  {:<8} {:>8.0f}  (system cost limit)".format("total", plan.system_cost_limit))


if __name__ == "__main__":
    main()
