"""Capacity planning: choose the system cost limit experimentally.

Reproduces the methodology of Section 2: "[the system cost limit] is
determined experimentally by plotting the curve of the throughput versus
the system cost limit to ensure the system running in a healthy state or
under-saturated."  Sweeps candidate limits under a heavy OLAP-only load,
prints the curve, and picks the knee.

Run with:  python examples/capacity_planning.py
"""

from __future__ import annotations

from repro.config import default_config
from repro.experiments.calibration import pick_knee_limit, sweep_system_cost_limit


def main() -> None:
    limits = [10_000.0, 15_000.0, 20_000.0, 25_000.0, 30_000.0, 40_000.0, 50_000.0]
    print("Sweeping system cost limits under a 32-client OLAP load...")
    curve = sweep_system_cost_limit(
        limits,
        config=default_config(),
        olap_clients=32,
        period_seconds=120.0,
        num_periods=3,
        warmup_periods=1,
    )

    print()
    print("{:>12} | {:>12} | {}".format("limit (tim)", "queries/sec", "bar"))
    print("-" * 60)
    peak = max(t for _, t in curve)
    for limit, throughput in curve:
        bar = "#" * int(30 * throughput / peak) if peak > 0 else ""
        print("{:>12.0f} | {:>12.4f} | {}".format(limit, throughput, bar))

    knee = pick_knee_limit(curve, tolerance=0.05)
    print()
    print("Suggested system cost limit (throughput knee): {:.0f} timerons".format(knee))
    print("The paper chose 30,000 timerons for its testbed the same way.")


if __name__ == "__main__":
    main()
