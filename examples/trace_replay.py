"""Trace record & replay: compare controllers on identical offered load.

Records the exact arrival stream of a mixed workload once, then replays it
against two differently controlled systems — so the comparison is free of
closed-loop feedback (where a slow system generates fewer arrivals and
flatters itself).

Run with:  python examples/trace_replay.py
"""

from __future__ import annotations

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import build_bundle, make_controller
from repro.metrics.report import format_summary
from repro.workloads.schedule import PeriodSchedule
from repro.workloads.trace import TraceRecorder, TraceReplayer


def config():
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=60.0, num_periods=4),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=30.0),
        planner=PlannerConfig(control_interval=30.0),
    )


def schedule():
    return PeriodSchedule(
        60.0,
        {
            "class1": (2, 3, 2, 3),
            "class2": (3, 4, 3, 4),
            "class3": (10, 22, 10, 22),
        },
    )


def record_trace():
    """Drive the closed-loop workload once (no control) and capture it."""
    bundle = build_bundle(config=config(), schedule=schedule())
    recorder = TraceRecorder(bundle.sim, bundle.patroller)
    controller = make_controller(bundle, "none")
    controller.start()
    bundle.manager.start()
    bundle.run()
    return recorder.trace


def replay_under(trace, controller_name):
    """Replay the captured arrivals under a given controller."""
    bundle = build_bundle(config=config(), schedule=schedule())
    controller = make_controller(bundle, controller_name)
    controller.start()
    # NOTE: no manager.start() — the replayer is the only load source.
    replayer = TraceReplayer(bundle.sim, bundle.patroller, bundle.factory, trace)
    replayer.start()
    bundle.run()
    return bundle


def main() -> None:
    print("recording trace (no control run)...")
    trace = record_trace()
    print("captured {} arrivals over {:.0f}s across classes {}".format(
        len(trace), trace.duration, ", ".join(trace.classes())))
    print()
    for name in ("none", "qs"):
        print("replaying under {!r}...".format(name))
        bundle = replay_under(trace, name)
        print(format_summary(bundle.collector, bundle.classes,
                             title="  results ({}):".format(name)))
        print()


if __name__ == "__main__":
    main()
