"""Sensitivity analysis: how robust is the controller to its knobs?

Uses the generic configuration sweep to answer two practical questions on
a shortened paper workload:

1. how does the control interval trade reaction speed for stability?
2. how sensitive is goal attainment to the thrashing knee's position
   (i.e. to how well the system cost limit was calibrated)?

Both sweeps fan their runs over worker processes (``jobs=None`` = one per
CPU); the results are identical to a serial run, just faster.

Run with:  python examples/sensitivity_analysis.py
"""

from __future__ import annotations

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.sensitivity import format_sweep, sweep


def main() -> None:
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=120.0, num_periods=6),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=60.0),
        planner=PlannerConfig(control_interval=60.0),
    )
    class_names = ["class1", "class2", "class3"]

    print("sweeping planner.control_interval ...")
    intervals = sweep(
        "planner.control_interval", [30.0, 60.0, 120.0],
        controller="qs", config=config, jobs=None,
    )
    print(format_sweep("planner.control_interval", intervals, class_names))
    print()

    print("sweeping overload.knee_cost ...")
    knees = sweep(
        "overload.knee_cost", [18_000.0, 26_000.0, 34_000.0],
        controller="qs", config=config, jobs=None,
    )
    print(format_sweep("overload.knee_cost", knees, class_names))
    print()
    print("(values are per-class goal attainment across the 6 periods)")


if __name__ == "__main__":
    main()
