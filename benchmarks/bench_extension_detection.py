"""Extension: explicit workload detection (Section 2's first process).

The paper's framework is "workload detection and workload control", but the
evaluated prototype re-plans on a fixed interval — detection is implicit in
the sampling.  This bench makes it explicit: with the control interval
slowed to one decision per workload period (the worst case for a fixed
cadence), an arrival-rate change detector triggers early re-planning and
recovers most of the lost OLTP goal attainment.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import run_experiment


def _slow_cadence_config():
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=240.0, num_periods=9),
        planner=PlannerConfig(control_interval=240.0),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=60.0),
    )


def test_detection_recovers_slow_cadence(benchmark, report):
    config = _slow_cadence_config()

    def run_both():
        return (
            run_experiment(controller="qs", config=config),
            run_experiment(controller="qs_detect", config=config),
        )

    fixed, detecting = run_once(benchmark, run_both)
    report("")
    report("=== Extension: workload detection at one plan per period ===")
    report("{:>12} | {:>8} | {:>8} | {:>8} | {:>14}".format(
        "controller", "class1", "class2", "class3", "early replans"))
    report("-" * 64)
    for label, result in (("fixed", fixed), ("detecting", detecting)):
        att = result.goal_attainment()
        controller = result.bundle.controller
        early = controller.planner.early_triggers
        report("{:>12} | {:>7.0%} | {:>7.0%} | {:>7.0%} | {:>14}".format(
            label, att["class1"], att["class2"], att["class3"], early))

    detector = detecting.bundle.controller.detector
    assert detector is not None
    report("shifts detected: {} over {} buckets".format(
        len(detector.shifts), detector.buckets_seen))

    # Detection actually fired and triggered off-schedule re-planning.
    assert len(detector.shifts) > 0
    assert detecting.bundle.controller.planner.early_triggers > 0
    # And it pays: the OLTP class does at least as well as the fixed
    # cadence, typically recovering the heavy-period misses.
    assert (
        detecting.goal_attainment()["class3"]
        >= fixed.goal_attainment()["class3"]
    )
