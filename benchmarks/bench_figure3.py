"""Figure 3: the 18-period workload (client counts per class).

The exact counts are a constrained reconstruction (DESIGN.md §2); this
bench prints the schedule and asserts every constraint the paper states.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure3


def test_workload_schedule(benchmark, report):
    counts = run_once(benchmark, figure3)
    report("")
    report("=== Figure 3: workload (number of clients per period) ===")
    report("{:>7} | {:>7} | {:>7} | {:>7}".format("period", "class1", "class2", "class3"))
    report("-" * 40)
    for period in range(18):
        report(
            "{:>7} | {:>7} | {:>7} | {:>7}".format(
                period + 1,
                counts["class1"][period],
                counts["class2"][period],
                counts["class3"][period],
            )
        )

    # Stated constraints (Section 4):
    assert len(counts["class3"]) == 18
    assert all(2 <= c <= 6 for c in counts["class1"])
    assert all(2 <= c <= 6 for c in counts["class2"])
    assert all(15 <= c <= 25 for c in counts["class3"])
    # OLTP intensity cycle: highs at 3,6,...,18, lows at 1,4,...,16.
    assert all(counts["class3"][p - 1] == 25 for p in (3, 6, 9, 12, 15, 18))
    assert all(counts["class3"][p - 1] == 15 for p in (1, 4, 7, 10, 13, 16))
    # Period 18 is the heaviest: 2 + 6 + 25 clients.
    assert (counts["class1"][17], counts["class2"][17], counts["class3"][17]) == (2, 6, 25)
