"""Extension: MPL-based admission control versus cost-based control.

The paper positions its cost-based control against Schroeder et al.'s
MPL-based admission control ([5]): counting queries is cheap but
cost-blind, so a slot admits a monster as readily as a mouse.  This bench
runs both controllers (and the no-control baseline) on the same shortened
paper workload and compares differentiated goal attainment.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.runner import run_experiment

CONTROLLERS = ("none", "mpl", "qs")


def test_mpl_vs_cost_based(benchmark, report, ablation_config):
    def sweep():
        rows = {}
        for controller in CONTROLLERS:
            result = run_experiment(controller=controller, config=ablation_config)
            rows[controller] = result.goal_attainment()
        return rows

    rows = run_once(benchmark, sweep)
    report("")
    report("=== Extension: MPL vs cost-based control (goal attainment) ===")
    report("{:>8} | {:>8} | {:>8} | {:>8}".format(
        "control", "class1", "class2", "class3"))
    report("-" * 44)
    for controller in CONTROLLERS:
        att = rows[controller]
        report("{:>8} | {:>7.0%} | {:>7.0%} | {:>7.0%}".format(
            controller, att["class1"], att["class2"], att["class3"]))

    # Any admission control beats none for the OLTP class...
    assert rows["mpl"]["class3"] >= rows["none"]["class3"]
    # ...and the cost-based Query Scheduler is at least as good as the
    # cost-blind MPL controller on the class it is designed to protect.
    assert rows["qs"]["class3"] >= rows["mpl"]["class3"]
