"""Replication: the headline comparison across seeds.

The paper reports one run per controller.  This bench re-runs the
(shortened) paper workload under each controller over several seeds and
reports mean +/- std goal attainment — establishing that the QS > QP >
no-control ordering on the OLTP class is not a single-seed accident.

The controller x seed cross-product fans out over worker processes via
``jobs=``; the second bench pins the contract that parallel execution
changes wall-clock time only, never results.
"""

from __future__ import annotations

import os
import time

from benchmarks.conftest import run_once
from repro.experiments.replication import compare, format_comparison, replicate

SEEDS = (7, 21, 42)
CONTROLLERS = ("none", "qp", "qs")
JOBS = min(4, os.cpu_count() or 1)


def test_controller_ordering_across_seeds(benchmark, report, ablation_config):
    summaries = run_once(
        benchmark,
        lambda: compare(CONTROLLERS, seeds=SEEDS, config=ablation_config, jobs=JOBS),
    )
    report("")
    report("=== Replication: attainment across seeds {} (jobs={}) ===".format(
        SEEDS, JOBS))
    report(format_comparison(summaries, ["class1", "class2", "class3"]))

    for summary in summaries.values():
        assert summary.errors == []
    qs = summaries["qs"]
    qp = summaries["qp"]
    none = summaries["none"]
    # The ordering of mean class-3 attainment must hold across seeds.
    assert qs.attainment_mean("class3") >= qp.attainment_mean("class3")
    assert qp.attainment_mean("class3") >= none.attainment_mean("class3") - 0.05
    assert qs.attainment_mean("class3") > none.attainment_mean("class3")
    # And QS's advantage exceeds its own across-seed noise.
    gap = qs.attainment_mean("class3") - none.attainment_mean("class3")
    assert gap > qs.attainment_std("class3")


def test_parallel_replicate_matches_serial(benchmark, report, ablation_config):
    """Acceptance pin: jobs=4 gives identical aggregates to jobs=1.

    Wall-clock times are reported (the speedup is the point of the
    subsystem) but deliberately not asserted — timing assertions flake on
    loaded CI runners.
    """
    seeds = (7, 21, 42, 63)

    def paired():
        start = time.perf_counter()
        serial = replicate("qs", seeds, config=ablation_config, jobs=1)
        mid = time.perf_counter()
        parallel = replicate("qs", seeds, config=ablation_config, jobs=JOBS)
        end = time.perf_counter()
        return serial, parallel, mid - start, end - mid

    serial, parallel, serial_s, parallel_s = run_once(benchmark, paired)
    report("")
    report("=== Replication: serial vs parallel ({} seeds) ===".format(len(seeds)))
    report("jobs=1: {:6.1f} s   jobs={}: {:6.1f} s   speedup: {:.2f}x".format(
        serial_s, JOBS, parallel_s, serial_s / parallel_s if parallel_s else 0.0))

    assert serial.errors == [] and parallel.errors == []
    assert set(serial.per_class) == set(parallel.per_class)
    for name, stats in serial.per_class.items():
        other = parallel.per_class[name]
        # Bitwise identity, not approximate: the workers run the exact
        # same deterministic simulations and the aggregation order is
        # pinned to seed order.
        assert stats.attainment.mean == other.attainment.mean
        assert stats.attainment.stddev == other.attainment.stddev
        assert stats.metric_mean.mean == other.metric_mean.mean
        assert stats.metric_mean.stddev == other.metric_mean.stddev
