"""Replication: the headline comparison across seeds.

The paper reports one run per controller.  This bench re-runs the
(shortened) paper workload under each controller over several seeds and
reports mean +/- std goal attainment — establishing that the QS > QP >
no-control ordering on the OLTP class is not a single-seed accident.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.replication import compare, format_comparison

SEEDS = (7, 21, 42)
CONTROLLERS = ("none", "qp", "qs")


def test_controller_ordering_across_seeds(benchmark, report, ablation_config):
    summaries = run_once(
        benchmark,
        lambda: compare(CONTROLLERS, seeds=SEEDS, config=ablation_config),
    )
    report("")
    report("=== Replication: attainment across seeds {} ===".format(SEEDS))
    report(format_comparison(summaries, ["class1", "class2", "class3"]))

    qs = summaries["qs"]
    qp = summaries["qp"]
    none = summaries["none"]
    # The ordering of mean class-3 attainment must hold across seeds.
    assert qs.attainment_mean("class3") >= qp.attainment_mean("class3")
    assert qp.attainment_mean("class3") >= none.attainment_mean("class3") - 0.05
    assert qs.attainment_mean("class3") > none.attainment_mean("class3")
    # And QS's advantage exceeds its own across-seed noise.
    gap = qs.attainment_mean("class3") - none.attainment_mean("class3")
    assert gap > qs.attainment_std("class3")
