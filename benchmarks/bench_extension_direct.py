"""Extension: direct in-engine control (the paper's future work).

Section 5: "The most effective way to manage performance of OLTP workload
is to directly control it.  One approach is to implement the control
mechanism inside the DBMS itself."

The indirect scheme cannot act on OLTP traffic at all — it bypasses Query
Patroller — so it cannot differentiate between two OLTP classes: a
latency-critical payments stream and a low-importance batch-write storm
hammer the same CPUs as equals.  The in-engine gate (zero interception
overhead) can throttle the storm.  This bench runs that scenario with no
control versus direct control and shows the payments SLO being rescued at
the storm's expense.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.service_class import ResponseTimeGoal, ServiceClass, VelocityGoal
from repro.experiments.runner import build_bundle, make_controller
from repro.workloads.schedule import PeriodSchedule
from repro.workloads.spec import QueryTemplate, WorkloadMix
from repro.workloads.tpch import tpch_mix


def _scenario_config():
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=120.0, num_periods=4),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=60.0),
        planner=PlannerConfig(control_interval=60.0),
    )


def _classes():
    return [
        ServiceClass("reports", "olap", VelocityGoal(0.5), importance=2),
        ServiceClass("payments", "oltp", ResponseTimeGoal(0.20), importance=3),
        ServiceClass("batchwrites", "oltp", ResponseTimeGoal(3.0), importance=1),
    ]


def _mixes():
    payments = WorkloadMix(
        "payments",
        [QueryTemplate("payment", "oltp", cpu_demand=0.012, io_demand=0.004,
                       variability=0.2)],
    )
    batch = WorkloadMix(
        "batchwrites",
        [QueryTemplate("bulk_write", "oltp", cpu_demand=0.030, io_demand=0.012,
                       variability=0.2)],
    )
    return {"reports": tpch_mix(), "payments": payments, "batchwrites": batch}


def _schedule():
    # Periods 2 and 4 are the batch-write storm.
    return PeriodSchedule(
        120.0,
        {
            "reports": (3, 3, 3, 3),
            "payments": (8, 8, 8, 8),
            "batchwrites": (4, 40, 4, 40),
        },
    )


def _run(controller_name):
    bundle = build_bundle(
        config=_scenario_config(),
        schedule=_schedule(),
        classes=_classes(),
        mixes=_mixes(),
    )
    controller = make_controller(bundle, controller_name)
    controller.start()
    bundle.manager.start()
    bundle.run()
    return bundle


def test_direct_control_rescues_latency_critical_oltp(benchmark, report):
    def run_both():
        return _run("none"), _run("direct")

    baseline, direct = run_once(benchmark, run_both)
    report("")
    report("=== Extension: direct in-engine control vs no control ===")
    report("payments avg rt per period (goal 0.20s):")
    base_rt = baseline.collector.metric_series("payments", "response_time")
    direct_rt = direct.collector.metric_series("payments", "response_time")
    report("{:>10} | {:>8} | {:>8}".format("period", "none", "direct"))
    report("-" * 34)
    for period in range(4):
        report("{:>10} | {:>8.3f} | {:>8.3f}".format(
            period + 1,
            base_rt[period] if base_rt[period] is not None else float("nan"),
            direct_rt[period] if direct_rt[period] is not None else float("nan"),
        ))
    storm = (1, 3)  # 0-based storm periods

    # Without any control the storm breaks the payments SLO...
    for period in storm:
        assert base_rt[period] is not None and base_rt[period] > 0.20
    # ...with direct in-engine control payments stay at (or near) goal.
    for period in storm:
        assert direct_rt[period] is not None
        assert direct_rt[period] < base_rt[period]
        assert direct_rt[period] <= 0.20 * 1.3

    # The rescue comes from throttling the storm, not magic: the batch
    # class is queued at the gate during storm periods.
    batch_rt = direct.collector.metric_series("batchwrites", "response_time")
    base_batch_rt = baseline.collector.metric_series("batchwrites", "response_time")
    assert batch_rt[1] is not None and base_batch_rt[1] is not None
    assert batch_rt[1] > base_batch_rt[1]
    report("batchwrites storm-period rt: none={:.3f}s direct={:.3f}s "
           "(intentionally sacrificed)".format(base_batch_rt[1], batch_rt[1]))

    # And the gate added no interception overhead in calm periods.
    assert direct_rt[0] is not None and direct_rt[0] < 0.20
