"""Figure 7: adjustment of class cost limits under Query Scheduler control.

Paper claims reproduced:

* Class 3 (highest importance) possesses *few* resources while its
  workload is light (periods 1, 4, 7, 10, 13, 16) — importance is not
  priority;
* when its intensity is high (3, 6, 9, 12, 15, 18) the scheduler shifts a
  large share — around half the system cost limit — to Class 3;
* in period 18 Class 3's limit is *lower* than in periods 3, 6 and 9 even
  though its own intensity is the same, because the competing classes are
  at their heaviest and the trade-off is fiercest.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure6, figure7
from repro.metrics.report import format_plan_table

HEAVY = (3, 6, 9, 12, 15, 18)
LIGHT = (1, 4, 7, 10, 13, 16)


def _end_of_period_limits(result, class_name):
    """The last planned limit inside each period (lag-free view)."""
    series = result.collector.plan_series(class_name)
    period_seconds = result.schedule.period_seconds
    limits = []
    for period in range(result.schedule.num_periods):
        lo, hi = period * period_seconds, (period + 1) * period_seconds
        inside = [limit for t, limit in series if lo < t <= hi]
        limits.append(inside[-1] if inside else None)
    return limits


def test_cost_limit_adjustment(benchmark, report, paper_config):
    result = run_once(benchmark, lambda: figure6(paper_config))
    plans = figure7(result=result)
    report("")
    report(
        format_plan_table(
            result.collector,
            ["class1", "class2", "class3"],
            title="=== Figure 7: class cost limits (period means) under QS ===",
        )
    )

    end_limits = _end_of_period_limits(result, "class3")
    report("class3 end-of-period limits: {}".format(
        ["-" if v is None else "{:.0f}".format(v) for v in end_limits]
    ))

    heavy = [end_limits[p - 1] for p in HEAVY if end_limits[p - 1] is not None]
    light = [end_limits[p - 1] for p in LIGHT if end_limits[p - 1] is not None]
    assert heavy and light
    heavy_mean = sum(heavy) / len(heavy)
    light_mean = sum(light) / len(light)
    report("class3 mean limit: heavy={:.0f}, light={:.0f}".format(heavy_mean, light_mean))

    # Few resources when light, a large share when heavy.
    assert heavy_mean > 1.5 * light_mean
    system = result.config.system_cost_limit
    assert heavy_mean > 0.35 * system  # "more than half" in the paper; we
    # assert a conservative band since the absolute share is calibration-
    # dependent (see EXPERIMENTS.md).
    assert light_mean < 0.40 * system

    # The plan always sums to (at most) the system cost limit.
    for _, limits in result.collector._plan_points:
        assert sum(limits.values()) <= system + 1e-6

    # Figure 7's payload covers all three classes.
    assert set(plans) == {"class1", "class2", "class3"}
