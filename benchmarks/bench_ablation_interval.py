"""Ablation: control-interval sensitivity of the Scheduling Planner.

DESIGN.md calls out the re-planning cadence as a key design choice: too
slow and the controller lags the workload's period structure; too fast and
it chases measurement noise.  This bench sweeps the control interval on a
shortened paper workload and reports per-class goal attainment.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import sweep

INTERVALS = (30.0, 60.0, 120.0)
JOBS = min(len(INTERVALS), os.cpu_count() or 1)


def test_control_interval_sweep(benchmark, report, ablation_config):
    rows = dict(run_once(
        benchmark,
        lambda: sweep(
            "planner.control_interval", INTERVALS,
            controller="qs", config=ablation_config, jobs=JOBS,
        ),
    ))
    report("")
    report("=== Ablation: control interval vs goal attainment ===")
    report("{:>14} | {:>8} | {:>8} | {:>8}".format(
        "interval (s)", "class1", "class2", "class3"))
    report("-" * 50)
    for interval in INTERVALS:
        att = rows[interval]
        report("{:>14.0f} | {:>7.0%} | {:>7.0%} | {:>7.0%}".format(
            interval, att["class1"], att["class2"], att["class3"]))

    # Every cadence must keep the controller functional for the OLTP class.
    for interval in INTERVALS:
        assert rows[interval]["class3"] >= 0.4
    # The slowest cadence cannot beat the best reactive cadence on the
    # OLTP class: one decision per period means reacting a period late.
    best_fast = max(rows[30.0]["class3"], rows[60.0]["class3"])
    assert rows[120.0]["class3"] <= best_fast + 0.15
