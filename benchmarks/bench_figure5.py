"""Figure 5: DB2 Query Patroller priority control (static).

Paper claims reproduced:

* with priority control on, Class 2 performs better than Class 1
  (priorities mirror the classes' importance);
* the static OLAP cost limit cannot react to OLTP intensity, so Class 3
  keeps missing its goal in the heavy-OLTP periods (3, 6, 9, 12, 15, 18);
* with priority control off, the result resembles no control at all.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure5
from repro.metrics.report import format_period_table, format_summary

HEAVY_PERIODS = (3, 6, 9, 12, 15, 18)


def test_qp_priority_control(benchmark, report, paper_config):
    result = run_once(benchmark, lambda: figure5(paper_config, priority_control=True))
    report("")
    report(
        format_period_table(
            result.collector,
            result.classes,
            title="=== Figure 5: DB2 QP priority control ===",
        )
    )
    report(format_summary(result.collector, result.classes))

    class3 = next(c for c in result.classes if c.name == "class3")
    series3 = result.collector.performance_series(class3)
    heavy_misses = sum(
        1
        for period in HEAVY_PERIODS
        if series3[period - 1] is not None and series3[period - 1] > class3.goal.target
    )
    report("class3 heavy-period misses: {}/6".format(heavy_misses))
    assert heavy_misses >= 5  # "always missed during periods 3, 6, 9, 12, 15, 18"

    # Class 2 beats Class 1 in the (large) majority of periods.
    s1 = result.collector.metric_series("class1", "velocity")
    s2 = result.collector.metric_series("class2", "velocity")
    comparable = [(a, b) for a, b in zip(s1, s2) if a is not None and b is not None]
    wins = sum(1 for a, b in comparable if b >= a)
    report("class2 >= class1 velocity in {}/{} periods".format(wins, len(comparable)))
    assert wins >= len(comparable) * 0.6


def test_qp_without_priorities_resembles_no_control(benchmark, report, paper_config):
    """Section 4.2.2: 'the performance was similar to the case with no
    control' when priority control is off."""
    result = run_once(benchmark, lambda: figure5(paper_config, priority_control=False))
    report("")
    report(
        format_period_table(
            result.collector,
            result.classes,
            title="=== Figure 5 (variant): QP, priority control OFF ===",
        )
    )
    class3 = next(c for c in result.classes if c.name == "class3")
    series3 = result.collector.performance_series(class3)
    heavy_misses = sum(
        1
        for period in HEAVY_PERIODS
        if series3[period - 1] is not None and series3[period - 1] > class3.goal.target
    )
    assert heavy_misses >= 5
    # Both OLAP classes keep velocities in the same (high) band.
    s1 = [v for v in result.collector.metric_series("class1", "velocity") if v is not None]
    s2 = [v for v in result.collector.metric_series("class2", "velocity") if v is not None]
    assert abs(sum(s1) / len(s1) - sum(s2) / len(s2)) < 0.12
