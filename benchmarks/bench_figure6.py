"""Figure 6: Query Scheduler control (the paper's system).

Paper claims reproduced:

* Class 3 meets its performance goal nearly all the time, and *oscillates
  around* the goal when its workload intensity is high;
* Class 3 meets its goal in the light and medium OLTP periods;
* Class 2 performs better than Class 1 in most periods;
* both OLAP classes still make progress (velocities stay well above zero).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure6
from repro.metrics.report import format_period_table, format_summary

HEAVY = (3, 6, 9, 12, 15, 18)
MEDIUM = (2, 5, 8, 11, 14, 17)
LIGHT = (1, 4, 7, 10, 13, 16)


def test_query_scheduler_control(benchmark, report, paper_config):
    result = run_once(benchmark, lambda: figure6(paper_config))
    report("")
    report(
        format_period_table(
            result.collector,
            result.classes,
            title="=== Figure 6: Query Scheduler control ===",
        )
    )
    report(format_summary(result.collector, result.classes))

    class3 = next(c for c in result.classes if c.name == "class3")
    series3 = result.collector.performance_series(class3)
    goal = class3.goal.target

    # Light + medium periods: goal met (nearly) everywhere.
    calm = [series3[p - 1] for p in LIGHT + MEDIUM if series3[p - 1] is not None]
    calm_hits = sum(1 for v in calm if v <= goal)
    report("class3 goal hits in light+medium periods: {}/{}".format(calm_hits, len(calm)))
    assert calm_hits >= len(calm) - 2

    # Heavy periods: oscillates *around* the goal — every value inside a
    # tight band around it, not blowing up like the baselines.
    heavy = [series3[p - 1] for p in HEAVY if series3[p - 1] is not None]
    report("class3 heavy-period response times: {}".format(
        ["{:.3f}".format(v) for v in heavy]
    ))
    assert all(v <= goal * 1.25 for v in heavy)
    assert max(heavy) <= goal * 1.25 and min(heavy) >= goal * 0.6

    # Overall attainment is high ("meets its performance goal nearly all
    # the time").
    attainment = result.collector.goal_attainment(class3)
    report("class3 attainment: {:.0%}".format(attainment))
    assert attainment >= 0.65

    # Differentiated OLAP service: Class 2 beats Class 1 in most periods.
    s1 = result.collector.metric_series("class1", "velocity")
    s2 = result.collector.metric_series("class2", "velocity")
    comparable = [(a, b) for a, b in zip(s1, s2) if a is not None and b is not None]
    wins = sum(1 for a, b in comparable if b >= a)
    report("class2 >= class1 velocity in {}/{} periods".format(wins, len(comparable)))
    assert wins > len(comparable) / 2

    # OLAP classes keep making progress.
    for name in ("class1", "class2"):
        values = [v for v in result.collector.metric_series(name, "velocity") if v is not None]
        assert sum(values) / len(values) > 0.25
