"""Figure 4: performance with no class control.

Only the system cost limit is enforced.  Paper claims reproduced:

* no service differentiation — Class 1 and Class 2 track each other;
* Class 3 (OLTP) misses its 0.25 s goal whenever its own intensity is high
  because nothing throttles the competing OLAP load.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.figures import figure4
from repro.metrics.report import format_period_table, format_summary

HEAVY_PERIODS = (3, 6, 9, 12, 15, 18)


def test_no_class_control(benchmark, report, paper_config):
    result = run_once(benchmark, lambda: figure4(paper_config))
    report("")
    report(
        format_period_table(
            result.collector,
            result.classes,
            title="=== Figure 4: no class control ===",
        )
    )
    report(format_summary(result.collector, result.classes))

    class3 = next(c for c in result.classes if c.name == "class3")
    series3 = result.collector.performance_series(class3)
    # Class 3 misses its goal in every heavy-OLTP period.
    for period in HEAVY_PERIODS:
        value = series3[period - 1]
        assert value is not None and value > class3.goal.target, (
            "expected a goal miss in heavy period {}".format(period)
        )
    # ... and meets it in the light periods (nothing else is saturated).
    light_hits = sum(
        1
        for period in (1, 4, 7, 10, 13, 16)
        if series3[period - 1] is not None and series3[period - 1] <= class3.goal.target
    )
    assert light_hits >= 5

    # No differentiation between the OLAP classes.
    s1 = result.collector.metric_series("class1", "velocity")
    s2 = result.collector.metric_series("class2", "velocity")
    pairs = [(a, b) for a, b in zip(s1, s2) if a is not None and b is not None]
    mean_gap = sum(abs(a - b) for a, b in pairs) / len(pairs)
    report("mean |class1 - class2| velocity gap: {:.3f}".format(mean_gap))
    assert mean_gap < 0.10
