"""Ablation: utility-function family.

The framework expresses goals and importance through utility functions
(Section 2).  This bench runs the Query Scheduler with each provided family
on the shortened paper workload and compares per-class goal attainment —
the shared contract (importance-weighted below goal, importance-free above)
should make all three families behave similarly, with the step family the
most brittle because its search surface is nearly flat below goal.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import sweep

FAMILIES = ("piecewise", "sigmoid", "step")
JOBS = min(len(FAMILIES), os.cpu_count() or 1)


def test_utility_family_sweep(benchmark, report, ablation_config):
    rows = dict(run_once(
        benchmark,
        lambda: sweep(
            "planner.utility", FAMILIES,
            controller="qs", config=ablation_config, jobs=JOBS,
        ),
    ))
    report("")
    report("=== Ablation: utility family vs goal attainment ===")
    report("{:>12} | {:>8} | {:>8} | {:>8}".format("family", "class1", "class2", "class3"))
    report("-" * 48)
    for family in FAMILIES:
        att = rows[family]
        report("{:>12} | {:>7.0%} | {:>7.0%} | {:>7.0%}".format(
            family, att["class1"], att["class2"], att["class3"]))

    # The default (piecewise) family must protect the OLTP class well.
    assert rows["piecewise"]["class3"] >= 0.5
    # Each family must keep the controller functional (no class collapses).
    for family in FAMILIES:
        total = sum(rows[family].values())
        assert total >= 1.2, "family {} collapsed: {}".format(family, rows[family])
