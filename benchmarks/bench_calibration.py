"""System-cost-limit calibration (Section 2, methodology from [4]).

Regenerates the throughput-vs-system-cost-limit curve the paper's authors
used to choose the 30,000-timeron system cost limit: throughput must rise
while under-saturated and flatten/decline past the thrashing knee, with the
knee in the neighbourhood of the chosen limit.
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.experiments.calibration import pick_knee_limit, sweep_system_cost_limit

LIMITS = (10_000.0, 20_000.0, 30_000.0, 40_000.0, 50_000.0, 60_000.0)


def test_throughput_vs_system_cost_limit(benchmark, report, paper_config):
    curve = run_once(
        benchmark,
        lambda: sweep_system_cost_limit(
            LIMITS,
            config=paper_config,
            olap_clients=32,
            period_seconds=120.0,
            num_periods=3,
            warmup_periods=1,
        ),
    )
    report("")
    report("=== Calibration: OLAP throughput vs system cost limit ===")
    report("{:>12} | {:>14}".format("limit (tim)", "queries/sec"))
    report("-" * 30)
    for limit, throughput in curve:
        report("{:>12.0f} | {:>14.4f}".format(limit, throughput))
    knee = pick_knee_limit(curve, tolerance=0.05)
    report("knee (within 5% of peak): {:.0f} timerons".format(knee))
    report("paper's chosen system cost limit: 30000 timerons")

    throughputs = dict(curve)
    # Under-saturated region: throughput strictly grows.
    assert throughputs[20_000.0] > throughputs[10_000.0]
    # Past the knee the curve flattens or declines: the last point must not
    # meaningfully beat the best mid-range point.
    peak = max(throughputs.values())
    assert throughputs[60_000.0] <= peak * 1.02
    # The knee lands in the neighbourhood of the paper's chosen limit.
    assert 20_000.0 <= knee <= 40_000.0
