"""Ablation: optimizer cost-estimation error.

Section 5: "Cost-based resource allocation is somehow inaccurate.
Estimating the resource demands of a query is the ultimate solution."  This
bench sweeps the optimizer's multiplicative estimation noise and measures
how goal attainment degrades — quantifying how much the framework's
effectiveness depends on estimate quality.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import sweep

SIGMAS = (0.0, 0.1, 0.3, 0.6)
JOBS = min(len(SIGMAS), os.cpu_count() or 1)


def test_cost_noise_sweep(benchmark, report, ablation_config):
    rows = dict(run_once(
        benchmark,
        lambda: sweep(
            "optimizer.noise_sigma", SIGMAS,
            controller="qs", config=ablation_config, jobs=JOBS,
        ),
    ))
    report("")
    report("=== Ablation: optimizer noise (sigma) vs goal attainment ===")
    report("{:>8} | {:>8} | {:>8} | {:>8}".format("sigma", "class1", "class2", "class3"))
    report("-" * 44)
    for sigma in SIGMAS:
        att = rows[sigma]
        report("{:>8.1f} | {:>7.0%} | {:>7.0%} | {:>7.0%}".format(
            sigma, att["class1"], att["class2"], att["class3"]))

    # Exact estimates keep the controller effective.
    assert rows[0.0]["class3"] >= 0.5
    # The controller must degrade gracefully, not collapse, under heavy
    # estimation error (release decisions stay cost-bounded on average).
    assert rows[0.6]["class3"] >= 0.25
    mean_attainment = {
        sigma: sum(att.values()) / len(att) for sigma, att in rows.items()
    }
    # Large noise should not *improve* overall attainment vs no noise.
    assert mean_attainment[0.6] <= mean_attainment[0.0] + 0.15
