"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables/figures and *prints* the
rows the paper reports (through pytest's capture so they appear in the
tee'd bench log), then asserts the shape claims.  ``benchmark.pedantic``
with a single round keeps pytest-benchmark's timing wrapper without
re-simulating experiments that take tens of seconds.
"""

from __future__ import annotations

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)


@pytest.fixture
def report(request):
    """Print through pytest's output capture (visible in the bench log)."""
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _print(text: str) -> None:
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(text, flush=True)
        else:  # pragma: no cover - capture plugin always present under pytest
            print(text, flush=True)

    return _print


@pytest.fixture
def paper_config():
    """The full-fidelity configuration for the Figure 4-7 runs."""
    return default_config()


@pytest.fixture
def ablation_config():
    """A lighter configuration (half-length periods, 9 of 18 periods)
    for the ablation sweeps, which each run several experiments."""
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=120.0, num_periods=9),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=60.0),
        planner=PlannerConfig(control_interval=60.0),
    )


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
