"""Figure 2: OLTP response time vs total OLAP cost limit.

Paper claims reproduced here:

* average OLTP response time is *almost linear* in the total OLAP cost
  limit while the system is under-saturated (below ~30K timerons);
* more OLTP clients / more OLAP clients shift the curve upward;
* the fitted slope is the constant ``s`` of the OLTP performance model.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import run_once
from repro.experiments.figures import FIGURE2_LIMITS, FIGURE2_PAIRS, figure2


def _fit(series):
    xs = np.array([limit for limit, rt in series if rt is not None])
    ys = np.array([rt for _, rt in series if rt is not None])
    slope, intercept = np.polyfit(xs, ys, 1)
    predicted = slope * xs + intercept
    ss_res = float(np.sum((ys - predicted) ** 2))
    ss_tot = float(np.sum((ys - ys.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return slope, r2


def test_oltp_response_vs_olap_limit(benchmark, report, paper_config):
    data = run_once(
        benchmark,
        lambda: figure2(
            config=paper_config,
            olap_limits=FIGURE2_LIMITS,
            pairs=FIGURE2_PAIRS,
            period_seconds=120.0,
            num_periods=3,
            warmup_periods=1,
        ),
    )
    report("")
    report("=== Figure 2: OLTP avg response time vs OLAP cost limit ===")
    header = "{:>12}".format("limit (tim)") + "".join(
        " | ({:>2},{:>2})".format(*pair) for pair in FIGURE2_PAIRS
    )
    report(header + "   <- (OLTP clients, OLAP clients)")
    report("-" * len(header))
    for index, limit in enumerate(FIGURE2_LIMITS):
        row = "{:>12.0f}".format(limit)
        for pair in FIGURE2_PAIRS:
            rt = data[pair][index][1]
            row += " | {:>7.3f}".format(rt if rt is not None else float("nan"))
        report(row)

    slopes = {}
    for pair in FIGURE2_PAIRS:
        # Fit only the under-saturated region (paper: linear below ~30K).
        under_saturated = [p for p in data[pair] if p[0] <= 25_000.0]
        slope, r2 = _fit(under_saturated)
        slopes[pair] = slope
        report("pair {}: slope = {:.3e} s/timeron, R^2 = {:.3f}".format(pair, slope, r2))
        # Response time must grow with the OLAP cost limit.
        assert slope > 0
        if pair[1] >= 4:
            # Linearity ("almost linear") holds while the limit binds; with
            # >= 4 OLAP clients the closed-loop demand fills every limit in
            # the sweep.
            assert r2 > 0.85, "pair {} not linear (R^2={:.3f})".format(pair, r2)

    # With only 2 OLAP clients the limit stops binding once it exceeds
    # their in-flight demand, so that curve must flatten at high limits.
    two_clients = dict(data[(30, 2)])
    assert abs(two_clients[30_000.0] - two_clients[15_000.0]) < 0.05

    # More OLTP clients shift the whole curve up: (50, 8) above (30, 8).
    heavy = [rt for _, rt in data[(50, 8)] if rt is not None]
    light = [rt for _, rt in data[(30, 8)] if rt is not None]
    assert np.mean(heavy) > np.mean(light)
    # More OLAP clients raise response time at high limits: (30, 8) >= (30, 2)
    # where the limit stops binding for 2 clients.
    assert data[(30, 8)][-1][1] > data[(30, 2)][-1][1]
    report(
        "model slope prior in config: {:.3e} (negated vs OLTP limit)".format(
            -paper_config.planner.oltp_slope_prior
        )
    )
