"""Full-scale run: the paper's true time dimensions.

Every other bench uses 240 s periods (half the paper's 8 minutes) to keep
the suite fast.  This bench runs Figure 6 once at the paper's actual
480-second periods — 144 minutes of simulated wall clock — and checks that
the headline behaviour not only survives the scale-up but sharpens (the
control loop's lag shrinks relative to the period length).
"""

from __future__ import annotations

from benchmarks.conftest import run_once
from repro.config import WorkloadScaleConfig, default_config
from repro.experiments.figures import figure6
from repro.metrics.report import format_summary

HEAVY = (3, 6, 9, 12, 15, 18)
LIGHT = (1, 4, 7, 10, 13, 16)


def test_fullscale_paper_periods(benchmark, report):
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=480.0, num_periods=18)
    )
    result = run_once(benchmark, lambda: figure6(config))
    report("")
    report("=== Full scale: 18 x 480s periods (the paper's dimensions) ===")
    report(format_summary(result.collector, result.classes))
    class3 = next(c for c in result.classes if c.name == "class3")
    series3 = result.collector.performance_series(class3)
    heavy = [series3[p - 1] for p in HEAVY if series3[p - 1] is not None]
    light = [series3[p - 1] for p in LIGHT if series3[p - 1] is not None]
    report("class3 heavy rts: {}".format(["{:.3f}".format(v) for v in heavy]))
    report("class3 light rts: {}".format(["{:.3f}".format(v) for v in light]))

    # Scaling up must not degrade the headline claims.
    attainment = result.collector.goal_attainment(class3)
    report("class3 attainment at full scale: {:.0%}".format(attainment))
    assert attainment >= 0.7
    assert all(v <= class3.goal.target * 1.2 for v in heavy)
    assert all(v <= class3.goal.target for v in light)
    for name in ("class1", "class2"):
        olap = next(c for c in result.classes if c.name == name)
        assert result.collector.goal_attainment(olap) >= 0.6
