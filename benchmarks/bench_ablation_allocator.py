"""Ablation: utility optimization vs the deficit heuristic.

The paper builds plans by *optimizing* utility functions over predicted
performance.  The obvious cheaper alternative is allocating proportionally
to importance x measured deficit, with no performance model at all.  This
bench runs both on the shortened paper workload: the model-based optimizer
should protect the OLTP class at least as well while wasting less OLAP
budget (it predicts how far a limit change moves each class instead of
reacting blindly).
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments.sensitivity import sweep

ALLOCATORS = ("utility", "deficit")
JOBS = min(len(ALLOCATORS), os.cpu_count() or 1)


def test_allocator_sweep(benchmark, report, ablation_config):
    rows = dict(run_once(
        benchmark,
        lambda: sweep(
            "planner.allocator", ALLOCATORS,
            controller="qs", config=ablation_config, jobs=JOBS,
        ),
    ))
    report("")
    report("=== Ablation: plan construction strategy ===")
    report("{:>10} | {:>8} | {:>8} | {:>8}".format(
        "allocator", "class1", "class2", "class3"))
    report("-" * 46)
    for allocator in ALLOCATORS:
        att = rows[allocator]
        report("{:>10} | {:>7.0%} | {:>7.0%} | {:>7.0%}".format(
            allocator, att["class1"], att["class2"], att["class3"]))

    # Both keep the system functional...
    for allocator in ALLOCATORS:
        assert sum(rows[allocator].values()) >= 1.0
    # ...and the paper's optimizer must not lose to the blind heuristic on
    # the class the whole mechanism exists to protect.
    assert rows["utility"]["class3"] >= rows["deficit"]["class3"] - 0.12
