"""Ablation: within-class queue discipline.

The paper's dispatcher releases queries FIFO within a class.  Workload
managers often use shortest-job-first (more queries packed under the same
cost limit) or aging (SJF without starvation).  This bench runs the Query
Scheduler with each discipline on the shortened paper workload and compares
OLAP velocities and attainment.
"""

from __future__ import annotations

import os

from benchmarks.conftest import run_once
from repro.experiments.parallel import RunRequest, run_requests
from repro.experiments.sensitivity import set_config_field

DISCIPLINES = ("fifo", "sjf", "aging")
JOBS = min(len(DISCIPLINES), os.cpu_count() or 1)


def test_queue_discipline_sweep(benchmark, report, ablation_config):
    # The sweep needs OLAP velocity means on top of attainment, so it uses
    # the parallel layer directly: the RunSummary's goal-metric series for
    # an OLAP class *is* its per-period velocity series.
    requests = [
        RunRequest(
            controller="qs",
            config=set_config_field(
                ablation_config, "planner.queue_discipline", discipline
            ),
            label=discipline,
        )
        for discipline in DISCIPLINES
    ]

    def fan_out():
        rows = {}
        for discipline, outcome in zip(
            DISCIPLINES, run_requests(requests, jobs=JOBS)
        ):
            assert outcome.ok, outcome.error
            summary = outcome.summary
            velocities = {
                name: summary.metric_mean(name) or 0.0
                for name in ("class1", "class2")
            }
            rows[discipline] = (summary.attainment, velocities)
        return rows

    rows = run_once(benchmark, fan_out)
    report("")
    report("=== Ablation: within-class queue discipline ===")
    report("{:>8} | {:>8} | {:>8} | {:>8} | {:>10} | {:>10}".format(
        "queue", "att c1", "att c2", "att c3", "mean vel1", "mean vel2"))
    report("-" * 68)
    for discipline in DISCIPLINES:
        attainment, velocities = rows[discipline]
        report("{:>8} | {:>7.0%} | {:>7.0%} | {:>7.0%} | {:>10.3f} | {:>10.3f}".format(
            discipline,
            attainment["class1"], attainment["class2"], attainment["class3"],
            velocities["class1"], velocities["class2"]))

    # Every discipline keeps the OLTP class protected.
    for discipline in DISCIPLINES:
        assert rows[discipline][0]["class3"] >= 0.5
    # SJF must not *hurt* mean OLAP velocity relative to FIFO (it packs
    # more, cheaper queries under the same limits).
    fifo_vel = sum(rows["fifo"][1].values())
    sjf_vel = sum(rows["sjf"][1].values())
    assert sjf_vel >= fifo_vel - 0.1
