"""Ablation: direct OLTP interception overhead (Section 3's motivation).

The paper controls the OLTP class *indirectly* because "the overhead from a
separate controller is significant for OLTP queries with sub-second
execution time and could be significantly larger than the execution time".
This bench measures exactly that: the same TPC-C workload with QP bypassed
(the paper's choice) versus intercepted-and-immediately-released (direct
control with zero queueing), and reports the response-time inflation and
throughput loss caused by interception alone.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import run_once
from repro.config import default_config
from repro.core.service_class import ResponseTimeGoal, ServiceClass
from repro.experiments.runner import build_bundle
from repro.patroller.policy import QPStaticPolicy
from repro.workloads.schedule import constant_schedule


def _run(intercept_oltp: bool):
    config = default_config()
    classes = [ServiceClass("class3", "oltp", ResponseTimeGoal(0.25), importance=3)]
    schedule = constant_schedule(60.0, 2, {"class3": 10})
    bundle = build_bundle(config=config, schedule=schedule, classes=classes)
    if intercept_oltp:
        bundle.patroller.enable_for_class("class3")
        # Direct control with no admission queueing at all: every query is
        # released the moment it is intercepted, so the *only* difference
        # from bypass is QP's own overhead.
        QPStaticPolicy(bundle.patroller, bundle.engine, groups=[], priorities={},
                       global_cost_limit=None)
    bundle.manager.start()
    bundle.run()
    rt = [
        v for v in bundle.collector.metric_series("class3", "response_time")
        if v is not None
    ]
    tput = [
        v for v in bundle.collector.metric_series("class3", "throughput")
        if v is not None
    ]
    return sum(rt) / len(rt), sum(tput) / len(tput)


def test_interception_overhead_dominates_oltp(benchmark, report):
    def run_both():
        return _run(intercept_oltp=False), _run(intercept_oltp=True)

    (bypass_rt, bypass_tput), (direct_rt, direct_tput) = run_once(benchmark, run_both)
    inflation = direct_rt / bypass_rt
    report("")
    report("=== Ablation: direct OLTP interception overhead ===")
    report("{:>24} | {:>10} | {:>12}".format("mode", "avg rt (s)", "tx/sec"))
    report("-" * 52)
    report("{:>24} | {:>10.3f} | {:>12.1f}".format("bypass (paper)", bypass_rt, bypass_tput))
    report("{:>24} | {:>10.3f} | {:>12.1f}".format("direct interception", direct_rt, direct_tput))
    report("response-time inflation: {:.1f}x".format(inflation))

    # The interception overhead must dwarf the bare transaction time,
    # making direct control impractical, exactly as Section 3 argues.
    assert inflation > 2.5
    assert direct_tput < bypass_tput * 0.6
    # And the overhead exceeds the SLO itself: with interception on, the
    # goal is unmeetable no matter what the scheduler does.
    assert direct_rt > 0.25
    assert bypass_rt < 0.25
