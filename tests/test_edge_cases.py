"""Edge-case tests across module boundaries.

These cover the seams the per-module suites don't: interactions between
the overload model and admission layers, measurement behaviour at period
boundaries, plan churn, and patroller/table corner transitions.
"""

import pytest

from repro.config import (
    MonitorConfig,
    OverloadConfig,
    PatrollerConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.plan import SchedulingPlan
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, IO, Phase, Query
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_engine(**overrides):
    sim = Simulator()
    config = default_config(**overrides)
    engine = DatabaseEngine(sim, config, RandomStreams(101))
    return sim, config, engine


_qid = [50_000]


def make_query(cost=100.0, cpu=1.0, io=0.0, class_name="class1", kind="olap"):
    _qid[0] += 1
    phases = []
    if cpu > 0:
        phases.append(Phase(CPU, cpu))
    if io > 0:
        phases.append(Phase(IO, io))
    query = Query(
        query_id=_qid[0],
        class_name=class_name,
        client_id="c{}".format(_qid[0]),
        template="t",
        kind=kind,
        phases=tuple(phases),
        true_cost=cost,
        estimated_cost=cost,
    )
    query.submit_time = 0.0
    return query


class TestOverloadInteraction:
    def test_efficiency_recovers_after_retirement(self):
        sim, config, engine = make_engine(
            overload=OverloadConfig(knee_cost=100.0, beta=2.0)
        )
        heavy = make_query(cost=300.0, cpu=1.0)
        engine.execute(heavy)
        sim.run_until(0.1)
        degraded = engine.cpu.efficiency
        assert degraded < 1.0
        sim.run()
        assert engine.cpu.efficiency == 1.0
        # The job's wall time reflects the degradation it caused.
        expected = 0.1 + (1.0 - 0.1 * degraded) / degraded
        assert heavy.finish_time == pytest.approx(expected, rel=0.02)

    def test_two_queries_slow_each_other_through_the_knee(self):
        sim, config, engine = make_engine(
            overload=OverloadConfig(knee_cost=100.0, beta=1.0)
        )
        a = make_query(cost=80.0, cpu=1.0)
        b = make_query(cost=80.0, cpu=1.0)
        engine.execute(a)
        engine.execute(b)
        sim.run()
        # Total cost 160 -> efficiency 1/(1+0.6) = 0.625 while both run;
        # 2 CPUs so no PS sharing.  Both finish at 1/0.625 = 1.6.
        assert a.finish_time == pytest.approx(1.6, rel=0.01)
        assert b.finish_time == pytest.approx(1.6, rel=0.01)


class TestMixedPhaseExecution:
    def test_cpu_and_io_phases_use_different_pools(self):
        sim, config, engine = make_engine()
        query = make_query(cpu=1.0, io=2.0)
        engine.execute(query)
        sim.run()
        assert query.finish_time == pytest.approx(3.0)
        assert engine.cpu.completed_demand == pytest.approx(1.0)
        assert engine.disk.completed_demand == pytest.approx(2.0)

    def test_many_io_jobs_saturate_the_17_disks(self):
        sim, config, engine = make_engine()
        queries = [make_query(cpu=0.0, io=1.0) for _ in range(34)]
        for q in queries:
            engine.execute(q)
        sim.run()
        # 34 jobs on 17 disks: each runs at rate 1/2 -> 2 seconds.
        for q in queries:
            assert q.finish_time == pytest.approx(2.0)


class TestPatrollerEdges:
    def _patroller(self):
        sim, config, engine = make_engine(
            patroller=PatrollerConfig(interception_latency=0.1,
                                      release_latency=0.0,
                                      overhead_cpu_demand=0.0)
        )
        patroller = QueryPatroller(sim, engine, config.patroller)
        patroller.enable_for_class("class1")
        return sim, engine, patroller

    def test_cancel_between_submit_and_intercept_is_refused(self):
        """During the interception latency the query is not yet held."""
        sim, engine, patroller = self._patroller()
        patroller.set_release_handler(lambda q: None)
        query = make_query()
        patroller.submit(query)
        # Not yet intercepted (latency 0.1): not held, cancel refused.
        assert not patroller.cancel(query)
        sim.run_until(0.2)
        assert patroller.cancel(query)

    def test_submit_listener_sees_bypassed_and_intercepted(self):
        sim, engine, patroller = self._patroller()
        patroller.set_release_handler(patroller.release)
        seen = []
        patroller.add_submit_listener(lambda q: seen.append(q.class_name))
        patroller.submit(make_query(class_name="class1"))
        patroller.submit(make_query(class_name="class3", kind="oltp"))
        sim.run_until(1.0)
        assert seen == ["class1", "class3"]

    def test_tables_survive_full_lifecycle_mix(self):
        sim, engine, patroller = self._patroller()
        held = []
        patroller.set_release_handler(held.append)
        finishes, cancels = make_query(cpu=0.1), make_query(cpu=0.1)
        patroller.submit(finishes)
        patroller.submit(cancels)
        sim.run_until(0.2)
        patroller.release(finishes)
        patroller.cancel(cancels)
        sim.run_until(5.0)
        counts = patroller.tables.counts_by_status()
        assert counts == {"completed": 1, "cancelled": 1}


class TestPlanChurn:
    def test_rapid_plan_swaps_keep_accounting_exact(self):
        sim, config, engine = make_engine(
            patroller=PatrollerConfig(interception_latency=0.0,
                                      release_latency=0.0,
                                      overhead_cpu_demand=0.0)
        )
        from repro.core.dispatcher import Dispatcher

        patroller = QueryPatroller(sim, engine, config.patroller)
        classes = list(paper_classes())
        for c in classes:
            if c.directly_controlled:
                patroller.enable_for_class(c.name)
        plan = SchedulingPlan.even_split([c.name for c in classes], 30_000.0)
        dispatcher = Dispatcher(patroller, engine, classes, plan)
        patroller.set_release_handler(dispatcher.enqueue)
        for _ in range(10):
            patroller.submit(make_query(cost=3_000.0, cpu=2.0))
        sim.run_until(0.1)
        # Thrash the plan every 0.5s between starving and generous.
        for step in range(10):
            limit = 1_000.0 if step % 2 == 0 else 25_000.0
            sim.schedule(
                0.5 * (step + 1),
                lambda lim=limit: dispatcher.install_plan(
                    SchedulingPlan(
                        {"class1": lim, "class2": 1_000.0, "class3": 1_000.0},
                        30_000.0,
                    )
                ),
            )
        sim.run_until(60.0)
        assert engine.completed_queries == 10
        assert dispatcher.in_flight_count("class1") == 0
        assert dispatcher.in_flight_cost("class1") == pytest.approx(0.0)
        assert dispatcher.queue_length("class1") == 0


class TestMonitorBoundaries:
    def test_oltp_measurement_with_idle_then_busy_connections(self):
        from repro.core.monitor import Monitor

        sim, config, engine = make_engine(
            monitor=MonitorConfig(snapshot_interval=2.0,
                                  response_time_window=10.0)
        )
        classes = list(paper_classes())
        monitor = Monitor(sim, engine, classes, config.monitor)
        monitor.start()
        # One early completion, then nothing: samples go stale and the
        # snapshot filter drops them, but measure() keeps the last value.
        early = make_query(cost=30.0, cpu=0.2, class_name="class3", kind="oltp")
        engine.execute(early)
        sim.run_until(4.0)
        first = monitor.measure("class3")
        assert first is not None
        sim.run_until(60.0)
        later = monitor.measure("class3")
        assert later is not None  # retained, not lost
        assert later.value == pytest.approx(first.value)


class TestReportChartIntegration:
    def test_figure_chart_from_real_run(self):
        """render_series_chart digests a real experiment's series."""
        from repro.config import (
            MonitorConfig, PlannerConfig, WorkloadScaleConfig, default_config,
        )
        from repro.experiments.runner import run_experiment
        from repro.metrics.report import render_series_chart
        from repro.workloads.schedule import constant_schedule

        config = default_config(
            scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
            monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
            planner=PlannerConfig(control_interval=10.0),
        )
        result = run_experiment(
            controller="none", config=config,
            schedule=constant_schedule(20.0, 2, {"class1": 2, "class2": 2, "class3": 4}),
        )
        chart = render_series_chart(
            {c.name: result.collector.performance_series(c) for c in result.classes},
            goal_lines={c.name: c.goal.target for c in result.classes},
            title="smoke",
        )
        assert "smoke" in chart
        assert "C=class3" in chart
