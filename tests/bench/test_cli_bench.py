"""Tests for the ``repro bench`` CLI subcommand."""

from repro.bench import BenchReport
from repro.cli import main

from tests.bench.test_report import make_report


def test_bench_smoke_writes_next_numbered_report(tmp_path, capsys):
    code = main([
        "bench", "--smoke", "--quiet",
        "--only", "solver_exhaustive",
        "--dir", str(tmp_path),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "bench report" in out
    assert "solver_exhaustive" in out
    path = tmp_path / "BENCH_0.json"
    assert path.exists()
    report = BenchReport.load(str(path))
    assert report.smoke is True
    assert report.trials == 1  # --smoke defaults to one trial


def test_bench_explicit_output_path(tmp_path, capsys):
    target = tmp_path / "custom.json"
    code = main([
        "bench", "--smoke", "--quiet",
        "--only", "solver_exhaustive",
        "--output", str(target),
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert target.exists()
    assert "wrote {}".format(target) in out


def test_bench_compare_prints_delta_table(tmp_path, capsys):
    before_path = str(tmp_path / "BENCH_0.json")
    after_path = str(tmp_path / "BENCH_1.json")
    make_report(queries_per_s=100.0).save(before_path)
    make_report(queries_per_s=250.0).save(after_path)
    code = main(["bench", "--compare", before_path, after_path])
    out = capsys.readouterr().out
    assert code == 0
    assert "queries_per_s" in out
    assert "2.50x" in out
    assert "+150.0%" in out


def test_bench_unknown_name_fails_cleanly(tmp_path, capsys):
    code = main([
        "bench", "--smoke", "--quiet",
        "--only", "warp_drive", "--dir", str(tmp_path),
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "unknown benchmark" in err


def test_bench_compare_rejects_corrupt_report(tmp_path, capsys):
    bad = tmp_path / "bad.json"
    bad.write_text("{not json")
    good = tmp_path / "good.json"
    make_report().save(str(good))
    code = main(["bench", "--compare", str(bad), str(good)])
    err = capsys.readouterr().err
    assert code == 2
    assert "bench error" in err
