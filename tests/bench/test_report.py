"""Tests for the BENCH_<n>.json schema, round-trip, and comparison math."""

import json

import pytest

from repro.bench import (
    BENCH_SCHEMA_VERSION,
    BenchReport,
    BenchmarkResult,
    MetricDelta,
    compare_reports,
    format_comparison,
    next_bench_path,
    validate_report,
)
from repro.errors import BenchError


def make_report(queries_per_s=100.0, solves_per_s=50.0):
    return BenchReport(
        machine={"platform": "test", "python": "3", "cpu_count": 1},
        sha="deadbeef",
        trials=3,
        smoke=False,
        benchmarks={
            "replication": BenchmarkResult(
                name="replication",
                kind="macro",
                description="macro bench",
                metrics={
                    "queries_per_s": {
                        "mean": queries_per_s,
                        "std": 1.0,
                        "min": queries_per_s - 1,
                        "max": queries_per_s + 1,
                        "trials": 3,
                    }
                },
            ),
            "solver_greedy": BenchmarkResult(
                name="solver_greedy",
                kind="micro",
                description="micro bench",
                metrics={
                    "solves_per_s": {
                        "mean": solves_per_s,
                        "std": 0.5,
                        "min": solves_per_s - 1,
                        "max": solves_per_s + 1,
                        "trials": 3,
                    }
                },
            ),
        },
    )


def test_round_trip_through_disk(tmp_path):
    report = make_report()
    path = str(tmp_path / "BENCH_0.json")
    report.save(path)
    loaded = BenchReport.load(path)
    assert loaded.schema_version == BENCH_SCHEMA_VERSION
    assert loaded.sha == "deadbeef"
    assert loaded.trials == 3
    assert loaded.smoke is False
    assert set(loaded.benchmarks) == {"replication", "solver_greedy"}
    assert loaded.to_dict() == report.to_dict()


def test_saved_file_is_sorted_pretty_json(tmp_path):
    path = str(tmp_path / "BENCH_0.json")
    make_report().save(path)
    with open(path) as handle:
        text = handle.read()
    assert text.endswith("\n")
    document = json.loads(text)
    assert document == json.loads(json.dumps(document, sort_keys=True))


def test_validate_rejects_wrong_schema_version():
    document = make_report().to_dict()
    document["schema_version"] = BENCH_SCHEMA_VERSION + 1
    with pytest.raises(BenchError, match="schema version"):
        validate_report(document)


def test_validate_rejects_missing_keys_and_bad_kinds():
    document = make_report().to_dict()
    del document["machine"]
    with pytest.raises(BenchError, match="machine"):
        validate_report(document)
    document = make_report().to_dict()
    document["benchmarks"]["replication"]["kind"] = "mega"
    with pytest.raises(BenchError, match="kind"):
        validate_report(document)


def test_validate_rejects_non_numeric_stats():
    document = make_report().to_dict()
    stats = document["benchmarks"]["replication"]["metrics"]["queries_per_s"]
    stats["mean"] = "fast"
    with pytest.raises(BenchError, match="must be numeric"):
        validate_report(document)


def test_load_rejects_corrupt_file(tmp_path):
    path = tmp_path / "BENCH_0.json"
    path.write_text("{not json")
    with pytest.raises(BenchError, match="cannot read"):
        BenchReport.load(str(path))


def test_next_bench_path_numbers_sequentially(tmp_path):
    assert next_bench_path(str(tmp_path)).endswith("BENCH_0.json")
    (tmp_path / "BENCH_0.json").write_text("{}")
    (tmp_path / "BENCH_3.json").write_text("{}")
    (tmp_path / "BENCH_x.json").write_text("{}")  # ignored: not a number
    assert next_bench_path(str(tmp_path)).endswith("BENCH_4.json")


def test_metric_delta_math():
    delta = MetricDelta("replication", "queries_per_s", before=100.0, after=250.0)
    assert delta.ratio == pytest.approx(2.5)
    assert delta.percent == pytest.approx(150.0)
    regressed = MetricDelta("replication", "queries_per_s", before=200.0, after=150.0)
    assert regressed.ratio == pytest.approx(0.75)
    assert regressed.percent == pytest.approx(-25.0)
    from_zero = MetricDelta("x", "y", before=0.0, after=5.0)
    assert from_zero.ratio == float("inf")
    zero_to_zero = MetricDelta("x", "y", before=0.0, after=0.0)
    assert zero_to_zero.ratio == pytest.approx(1.0)


def test_compare_reports_deltas():
    before = make_report(queries_per_s=100.0, solves_per_s=50.0)
    after = make_report(queries_per_s=300.0, solves_per_s=60.0)
    deltas = compare_reports(before, after)
    # Ordered by benchmark then metric, one delta per shared metric.
    assert [(d.benchmark, d.metric) for d in deltas] == [
        ("replication", "queries_per_s"),
        ("solver_greedy", "solves_per_s"),
    ]
    assert deltas[0].ratio == pytest.approx(3.0)
    assert deltas[1].percent == pytest.approx(20.0)
    table = format_comparison(deltas)
    assert "3.00x" in table
    assert "+20.0%" in table


def test_compare_reports_requires_shared_benchmarks():
    before = make_report()
    after = make_report()
    after.benchmarks = {
        "other": BenchmarkResult("other", "micro", "", {
            "m": {"mean": 1.0, "std": 0.0, "min": 1.0, "max": 1.0, "trials": 1}
        })
    }
    with pytest.raises(BenchError, match="share no benchmarks"):
        compare_reports(before, after)


def test_metric_mean_raises_on_unknown_metric():
    result = make_report().benchmarks["replication"]
    assert result.metric_mean("queries_per_s") == pytest.approx(100.0)
    with pytest.raises(BenchError, match="no metric"):
        result.metric_mean("nonexistent")
