"""Tests for the ``repro bench`` suite runner (smoke scales only)."""

import pytest

from repro.bench import (
    BENCH_NAMES,
    BenchReport,
    BenchScale,
    format_report,
    run_suite,
)
from repro.bench.suite import BENCH_CASES
from repro.errors import BenchError


def test_scale_smoke_is_smaller_than_full():
    smoke, full = BenchScale(smoke=True), BenchScale(smoke=False)
    assert smoke.timer_events < full.timer_events
    assert smoke.ps_jobs < full.ps_jobs
    assert smoke.solver_solves < full.solver_solves
    assert smoke.replication_periods < full.replication_periods


def test_suite_rejects_zero_trials():
    with pytest.raises(BenchError, match="at least one trial"):
        run_suite(trials=0, smoke=True)


def test_suite_rejects_unknown_benchmark():
    with pytest.raises(BenchError, match="unknown benchmark"):
        run_suite(trials=1, smoke=True, only=["warp_drive"])


def test_smoke_suite_round_trips_and_reports(tmp_path):
    progress_calls = []
    report = run_suite(
        trials=1,
        smoke=True,
        only=["solver_exhaustive", "solver_greedy"],
        progress=lambda name, trial, metrics: progress_calls.append((name, trial)),
    )
    assert progress_calls == [("solver_exhaustive", 0), ("solver_greedy", 0)]
    assert report.smoke is True
    assert report.trials == 1
    for name in ("solver_exhaustive", "solver_greedy"):
        stats = report.benchmarks[name].metrics
        assert stats["solves_per_s"]["mean"] > 0
        assert stats["wall_s"]["trials"] == 1
    # The report validates against the schema and survives disk round-trip.
    path = str(tmp_path / "BENCH_0.json")
    report.save(path)
    loaded = BenchReport.load(path)
    assert loaded.to_dict() == report.to_dict()
    table = format_report(report)
    assert "solver_exhaustive" in table and "solves_per_s" in table


def test_micro_benchmarks_are_deterministic_in_work_done():
    """Wall time varies; the simulated work of each bench must not."""
    scale = BenchScale(smoke=True)
    by_name = {case.name: case for case in BENCH_CASES}
    first = by_name["timer_heap"].run(scale)
    second = by_name["timer_heap"].run(scale)
    assert first["fired_events"] == second["fired_events"]
    first = by_name["ps_resource"].run(scale)
    second = by_name["ps_resource"].run(scale)
    assert first["completed_jobs"] == second["completed_jobs"]


def test_smoke_replication_bench_is_deterministic():
    scale = BenchScale(smoke=True)
    case = next(c for c in BENCH_CASES if c.name == "replication")
    assert case.kind == "macro"
    first = case.run(scale)
    second = case.run(scale)
    assert first["completed_queries"] > 0
    assert first["completed_queries"] == second["completed_queries"]
    assert first["queries_per_s"] > 0


def test_bench_names_match_cases():
    assert BENCH_NAMES == tuple(case.name for case in BENCH_CASES)
    assert set(case.kind for case in BENCH_CASES) == {"micro", "macro"}
