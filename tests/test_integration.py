"""End-to-end integration tests across the full stack.

These run short scaled-down versions of the paper's experiment and assert
the *shape* claims the paper makes (who wins, in which periods), not
absolute numbers.
"""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import run_experiment
from repro.workloads.schedule import PeriodSchedule

#: Mixed-intensity mini-schedule: OLTP light / heavy / light / heavy.
MINI = PeriodSchedule(
    60.0,
    {
        "class1": (2, 3, 2, 3),
        "class2": (3, 4, 3, 4),
        "class3": (10, 25, 10, 25),
    },
)


def mini_config(seed=7):
    return default_config(
        seed=seed,
        scale=WorkloadScaleConfig(period_seconds=60.0, num_periods=4),
        monitor=MonitorConfig(snapshot_interval=5.0, velocity_window=60.0,
                              response_time_window=30.0),
        planner=PlannerConfig(control_interval=30.0),
    )


@pytest.fixture(scope="module")
def qs_result():
    return run_experiment(controller="qs", config=mini_config(), schedule=MINI)


@pytest.fixture(scope="module")
def none_result():
    return run_experiment(controller="none", config=mini_config(), schedule=MINI)


def test_all_classes_complete_work(qs_result):
    for name in ("class1", "class2", "class3"):
        series = qs_result.collector.metric_series(name, "throughput")
        assert any(v for v in series if v)


def test_oltp_bypasses_interception(qs_result):
    bundle = qs_result.bundle
    assert bundle.patroller.bypassed_count > 1_000  # all the TPC-C traffic
    assert bundle.patroller.intercepted_count > 0  # the TPC-H traffic


def test_velocities_are_valid_ratios(qs_result):
    for name in ("class1", "class2"):
        for value in qs_result.collector.metric_series(name, "velocity"):
            if value is not None:
                assert 0.0 < value <= 1.0


def test_qs_reacts_to_oltp_intensity(qs_result):
    """The OLTP reservation at the end of a heavy period exceeds the
    reservation at the end of a light period (measurement lag means the
    *start* of each period still reflects the previous one)."""
    series = qs_result.collector.plan_series("class3")

    def last_in_period(period):
        lo, hi = period * 60.0, (period + 1) * 60.0
        candidates = [limit for t, limit in series if lo < t <= hi]
        return candidates[-1] if candidates else None

    heavy = [v for v in (last_in_period(1), last_in_period(3)) if v is not None]
    light = [v for v in (last_in_period(0), last_in_period(2)) if v is not None]
    assert heavy and light
    assert max(heavy) > min(light)
    assert sum(heavy) / len(heavy) > sum(light) / len(light)


def test_qs_plans_respect_system_limit(qs_result):
    for _, limits in qs_result.collector._plan_points:
        assert sum(limits.values()) <= 30_000.0 + 1e-6


def test_qs_beats_no_control_on_oltp_goal(qs_result, none_result):
    """The headline claim: dynamic adaptation protects Class 3."""
    class3 = next(c for c in qs_result.classes if c.name == "class3")
    qs_attainment = qs_result.collector.goal_attainment(class3)
    none_attainment = none_result.collector.goal_attainment(class3)
    assert qs_attainment >= none_attainment
    # And specifically in the heavy periods, QS response time is lower.
    qs_series = qs_result.collector.performance_series(class3)
    none_series = none_result.collector.performance_series(class3)
    assert qs_series[3] < none_series[3]


def test_no_control_gives_no_differentiation(none_result):
    """Without class control, class 1 and class 2 look alike."""
    s1 = none_result.collector.metric_series("class1", "velocity")
    s2 = none_result.collector.metric_series("class2", "velocity")
    pairs = [(a, b) for a, b in zip(s1, s2) if a is not None and b is not None]
    assert pairs
    mean_gap = sum(abs(a - b) for a, b in pairs) / len(pairs)
    assert mean_gap < 0.2


def test_deterministic_given_seed():
    first = run_experiment(controller="qs", config=mini_config(seed=42), schedule=MINI)
    second = run_experiment(controller="qs", config=mini_config(seed=42), schedule=MINI)
    assert first.collector.total_completions == second.collector.total_completions
    class3 = next(c for c in first.classes if c.name == "class3")
    assert first.collector.performance_series(class3) == pytest.approx(
        second.collector.performance_series(class3)
    )


def test_different_seeds_differ():
    first = run_experiment(controller="qs", config=mini_config(seed=1), schedule=MINI)
    second = run_experiment(controller="qs", config=mini_config(seed=2), schedule=MINI)
    assert first.collector.total_completions != second.collector.total_completions


def test_engine_drains_after_horizon(qs_result):
    """Nothing in flight can be counted as completed twice; counters agree."""
    bundle = qs_result.bundle
    engine = bundle.engine
    in_flight = engine.executing_queries
    completed = engine.completed_queries
    assert completed == qs_result.collector.total_completions
    assert in_flight >= 0
    assert bundle.patroller.held_queries + in_flight <= 60  # bounded by clients
