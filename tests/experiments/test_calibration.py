"""Tests for the calibration experiments (scaled down for speed)."""

import pytest

from repro.config import default_config
from repro.experiments.calibration import (
    fit_oltp_slope,
    measure_oltp_response_time,
    pick_knee_limit,
    sweep_system_cost_limit,
)


@pytest.fixture(scope="module")
def shared_config():
    return default_config()


def test_pick_knee_limit_finds_first_near_peak():
    curve = [(10.0, 5.0), (20.0, 9.0), (30.0, 10.0), (40.0, 9.8), (50.0, 9.9)]
    assert pick_knee_limit(curve, tolerance=0.15) == 20.0
    assert pick_knee_limit(curve, tolerance=0.01) == 30.0


def test_pick_knee_limit_empty_rejected():
    with pytest.raises(ValueError):
        pick_knee_limit([])


def test_measure_oltp_response_time_scales_with_olap_limit(shared_config):
    low = measure_oltp_response_time(
        5_000.0, oltp_clients=15, olap_clients=6,
        config=shared_config, period_seconds=40.0, num_periods=2, warmup_periods=1,
    )
    high = measure_oltp_response_time(
        30_000.0, oltp_clients=15, olap_clients=6,
        config=shared_config, period_seconds=40.0, num_periods=2, warmup_periods=1,
    )
    assert low is not None and high is not None
    assert high > low


def test_fit_oltp_slope_positive_against_olap_limit(shared_config):
    """Figure 2: response time grows with the OLAP cost limit."""
    slope, points = fit_oltp_slope(
        [6_000.0, 18_000.0, 30_000.0],
        oltp_clients=15,
        olap_clients=6,
        config=shared_config,
        period_seconds=40.0,
        num_periods=2,
        warmup_periods=1,
    )
    assert slope > 0
    assert len(points) == 3


def test_fit_oltp_slope_needs_two_points(shared_config):
    with pytest.raises(ValueError):
        fit_oltp_slope(
            [10_000.0], oltp_clients=4, olap_clients=2,
            config=shared_config, period_seconds=20.0, num_periods=1,
            warmup_periods=0,
        )


def test_sweep_system_cost_limit_returns_curve(shared_config):
    curve = sweep_system_cost_limit(
        [10_000.0, 40_000.0],
        config=shared_config,
        olap_clients=10,
        period_seconds=40.0,
        num_periods=2,
        warmup_periods=1,
    )
    assert len(curve) == 2
    assert all(throughput > 0 for _, throughput in curve)
