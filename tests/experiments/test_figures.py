"""Tests for the per-figure entry points (scaled down for speed)."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.figures import (
    FIGURE2_PAIRS,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
)


def quick_config(periods=2, period_seconds=30.0):
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=period_seconds, num_periods=periods),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=15.0),
    )


def test_figure2_default_pairs_are_digit_reconstruction():
    assert FIGURE2_PAIRS == ((30, 4), (30, 8), (30, 2), (50, 8))


def test_figure2_small_sweep_shape():
    data = figure2(
        config=default_config(),
        olap_limits=(8_000.0, 24_000.0),
        pairs=((8, 3),),
        period_seconds=30.0,
        num_periods=2,
        warmup_periods=1,
    )
    series = data[(8, 3)]
    assert [limit for limit, _ in series] == [8_000.0, 24_000.0]
    assert all(rt is not None for _, rt in series)


def test_figure3_schedule_payload():
    counts = figure3()
    assert set(counts) == {"class1", "class2", "class3"}
    assert len(counts["class3"]) == 18


def test_figures_4_5_6_use_expected_controllers():
    config = quick_config()
    assert figure4(config).controller_name == "none"
    assert figure5(config).controller_name == "qp"
    assert figure5(config, priority_control=False).controller_name == "qp_nopriority"
    result6 = figure6(config)
    assert result6.controller_name == "qs"
    # Figure 7 reuses the run without re-simulating.
    plans = figure7(result=result6)
    assert set(plans) == {"class1", "class2", "class3"}
    assert any(v is not None for v in plans["class3"])


def test_figure7_rejects_non_qs_result():
    config = quick_config()
    with pytest.raises(ValueError):
        figure7(result=figure4(config))
