"""Tests for the experiment runner assembly."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.controllers import NoControlController, QPPriorityController
from repro.core.direct import DirectScheduler
from repro.core.mpl import MPLController
from repro.core.scheduler import QueryScheduler
from repro.core.service_class import ServiceClass, VelocityGoal
from repro.errors import ConfigurationError
from repro.experiments.runner import (
    build_bundle,
    make_controller,
    run_experiment,
)
from repro.workloads.schedule import constant_schedule


def quick_config():
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=30.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=15.0),
    )


def tiny_schedule():
    return constant_schedule(30.0, 2, {"class1": 2, "class2": 2, "class3": 6})


class TestBuildBundle:
    def test_default_assembly(self):
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        assert {c.name for c in bundle.classes} == {"class1", "class2", "class3"}
        assert bundle.mixes["class1"].name == "tpch"
        assert bundle.mixes["class3"].name == "tpcc"
        assert bundle.schedule.num_periods == 2

    def test_default_schedule_is_paper_shape(self):
        bundle = build_bundle(config=quick_config())
        assert bundle.schedule.num_periods == 2  # truncated to config periods
        assert bundle.schedule.period_seconds == 30.0

    def test_historical_costs_cover_olap_templates(self):
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        costs = bundle.historical_olap_costs()
        assert len(costs) == 18  # shared tpch mix counted once
        assert min(costs) > 0

    def test_schedule_for_unknown_class_rejected(self):
        schedule = constant_schedule(30.0, 2, {"ghost": 1})
        with pytest.raises(ConfigurationError):
            build_bundle(config=quick_config(), schedule=schedule)

    def test_missing_mix_rejected(self):
        classes = [ServiceClass("only", "olap", VelocityGoal(0.5), 1)]
        with pytest.raises(ConfigurationError):
            build_bundle(
                config=quick_config(),
                schedule=constant_schedule(30.0, 2, {"only": 1}),
                classes=classes,
                mixes={},
            )


class TestMakeController:
    @pytest.mark.parametrize(
        "name,expected_type",
        [
            ("none", NoControlController),
            ("qp", QPPriorityController),
            ("qp_nopriority", QPPriorityController),
            ("qs", QueryScheduler),
            ("qs_detect", QueryScheduler),
            ("mpl", MPLController),
            ("direct", DirectScheduler),
        ],
    )
    def test_known_controllers(self, name, expected_type):
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        controller = make_controller(bundle, name)
        assert isinstance(controller, expected_type)
        assert bundle.controller is controller

    def test_qs_detect_attaches_detector(self):
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        controller = make_controller(bundle, "qs_detect")
        assert controller.detector is not None
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        plain = make_controller(bundle, "qs")
        assert plain.detector is None

    def test_qp_priority_flag(self):
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        assert make_controller(bundle, "qp").priority_control
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        assert not make_controller(bundle, "qp_nopriority").priority_control

    def test_static_olap_limit_override(self):
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        controller = make_controller(bundle, "qp", static_olap_limit=12_345.0)
        assert controller.static_olap_limit == 12_345.0

    def test_unknown_name_rejected(self):
        bundle = build_bundle(config=quick_config(), schedule=tiny_schedule())
        with pytest.raises(ConfigurationError):
            make_controller(bundle, "chaos-monkey")


class TestRunExperiment:
    def test_runs_to_horizon_and_collects(self):
        result = run_experiment(
            controller="none", config=quick_config(), schedule=tiny_schedule()
        )
        assert result.bundle.sim.now == pytest.approx(60.0)
        assert result.collector.total_completions > 20
        series = result.performance_series()
        assert set(series) == {"class1", "class2", "class3"}
        assert any(v is not None for v in series["class3"])

    def test_qs_run_records_plans(self):
        result = run_experiment(
            controller="qs", config=quick_config(), schedule=tiny_schedule()
        )
        assert len(result.collector.plan_series("class3")) >= 2
        attainment = result.goal_attainment()
        assert set(attainment) == {"class1", "class2", "class3"}


class TestExperimentSpecIsolation:
    """Regression: specs derived from one base must not share mutable state."""

    def test_backend_options_independent_via_with_overrides(self):
        from repro.experiments.runner import ExperimentSpec

        base = ExperimentSpec(backend_options={"busy_timeout": 1.0})
        derived = base.with_overrides(controller="none")
        derived.backend_options["busy_timeout"] = 99.0
        derived.backend_options["extra"] = True
        assert base.backend_options == {"busy_timeout": 1.0}

    def test_backend_options_independent_via_replace(self):
        import dataclasses

        from repro.experiments.runner import ExperimentSpec

        base = ExperimentSpec(backend_options={"nested": {"a": 1}})
        derived = dataclasses.replace(base)
        derived.backend_options["nested"]["a"] = 2
        assert base.backend_options == {"nested": {"a": 1}}

    def test_constructor_copies_the_caller_dict(self):
        from repro.experiments.runner import ExperimentSpec

        options = {"busy_timeout": 1.0}
        spec = ExperimentSpec(backend_options=options)
        options["busy_timeout"] = 5.0
        assert spec.backend_options == {"busy_timeout": 1.0}

    def test_faults_normalized_to_tuple(self):
        from repro.experiments.runner import ExperimentSpec
        from repro.faults import ScheduledFault

        spec = ExperimentSpec(faults=[ScheduledFault(kind="cancel_storm")])
        assert isinstance(spec.faults, tuple)


class TestRunSpecFaults:
    def test_scheduled_faults_apply_and_ride_in_extras(self):
        from repro.experiments.runner import ExperimentSpec, run_spec
        from repro.faults import ScheduledFault

        result = run_spec(ExperimentSpec(
            controller="qs",
            config=quick_config(),
            schedule=tiny_schedule(),
            invariants="strict",
            faults=(
                ScheduledFault(
                    kind="arrival_burst", at=10.0,
                    params={"class_name": "class1", "count": 4},
                ),
                ScheduledFault(
                    kind="cancel_storm", at=20.0,
                    params={"class_name": "class1"},
                ),
            ),
        ))
        injector = result.extras["faults"]
        kinds = [entry["fault"] for entry in injector.injected]
        assert kinds == ["arrival_burst", "cancel_storm"]
        assert result.extras["validation"].violations == []
