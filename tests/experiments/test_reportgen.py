"""Tests for markdown report generation."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.reportgen import (
    generate_report,
    quick_report_config,
    write_report,
)


@pytest.fixture(scope="module")
def tiny_report():
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=30.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=15.0),
    )
    return generate_report(config=config)


def test_report_contains_all_sections(tiny_report):
    assert "# Generated experiment report" in tiny_report
    assert "No class control (Figure 4)" in tiny_report
    assert "DB2 QP priority control (Figure 5)" in tiny_report
    assert "Query Scheduler (Figure 6)" in tiny_report
    assert "Figure 7" in tiny_report
    assert "Controller telemetry" in tiny_report


def test_report_tables_have_period_rows(tiny_report):
    # Two periods per section, four sections (3 figures + plans).  Period
    # rows start the line with the period number; telemetry tables start
    # with a class name, so the anchor keeps them out of the count.
    lines = tiny_report.splitlines()
    assert sum(1 for line in lines if line.startswith("| 1 |")) == 4
    assert sum(1 for line in lines if line.startswith("| 2 |")) == 4
    assert "attainment:" in tiny_report


def test_report_telemetry_balance(tiny_report):
    # The dispatcher accounting table appears and the run recorded at
    # least one control interval.
    assert "Dispatcher accounting at end of run:" in tiny_report
    assert "control intervals recorded" in tiny_report


def test_report_mentions_misses_or_values(tiny_report):
    # Values are rendered to 3 decimals in the figure tables.
    import re
    assert re.search(r"\| 0\.\d{3}", tiny_report)


def test_write_report(tmp_path):
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=1),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )
    path = str(tmp_path / "report.md")
    text = write_report(path, config=config)
    with open(path) as handle:
        assert handle.read() == text


def test_quick_config_is_valid():
    config = quick_report_config()
    assert config.scale.num_periods == 9
