"""The model-ablation experiment and its CLI/bench wrappers."""

import json

import pytest

from repro.cli import main
from repro.errors import ExperimentError
from repro.experiments.model_ablation import (
    DEFAULT_MODELS,
    DEFAULT_SCENARIOS,
    format_ablation_table,
    run_model_ablation,
)


class TestRunModelAblation:
    def test_single_scenario_smoke_compares_all_models(self):
        report = run_model_ablation(scenarios=("paper-figure3",), smoke=True)
        entry = report["scenarios"]["paper-figure3"]
        assert set(entry) == set(DEFAULT_MODELS)
        for summary in entry.values():
            assert 0.0 <= summary["attainment_mean"] <= 1.0
            assert summary["prediction_mae_mean"] >= 0.0
            assert summary["intervals"] > 0
        # The learned entry really was trained on the paper run's trace.
        assert entry["learned"]["trained_observations"] > 0
        assert json.dumps(report)  # JSON-exportable end to end

    def test_defaults_cover_the_shift_scenarios(self):
        assert "diurnal" in DEFAULT_SCENARIOS
        assert "flash-crowd" in DEFAULT_SCENARIOS

    def test_non_qs_scenario_rejected(self, tmp_path):
        import dataclasses

        from repro.scenarios import find_scenario, save_scenario

        scenario = find_scenario("paper-figure3")
        hostile = dataclasses.replace(scenario, name="mpl-only", controller="mpl")
        path = tmp_path / "mpl-only.yaml"
        save_scenario(hostile, str(path))
        with pytest.raises(ExperimentError):
            run_model_ablation(scenarios=(str(path),), smoke=True)


class TestFormatTable:
    def test_renders_every_model_row(self):
        report = {
            "smoke": True,
            "models": ["paper", "oracle"],
            "scenarios": {
                "demo": {
                    "paper": {
                        "attainment_mean": 0.8,
                        "prediction_mae_mean": 0.1,
                        "violations": 0,
                    },
                    "oracle": {
                        "attainment_mean": 0.5,
                        "prediction_mae_mean": None,
                        "violations": None,
                    },
                }
            },
        }
        table = format_ablation_table(report)
        assert "demo" in table
        assert "paper" in table and "oracle" in table
        assert "0.8000" in table
        assert "-" in table  # None renders as a dash


class TestAblateModelsCLI:
    def test_cli_writes_report(self, tmp_path, capsys):
        out_path = str(tmp_path / "ablation.json")
        code = main([
            "ablate-models", "--scenarios", "paper-figure3",
            "--models", "paper", "oracle", "--output", out_path,
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "Model ablation" in out
        with open(out_path) as handle:
            report = json.load(handle)
        assert "paper-figure3" in report["scenarios"]

    def test_cli_unknown_scenario_errors(self, capsys):
        assert main(["ablate-models", "--scenarios", "nope"]) == 2
        assert "ablation error" in capsys.readouterr().err
