"""Tests for the generic configuration sensitivity sweep."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.errors import ConfigurationError
from repro.experiments.sensitivity import (
    format_sweep,
    get_config_field,
    set_config_field,
    sweep,
)
from repro.workloads.schedule import constant_schedule


def tiny_config():
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )


class TestFieldAccess:
    def test_set_top_level(self):
        config = set_config_field(default_config(), "system_cost_limit", 42_000.0)
        assert config.system_cost_limit == 42_000.0

    def test_set_nested(self):
        config = set_config_field(default_config(), "planner.control_interval", 37.0)
        assert config.planner.control_interval == 37.0
        # Original untouched (frozen dataclasses).
        assert default_config().planner.control_interval != 37.0

    def test_set_deep_nested_validates(self):
        with pytest.raises(ConfigurationError):
            set_config_field(default_config(), "overload.knee_cost", -5.0)

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigurationError):
            set_config_field(default_config(), "planner.warp_speed", 9)
        with pytest.raises(ConfigurationError):
            set_config_field(default_config(), "no_such_section.x", 1)
        with pytest.raises(ConfigurationError):
            set_config_field(default_config(), "planner..bad", 1)

    def test_get_roundtrip(self):
        config = default_config()
        assert get_config_field(config, "resources.cpu_servers") == 2
        assert get_config_field(config, "seed") == config.seed
        with pytest.raises(ConfigurationError):
            get_config_field(config, "resources.gpu_servers")


class TestSweep:
    def test_sweep_runs_per_value_in_order(self):
        schedule = constant_schedule(20.0, 2, {"class1": 2, "class2": 2, "class3": 5})
        results = sweep(
            "optimizer.noise_sigma",
            [0.0, 0.4],
            controller="none",
            config=tiny_config(),
            schedule=schedule,
        )
        assert [value for value, _ in results] == [0.0, 0.4]
        for _, attainment in results:
            assert set(attainment) == {"class1", "class2", "class3"}

    def test_sweep_duplicate_values_keep_separate_entries(self):
        schedule = constant_schedule(20.0, 2, {"class1": 2, "class2": 2, "class3": 5})
        results = sweep(
            "optimizer.noise_sigma",
            [0.2, 0.2],
            controller="none",
            config=tiny_config(),
            schedule=schedule,
        )
        assert [value for value, _ in results] == [0.2, 0.2]
        # Same config, same seed: the duplicate entries agree but both exist.
        assert results[0][1] == results[1][1]

    def test_sweep_requires_values(self):
        with pytest.raises(ConfigurationError):
            sweep("seed", [], config=tiny_config())

    def test_sweep_rejects_bad_value_before_running(self):
        with pytest.raises(ConfigurationError):
            sweep("optimizer.noise_sigma", [0.1, -1.0], config=tiny_config())

    def test_format_sweep_table(self):
        results = [(10.0, {"a": 0.5, "b": 1.0}), (20.0, {"a": 0.75, "b": 0.25})]
        text = format_sweep("some.path", results, ["a", "b"])
        assert "some.path" in text
        assert "50%" in text and "75%" in text
        missing = format_sweep("p", [(1, {"a": 0.5})], ["a", "zz"])
        assert "-" in missing

    def test_format_sweep_accepts_legacy_dict_and_unhashable_values(self):
        legacy = format_sweep("p", {1: {"a": 0.5}}, ["a"])
        assert "50%" in legacy
        unhashable = format_sweep("p", [([1, 2], {"a": 0.5})], ["a"])
        assert "[1, 2]" in unhashable


class TestSweepBaseSpec:
    """sweep(base_spec=...) — the scenario path."""

    def _base_spec(self):
        from repro.experiments.runner import ExperimentSpec

        return ExperimentSpec(
            controller="qs",
            config=tiny_config(),
            schedule=constant_schedule(
                20.0, 2, {"class1": 2, "class2": 2, "class3": 6}
            ),
            invariants="warn",
        )

    def test_base_spec_sweeps_the_addressed_field_only(self):
        entries = sweep(
            "optimizer.noise_sigma", [0.1, 0.3], base_spec=self._base_spec()
        )
        assert [value for value, _ in entries] == [0.1, 0.3]
        for _, attainment in entries:
            assert set(attainment) == {"class1", "class2", "class3"}

    def test_base_spec_conflicts_with_bare_keywords(self):
        with pytest.raises(ConfigurationError, match="not both"):
            sweep(
                "optimizer.noise_sigma", [0.1],
                base_spec=self._base_spec(), config=tiny_config(),
            )


class TestSweepSeedRepeats:
    def test_repeated_seed_values_get_unique_labels(self):
        from repro.experiments.sensitivity import _sweep_labels

        labels = _sweep_labels("seed", [7, 7, 7])
        assert len(set(labels)) == 3
        assert labels[0] == "seed=7"
        assert labels[1] == "seed=7#2"
        assert labels[2] == "seed=7#3"

    def test_sweep_same_seed_thrice_returns_three_points_in_order(self):
        from repro.experiments.runner import ExperimentSpec

        schedule = constant_schedule(20.0, 2, {"class1": 2, "class2": 2, "class3": 5})
        base_spec = ExperimentSpec(
            controller="none", config=tiny_config(), schedule=schedule
        )
        results = sweep("seed", [7, 7, 7], base_spec=base_spec)
        assert [value for value, _ in results] == [7, 7, 7]
        # Identical seeds run identical simulations.
        assert results[0][1] == results[1][1] == results[2][1]
