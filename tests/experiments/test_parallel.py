"""Tests for the parallel experiment execution layer.

Pins the three contracts that make ``jobs=`` safe to use everywhere:
requests and summaries pickle cleanly, worker count never changes results
(bitwise), and one crashed run never kills the batch.
"""

import pickle

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.errors import ConfigurationError
from repro.experiments.parallel import (
    RunRequest,
    execute_request,
    resolve_jobs,
    run_requests,
)
from repro.experiments.replication import compare, replicate
from repro.workloads.schedule import constant_schedule


def tiny_config(seed=7):
    return default_config(
        seed=seed,
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )


def tiny_schedule():
    return constant_schedule(20.0, 2, {"class1": 2, "class2": 2, "class3": 6})


def tiny_request(controller="none", seed=7, label=None):
    return RunRequest(
        controller=controller,
        config=tiny_config(seed),
        schedule=tiny_schedule(),
        label=label,
    )


class TestRunRequest:
    def test_roundtrips_through_pickle(self):
        request = tiny_request(label="x")
        clone = pickle.loads(pickle.dumps(request))
        assert clone.controller == request.controller
        assert clone.config == request.config
        assert clone.schedule.counts == request.schedule.counts
        assert clone.label == "x"

    def test_describe_prefers_label_then_seed(self):
        assert tiny_request(label="lab").describe() == "lab"
        assert tiny_request(seed=3).describe() == "none:seed=3"
        assert RunRequest(controller="qs").describe() == "qs"
        assert RunRequest(controller="qs").seed is None


class TestExecuteRequest:
    def test_summary_is_slim_and_picklable(self):
        summary = execute_request(tiny_request())
        assert summary.controller == "none"
        assert summary.seed == 7
        assert summary.class_names == ("class1", "class2", "class3")
        assert set(summary.attainment) == {"class1", "class2", "class3"}
        for name in summary.class_names:
            assert len(summary.performance_series[name]) == 2  # periods
        assert summary.total_completions > 0
        assert summary.telemetry_records == ()  # no telemetry without QS
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.attainment == summary.attainment

    def test_qs_summary_carries_telemetry_and_solver_stats(self):
        summary = execute_request(tiny_request(controller="qs"))
        assert summary.telemetry_records
        assert summary.solver_stats["solve_calls"] >= 1
        assert summary.solver_stats["total_evaluations"] >= 1
        store = summary.telemetry_store()
        assert len(store) == len(summary.telemetry_records)
        assert store.last.interval_index == len(store) - 1
        clone = pickle.loads(pickle.dumps(summary))
        assert len(clone.telemetry_records) == len(summary.telemetry_records)

    def test_metric_mean_matches_series(self):
        summary = execute_request(tiny_request())
        for name in summary.class_names:
            values = [
                v for v in summary.performance_series[name] if v is not None
            ]
            if values:
                assert summary.metric_mean(name) == sum(values) / len(values)


class TestRunRequests:
    def test_empty_batch(self):
        assert run_requests([], jobs=4) == []

    def test_jobs_validation(self):
        assert resolve_jobs(None) >= 1
        assert resolve_jobs(3) == 3
        for bad in (0, -1, 1.5, True):
            with pytest.raises(ConfigurationError):
                resolve_jobs(bad)
        with pytest.raises(ConfigurationError):
            run_requests([tiny_request()], jobs=0)

    def test_serial_ordering_and_progress(self):
        requests = [tiny_request(seed=s) for s in (5, 3, 9)]
        seen = []
        outcomes = run_requests(
            requests, jobs=1,
            progress=lambda outcome, done, total: seen.append(
                (outcome.index, done, total)
            ),
        )
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.summary.seed for o in outcomes] == [5, 3, 9]
        assert seen == [(0, 1, 3), (1, 2, 3), (2, 3, 3)]

    def test_parallel_matches_serial_bitwise(self):
        requests = [tiny_request(seed=s) for s in (1, 2, 3, 4)]
        serial = run_requests(requests, jobs=1)
        parallel = run_requests(requests, jobs=4)
        assert [o.index for o in parallel] == [0, 1, 2, 3]
        for left, right in zip(serial, parallel):
            assert left.ok and right.ok
            assert left.summary.seed == right.summary.seed
            assert left.summary.attainment == right.summary.attainment
            assert left.summary.performance_series == right.summary.performance_series
            assert left.summary.total_completions == right.summary.total_completions

    def test_parallel_progress_counts_every_run(self):
        requests = [tiny_request(seed=s) for s in (1, 2, 3)]
        seen = []
        run_requests(
            requests, jobs=2,
            progress=lambda outcome, done, total: seen.append((done, total)),
        )
        assert sorted(seen) == [(1, 3), (2, 3), (3, 3)]

    def test_worker_failure_is_isolated(self):
        requests = [
            tiny_request(seed=1),
            tiny_request(controller="no-such-controller", seed=2),
            tiny_request(seed=3),
        ]
        outcomes = run_requests(requests, jobs=2)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].summary is None
        assert "unknown controller" in outcomes[1].error


class TestReplicationParallel:
    def test_compare_parallel_bitwise_identical_to_serial(self):
        kwargs = dict(
            seeds=[1, 2], config=tiny_config(), schedule=tiny_schedule()
        )
        serial = compare(["none", "qs"], jobs=1, **kwargs)
        parallel = compare(["none", "qs"], jobs=4, **kwargs)
        assert set(serial) == set(parallel)
        for controller in serial:
            left, right = serial[controller], parallel[controller]
            assert left.seeds == right.seeds
            assert left.errors == [] and right.errors == []
            assert set(left.per_class) == set(right.per_class)
            for name, stats in left.per_class.items():
                other = right.per_class[name]
                assert stats.attainment.count == other.attainment.count
                assert stats.attainment.mean == other.attainment.mean
                assert stats.attainment.stddev == other.attainment.stddev
                assert stats.metric_mean.mean == other.metric_mean.mean
                assert stats.metric_mean.stddev == other.metric_mean.stddev

    def test_replicate_isolates_crashed_seed(self):
        summary = replicate(
            "definitely-not-a-controller",
            seeds=[1, 2],
            config=tiny_config(),
            schedule=tiny_schedule(),
            jobs=2,
        )
        assert summary.per_class == {}
        assert [failure.seed for failure in summary.errors] == [1, 2]
        for failure in summary.errors:
            assert "unknown controller" in failure.error

    def test_compare_keeps_good_controller_despite_bad_one(self):
        summaries = compare(
            ["none", "definitely-not-a-controller"],
            seeds=[1, 2],
            config=tiny_config(),
            schedule=tiny_schedule(),
            jobs=2,
        )
        good = summaries["none"]
        bad = summaries["definitely-not-a-controller"]
        assert good.errors == []
        assert good.per_class["class3"].attainment.count == 2
        assert len(bad.errors) == 2
        assert bad.per_class == {}


class TestSpecRequests:
    """RunRequest carrying a full ExperimentSpec (the scenario path)."""

    def _spec(self, controller="qs", invariants="off"):
        from repro.experiments.runner import ExperimentSpec

        return ExperimentSpec(
            controller=controller,
            config=tiny_config(),
            schedule=tiny_schedule(),
            invariants=invariants,
        )

    def test_spec_request_pickles_and_reports_its_seed(self):
        spec = self._spec()
        request = RunRequest(controller=spec.controller, spec=spec, label="s")
        clone = pickle.loads(pickle.dumps(request))
        assert clone.spec.controller == "qs"
        assert request.seed == 7
        assert request.describe() == "s"

    def test_execute_request_honours_the_spec(self):
        from repro.faults import ScheduledFault

        spec = self._spec(invariants="warn").with_overrides(
            faults=(ScheduledFault(
                kind="arrival_burst", at=5.0,
                params={"class_name": "class1", "count": 2},
            ),),
        )
        request = RunRequest(controller=spec.controller, spec=spec)
        summary = execute_request(request)
        assert summary.controller == "qs"
        assert summary.attainment  # the run completed and measured classes

    def test_spec_requests_parallel_match_serial_bitwise(self):
        specs = [
            self._spec().with_overrides(config=tiny_config(seed=seed))
            for seed in (7, 21)
        ]
        requests = [
            RunRequest(controller=s.controller, spec=s, label=str(i))
            for i, s in enumerate(specs)
        ]
        serial = run_requests(requests, jobs=1)
        parallel = run_requests(requests, jobs=2)
        for a, b in zip(serial, parallel):
            assert a.ok and b.ok
            assert a.summary.attainment == b.summary.attainment
            assert a.summary.performance_series == b.summary.performance_series
