"""Tests for multi-seed replication."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.replication import (
    compare,
    format_comparison,
    replicate,
)
from repro.workloads.schedule import constant_schedule


def tiny_config():
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )


def tiny_schedule():
    return constant_schedule(20.0, 2, {"class1": 2, "class2": 2, "class3": 6})


def test_replicate_aggregates_across_seeds():
    summary = replicate(
        "none", seeds=[1, 2, 3], config=tiny_config(), schedule=tiny_schedule()
    )
    assert summary.controller == "none"
    assert summary.seeds == [1, 2, 3]
    for name in ("class1", "class2", "class3"):
        stats = summary.per_class[name]
        assert stats.attainment.count == 3
        assert 0.0 <= stats.attainment.mean <= 1.0
        payload = stats.summary()
        assert set(payload) == {
            "attainment_mean", "attainment_std", "attainment_weighted",
            "completions", "metric_mean", "metric_std", "runs",
        }
        assert payload["completions"] == stats.completions


def test_weighted_attainment_pools_by_completions():
    """The regression: a 40-query run must not weigh like a 40,000-query run.

    Two runs with attainments 1.0 (10 completions) and 0.0 (990
    completions): mean-of-means says 0.5, the pooled answer is 0.01.
    """
    from repro.experiments.replication import ClassReplicationStats

    stats = ClassReplicationStats("class1")
    stats.add_run(1.0, 10)
    stats.add_run(0.0, 990)
    assert stats.attainment.mean == pytest.approx(0.5)
    assert stats.weighted_attainment == pytest.approx(0.01)
    assert stats.completions == 1000


def test_weighted_attainment_falls_back_without_completions():
    from repro.experiments.replication import ClassReplicationStats

    stats = ClassReplicationStats("class1")
    stats.add_run(0.75, 0)
    stats.add_run(0.25, 0)
    assert stats.weighted_attainment == pytest.approx(0.5)


def test_summary_attainment_mean_is_weighted():
    summary = replicate(
        "none", seeds=[1, 2, 3], config=tiny_config(), schedule=tiny_schedule()
    )
    for name in ("class1", "class2", "class3"):
        assert summary.attainment_mean(name) == pytest.approx(
            summary.per_class[name].weighted_attainment
        )


def test_replicate_requires_seeds():
    with pytest.raises(ValueError):
        replicate("none", seeds=[])


def test_single_seed_has_zero_std():
    summary = replicate(
        "none", seeds=[7], config=tiny_config(), schedule=tiny_schedule()
    )
    assert summary.attainment_std("class3") == 0.0


def test_compare_runs_same_seeds_for_all_controllers():
    summaries = compare(
        ["none", "qs"], seeds=[1, 2],
        config=tiny_config(), schedule=tiny_schedule(),
    )
    assert set(summaries) == {"none", "qs"}
    assert summaries["none"].seeds == summaries["qs"].seeds


def test_format_comparison_table():
    summaries = compare(
        ["none"], seeds=[1], config=tiny_config(), schedule=tiny_schedule()
    )
    text = format_comparison(summaries, ["class1", "class2", "class3"])
    assert "controller" in text
    assert "none" in text
    assert "%" in text
