"""Stress and failure-injection tests.

Edge conditions a production workload manager must survive: empty
workloads, monster-only workloads, open-loop overload past saturation,
minimum-budget plans, and pathological schedules.
"""

import pytest

from repro.config import (
    MonitorConfig,
    OptimizerConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
    paper_classes,
)
from repro.experiments.runner import build_bundle, make_controller, run_experiment
from repro.workloads.openloop import OpenLoopSource
from repro.workloads.schedule import PeriodSchedule, constant_schedule
from repro.workloads.spec import QueryTemplate, WorkloadMix
from repro.workloads.tpch import tpch_mix
from repro.sim.rng import RandomStreams


def quick_config(**overrides):
    base = dict(
        scale=WorkloadScaleConfig(period_seconds=30.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=15.0),
    )
    base.update(overrides)
    return default_config(**base)


def test_zero_client_periods_do_not_crash():
    schedule = PeriodSchedule(
        30.0, {"class1": (0, 2), "class2": (0, 0), "class3": (5, 0)}
    )
    result = run_experiment(controller="qs", config=quick_config(), schedule=schedule)
    assert result.bundle.sim.now == pytest.approx(60.0)
    # Planner kept running even with empty classes.
    assert result.bundle.controller.planner.intervals_run >= 3


def test_monster_only_workload_progresses_via_starvation_guard():
    """Every query costs more than the whole class limit; the starvation
    guard must keep releasing them one at a time."""
    monster_mix = WorkloadMix(
        "monsters",
        [QueryTemplate("huge", "olap", cpu_demand=20.0, io_demand=40.0,
                       variability=0.0, parallelism=2, rounds=2)],
    )
    classes = [
        ServiceClass("class1", "olap", VelocityGoal(0.4), 1),
        ServiceClass("class3", "oltp", ResponseTimeGoal(0.25), 3),
    ]
    schedule = constant_schedule(60.0, 2, {"class1": 3, "class3": 2})
    bundle = build_bundle(
        config=quick_config(scale=WorkloadScaleConfig(period_seconds=60.0, num_periods=2)),
        schedule=schedule,
        classes=classes,
        mixes={"class1": monster_mix, "class3": _tiny_oltp_mix()},
    )
    controller = make_controller(bundle, "qs")
    controller.start()
    bundle.manager.start()
    bundle.run()
    assert bundle.collector.total_completions > 0
    completed_olap = sum(
        c or 0
        for c in (
            (cell.completions if cell else 0)
            for cell in (
                bundle.collector.cell(p, "class1") for p in range(2)
            )
        )
    )
    assert completed_olap >= 1


def _tiny_oltp_mix():
    return WorkloadMix(
        "tiny",
        [QueryTemplate("t", "oltp", cpu_demand=0.005, io_demand=0.002,
                       variability=0.0)],
    )


def test_open_loop_overload_is_survived_by_admission_control():
    """Arrivals far beyond capacity: the QP queue grows but the engine stays
    under its cost limit and keeps completing work."""
    classes = [ServiceClass("class1", "olap", VelocityGoal(0.4), 1)]
    schedule = constant_schedule(30.0, 2, {"class1": 0})
    bundle = build_bundle(
        config=quick_config(), schedule=schedule, classes=classes,
        mixes={"class1": tpch_mix()},
    )
    controller = make_controller(bundle, "none")
    controller.start()
    source = OpenLoopSource(
        bundle.sim, bundle.patroller, bundle.factory, tpch_mix(), "class1",
        RandomStreams(91), rate=3.0,  # way past OLAP capacity
    )
    bundle.manager.start()
    source.start()
    bundle.run()
    assert bundle.engine.completed_queries > 0
    # Admission control held the line: executing cost stayed bounded.
    assert bundle.engine.overload.peak_cost < 60_000.0
    # And the backlog is real (the system was genuinely overloaded).
    assert controller.policy.queued > 5


def test_min_budget_plan_everywhere_still_progresses():
    """Force the system cost limit to the bare minimum the solver accepts."""
    config = quick_config(system_cost_limit=3_000.0)
    schedule = constant_schedule(30.0, 2, {"class1": 2, "class2": 2, "class3": 4})
    result = run_experiment(controller="qs", config=config, schedule=schedule)
    assert result.collector.total_completions > 0
    for _, limits in result.collector._plan_points:
        assert sum(limits.values()) <= 3_000.0 + 1e-6


def test_extreme_optimizer_noise_never_wedges():
    config = quick_config(optimizer=OptimizerConfig(noise_sigma=1.5))
    result = run_experiment(controller="qs", config=config,
                            schedule=constant_schedule(30.0, 2,
                                {"class1": 2, "class2": 2, "class3": 6}))
    assert result.collector.total_completions > 50


def test_single_class_system():
    classes = [ServiceClass("solo", "olap", VelocityGoal(0.5), 1)]
    schedule = constant_schedule(30.0, 2, {"solo": 3})
    bundle = build_bundle(config=quick_config(), schedule=schedule,
                          classes=classes, mixes={"solo": tpch_mix()})
    controller = make_controller(bundle, "qs")
    controller.start()
    bundle.manager.start()
    bundle.run()
    assert bundle.engine.completed_queries > 0
    assert controller.plan.limit("solo") > 0


def test_all_controllers_survive_burst_schedule():
    burst = PeriodSchedule(
        20.0, {"class1": (0, 4, 0), "class2": (4, 0, 4), "class3": (2, 20, 2)}
    )
    config = quick_config(scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=3))
    for controller in ("none", "qp", "qs", "mpl", "direct"):
        result = run_experiment(controller=controller, config=config, schedule=burst)
        assert result.collector.total_completions > 0, controller
