"""Integration: more service classes than the paper's three.

With more than three classes the solver switches from exhaustive simplex
enumeration to greedy unit reallocation; this exercises that path through
the full pipeline, plus multi-class classification and dispatching.
"""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.experiments.runner import build_bundle, make_controller
from repro.workloads.schedule import constant_schedule
from repro.workloads.tpcc import tpcc_mix
from repro.workloads.tpch import tpch_mix


@pytest.fixture(scope="module")
def five_class_run():
    classes = [
        ServiceClass("adhoc", "olap", VelocityGoal(0.3), importance=1),
        ServiceClass("reports", "olap", VelocityGoal(0.4), importance=1),
        ServiceClass("dashboards", "olap", VelocityGoal(0.5), importance=2),
        ServiceClass("exec", "olap", VelocityGoal(0.6), importance=2),
        ServiceClass("orders", "oltp", ResponseTimeGoal(0.25), importance=3),
    ]
    olap = tpch_mix()
    mixes = {c.name: (olap if c.kind == "olap" else tpcc_mix()) for c in classes}
    schedule = constant_schedule(
        60.0, 2,
        {"adhoc": 2, "reports": 2, "dashboards": 2, "exec": 2, "orders": 12},
    )
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=60.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=30.0),
        planner=PlannerConfig(control_interval=30.0),
    )
    bundle = build_bundle(config=config, schedule=schedule,
                          classes=classes, mixes=mixes)
    scheduler = make_controller(bundle, "qs")
    scheduler.planner.add_plan_listener(bundle.collector.on_plan)
    scheduler.start()
    bundle.manager.start()
    bundle.run()
    return bundle, scheduler


def test_greedy_solver_path_used(five_class_run):
    bundle, scheduler = five_class_run
    assert scheduler.planner.intervals_run >= 3
    assert scheduler.solver.solve_calls >= 3


def test_plans_cover_all_five_classes(five_class_run):
    bundle, scheduler = five_class_run
    plan = scheduler.plan
    assert len(plan) == 5
    assert plan.total_allocated <= bundle.config.system_cost_limit + 1e-6
    for name in plan:
        assert plan.limit(name) >= bundle.config.planner.min_class_limit - 1e-9


def test_all_classes_complete_work(five_class_run):
    bundle, _ = five_class_run
    for name in ("adhoc", "reports", "dashboards", "exec", "orders"):
        series = bundle.collector.metric_series(name, "throughput")
        assert any(v for v in series if v), name


def test_oltp_class_still_bypasses(five_class_run):
    bundle, _ = five_class_run
    assert not bundle.patroller.intercepts("orders")
    for name in ("adhoc", "reports", "dashboards", "exec"):
        assert bundle.patroller.intercepts(name)


def test_dispatcher_isolates_five_queues(five_class_run):
    bundle, scheduler = five_class_run
    for name in ("adhoc", "reports", "dashboards", "exec"):
        assert scheduler.dispatcher.queue_length(name) >= 0
        assert scheduler.dispatcher.in_flight_cost(name) >= 0.0
