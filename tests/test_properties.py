"""Property-based tests (hypothesis) for core data structures and invariants.

Each property pins an invariant the rest of the system leans on:

* PS resources conserve work and never finish a job early;
* the simulator never runs time backwards and fires in order;
* the solver always emits a feasible plan that spends the budget;
* the paper's models respect their clamps for any input;
* goals/utilities keep their monotonicity contracts everywhere.
"""

import math

import pytest

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.models import OLAPVelocityModel, OLTPResponseTimeModel
from repro.core.plan import SchedulingPlan
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.core.solver import ClassStatus, PerformanceSolver, _compositions
from repro.core.utility import (
    PiecewiseLinearUtility,
    SigmoidUtility,
    StepUtility,
)
from repro.dbms.query import make_phases
from repro.workloads.trace import TraceEntry
from repro.sim.engine import Simulator
from repro.sim.resources import ProcessorSharingResource, PSJob
from repro.sim.stats import WelfordAccumulator

# ---------------------------------------------------------------------------
# Simulator ordering
# ---------------------------------------------------------------------------


@given(st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_events_always_fire_in_nondecreasing_time_order(delays):
    sim = Simulator()
    fired = []
    for delay in delays:
        sim.schedule(delay, lambda: fired.append(sim.now))
    sim.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


# ---------------------------------------------------------------------------
# Processor sharing conservation
# ---------------------------------------------------------------------------


@given(
    demands=st.lists(
        st.floats(min_value=0.01, max_value=50.0), min_size=1, max_size=15
    ),
    servers=st.integers(min_value=1, max_value=8),
)
@settings(max_examples=60, deadline=None)
def test_ps_completes_all_work_no_earlier_than_ideal(demands, servers):
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "p", servers)
    finishes = {}
    for index, demand in enumerate(demands):
        pool.submit(
            PSJob(str(index), demand, on_complete=lambda j: finishes.__setitem__(j.name, sim.now))
        )
    sim.run()
    assert len(finishes) == len(demands)
    assert pool.completed_demand == sum(demands) or math.isclose(
        pool.completed_demand, sum(demands)
    )
    for index, demand in enumerate(demands):
        # No job can finish before its demand at full speed...
        assert finishes[str(index)] >= demand * (1 - 1e-9)
    # ...and the whole batch cannot beat the aggregate capacity bound.
    makespan = max(finishes.values())
    assert makespan >= sum(demands) / servers * (1 - 1e-9)


@given(
    demands=st.lists(
        st.floats(min_value=0.1, max_value=20.0), min_size=2, max_size=10
    )
)
@settings(max_examples=40, deadline=None)
def test_ps_equal_arrivals_finish_in_demand_order(demands):
    assume(len(set(round(d, 6) for d in demands)) == len(demands))
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "p", 1)
    order = []
    for index, demand in enumerate(demands):
        pool.submit(PSJob((index, demand), demand, on_complete=lambda j: order.append(j.name)))
    sim.run()
    assert [name[1] for name in order] == sorted(demands)


# ---------------------------------------------------------------------------
# Phase construction
# ---------------------------------------------------------------------------


@given(
    cpu=st.floats(min_value=0.0, max_value=100.0),
    io=st.floats(min_value=0.0, max_value=100.0),
    rounds=st.integers(min_value=1, max_value=12),
)
@settings(max_examples=100, deadline=None)
def test_make_phases_conserves_demand(cpu, io, rounds):
    assume(cpu + io > 0)
    phases = make_phases(cpu, io, rounds)
    total_cpu = sum(p.demand for p in phases if p.kind == "cpu")
    total_io = sum(p.demand for p in phases if p.kind == "io")
    assert math.isclose(total_cpu, cpu, abs_tol=1e-9)
    assert math.isclose(total_io, io, abs_tol=1e-9)
    assert all(p.demand >= 0 for p in phases)


# ---------------------------------------------------------------------------
# Models
# ---------------------------------------------------------------------------


@given(
    velocity=st.floats(min_value=-2.0, max_value=3.0),
    previous=st.floats(min_value=0.0, max_value=1e6),
    new=st.floats(min_value=0.0, max_value=1e6),
)
@settings(max_examples=150, deadline=None)
def test_velocity_model_always_in_unit_interval(velocity, previous, new):
    predicted = OLAPVelocityModel.predict(velocity, previous, new)
    assert 0.0 <= predicted <= 1.0


@given(
    t=st.floats(min_value=0.0, max_value=10.0),
    c_prev=st.floats(min_value=0.0, max_value=1e5),
    c_new=st.floats(min_value=0.0, max_value=1e5),
)
@settings(max_examples=100, deadline=None)
def test_oltp_model_monotone_decreasing_in_limit(t, c_prev, c_new):
    model = OLTPResponseTimeModel(prior_slope=-4e-6)
    predicted = model.predict(t, c_prev, c_new)
    assert predicted >= 1e-3
    if c_new > c_prev:
        assert predicted <= model.predict(t, c_prev, c_prev) + 1e-12


@given(
    deltas=st.lists(
        st.tuples(
            st.floats(min_value=-20_000, max_value=20_000),
            st.floats(min_value=-0.5, max_value=0.5),
        ),
        max_size=30,
    )
)
@settings(max_examples=60, deadline=None)
def test_oltp_model_slope_always_negative_and_bounded(deltas):
    model = OLTPResponseTimeModel(prior_slope=-4e-6)
    for delta_limit, delta_rt in deltas:
        model.observe(delta_limit, delta_rt)
    assert model.slope < 0
    assert -4e-6 * 3.0 - 1e-12 <= model.slope <= -4e-6 / 3.0 + 1e-12


# ---------------------------------------------------------------------------
# Goals and utilities
# ---------------------------------------------------------------------------


@given(
    goal=st.floats(min_value=0.05, max_value=1.0),
    value=st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=100, deadline=None)
def test_velocity_goal_satisfied_iff_achievement_at_least_one(goal, value):
    g = VelocityGoal(goal)
    assert g.satisfied(value) == (g.achievement(value) >= 1.0)
    assert g.satisfied(value) == (value >= goal)


@given(
    goal=st.floats(min_value=0.05, max_value=5.0),
    value=st.floats(min_value=0.001, max_value=20.0),
)
@settings(max_examples=100, deadline=None)
def test_response_goal_satisfied_iff_at_or_below(goal, value):
    g = ResponseTimeGoal(goal)
    assert g.satisfied(value) == (value <= goal + 1e-12)
    # Linear in value: equal deltas, equal achievement deltas.
    assert g.achievement(value) <= 2.0


@given(
    r1=st.floats(min_value=0.0, max_value=2.5),
    r2=st.floats(min_value=0.0, max_value=2.5),
    importance=st.integers(min_value=1, max_value=5),
    family=st.sampled_from([PiecewiseLinearUtility(), SigmoidUtility(), StepUtility()]),
)
@settings(max_examples=150, deadline=None)
def test_utilities_monotone_in_achievement(r1, r2, importance, family):
    low, high = min(r1, r2), max(r1, r2)
    assert family.value(low, importance) <= family.value(high, importance) + 1e-12


# ---------------------------------------------------------------------------
# Solver feasibility
# ---------------------------------------------------------------------------


@st.composite
def solver_inputs(draw):
    n_olap = draw(st.integers(min_value=1, max_value=3))
    statuses = []
    for index in range(n_olap):
        goal = draw(st.floats(min_value=0.2, max_value=0.9))
        velocity = draw(st.floats(min_value=0.05, max_value=1.0))
        limit = draw(st.floats(min_value=1_000.0, max_value=25_000.0))
        importance = draw(st.integers(min_value=1, max_value=3))
        statuses.append(
            ClassStatus(
                ServiceClass("olap{}".format(index), "olap", VelocityGoal(goal), importance),
                limit,
                velocity,
            )
        )
    if draw(st.booleans()):
        t = draw(st.floats(min_value=0.01, max_value=1.0))
        limit = draw(st.floats(min_value=1_000.0, max_value=25_000.0))
        statuses.append(
            ClassStatus(
                ServiceClass("oltp", "oltp", ResponseTimeGoal(0.25), 3), limit, t
            )
        )
    return statuses


@given(statuses=solver_inputs())
@settings(max_examples=50, deadline=None)
def test_solver_always_emits_feasible_full_allocation(statuses):
    solver = PerformanceSolver(
        utility=PiecewiseLinearUtility(),
        oltp_model=OLTPResponseTimeModel(prior_slope=-4.2e-6),
        system_cost_limit=30_000.0,
        grid_timerons=1_000.0,
        min_class_limit=1_000.0,
    )
    plan = solver.solve(statuses)
    assert plan.total_allocated <= 30_000.0 + 1e-6
    assert plan.total_allocated >= 30_000.0 - 1_000.0  # spends to the grid
    for status in statuses:
        assert plan.limit(status.service_class.name) >= 1_000.0 - 1e-9


@given(
    total=st.integers(min_value=0, max_value=12),
    parts=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60, deadline=None)
def test_compositions_cover_simplex_exactly(total, parts):
    combos = list(_compositions(total, parts))
    assert all(sum(c) == total for c in combos)
    assert all(len(c) == parts for c in combos)
    assert len(set(combos)) == len(combos)
    expected = math.comb(total + parts - 1, parts - 1)
    assert len(combos) == expected


# ---------------------------------------------------------------------------
# Plans
# ---------------------------------------------------------------------------


@given(
    limits=st.lists(st.floats(min_value=0.0, max_value=10_000.0), min_size=1, max_size=6)
)
@settings(max_examples=80, deadline=None)
def test_plan_accepts_exactly_the_sum_invariant(limits):
    total = sum(limits)
    names = {"c{}".format(i): v for i, v in enumerate(limits)}
    plan = SchedulingPlan(names, max(total, 1e-9) * 1.0000001)
    assert plan.total_allocated <= plan.system_cost_limit * (1 + 1e-5)
    assert plan.slack >= -1e-6


# ---------------------------------------------------------------------------
# Statistics
# ---------------------------------------------------------------------------


@given(
    values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=200
    )
)
@settings(max_examples=80, deadline=None)
def test_welford_mean_within_min_max(values):
    acc = WelfordAccumulator()
    for v in values:
        acc.add(v)
    assert acc.minimum - 1e-6 <= acc.mean <= acc.maximum + 1e-6
    assert acc.variance >= 0.0


# ---------------------------------------------------------------------------
# Trace serialisation
# ---------------------------------------------------------------------------


@st.composite
def trace_entries(draw):
    count = draw(st.integers(min_value=0, max_value=25))
    times = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=1e4),
                min_size=count,
                max_size=count,
            )
        )
    )
    entries = []
    for index, time in enumerate(times):
        entries.append(
            TraceEntry(
                time=time,
                class_name=draw(st.sampled_from(["a", "b", "c"])),
                client_id="cl{}".format(index),
                template=draw(st.sampled_from(["q1", "q2"])),
                kind=draw(st.sampled_from(["olap", "oltp"])),
                cpu_demand=draw(st.floats(min_value=0.0, max_value=100.0)),
                io_demand=draw(st.floats(min_value=0.0, max_value=100.0)),
                rounds=draw(st.integers(min_value=1, max_value=8)),
                parallelism=draw(st.integers(min_value=1, max_value=4)),
            )
        )
    return entries


@given(entries=trace_entries())
@settings(max_examples=50, deadline=None)
def test_trace_json_roundtrip_preserves_everything(entries):
    from repro.workloads.trace import WorkloadTrace

    trace = WorkloadTrace(entries)
    restored = WorkloadTrace.from_json(trace.to_json())
    assert restored.entries == trace.entries
    assert restored.duration == trace.duration
    assert restored.classes() == trace.classes()


# ---------------------------------------------------------------------------
# Schedules
# ---------------------------------------------------------------------------


@given(
    period_seconds=st.floats(min_value=0.1, max_value=1e3),
    counts=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=30),
    probe=st.floats(min_value=0.0, max_value=1e6),
)
@settings(max_examples=80, deadline=None)
def test_schedule_lookup_always_in_range(period_seconds, counts, probe):
    from repro.workloads.schedule import PeriodSchedule

    schedule = PeriodSchedule(period_seconds, {"x": counts})
    period = schedule.period_at(probe)
    assert 0 <= period < schedule.num_periods
    assert schedule.count_at("x", probe) == counts[period]


# ---------------------------------------------------------------------------
# In-engine gate conservation
# ---------------------------------------------------------------------------


@given(
    costs=st.lists(st.floats(min_value=10.0, max_value=5_000.0),
                   min_size=1, max_size=12),
    limit=st.floats(min_value=500.0, max_value=6_000.0),
)
@settings(max_examples=30, deadline=None)
def test_engine_gate_conserves_queries_and_accounting(costs, limit):
    from repro.config import default_config
    from repro.core.direct import EngineGate
    from repro.core.plan import SchedulingPlan
    from repro.core.service_class import ServiceClass, VelocityGoal
    from repro.dbms.engine import DatabaseEngine
    from repro.dbms.query import CPU, Phase, Query
    from repro.sim.rng import RandomStreams

    sim = Simulator()
    engine = DatabaseEngine(sim, default_config(), RandomStreams(7))
    gate_class = ServiceClass("g", "olap", VelocityGoal(0.5), 1)
    gate = EngineGate(
        engine, [gate_class], SchedulingPlan({"g": limit}, 1e9)
    )
    for index, cost in enumerate(costs):
        query = Query(
            query_id=index + 1,
            class_name="g",
            client_id="c{}".format(index),
            template="t",
            kind="olap",
            phases=(Phase(CPU, 0.1),),
            true_cost=cost,
            estimated_cost=cost,
        )
        query.submit_time = 0.0
        engine.execute(query)
    sim.run()
    # Every statement eventually ran (starvation guard included)...
    assert engine.completed_queries == len(costs)
    assert gate.released_count("g") == len(costs)
    # ...and the accounting returned exactly to zero.
    assert gate.in_flight_cost("g") == pytest.approx(0.0, abs=1e-6)
    assert gate.queue_length("g") == 0


# ---------------------------------------------------------------------------
# Deficit allocator feasibility
# ---------------------------------------------------------------------------


@given(statuses=solver_inputs())
@settings(max_examples=40, deadline=None)
def test_deficit_allocator_always_feasible(statuses):
    from repro.core.heuristic import DeficitAllocator

    allocator = DeficitAllocator(system_cost_limit=30_000.0)
    plan = allocator.solve(statuses)
    assert plan.total_allocated <= 30_000.0 + 1e-6
    for status in statuses:
        assert plan.limit(status.service_class.name) >= 1_000.0 - 1e-9


# ---------------------------------------------------------------------------
# Dispatcher accounting conservation under cancellation
# ---------------------------------------------------------------------------


@given(
    specs=st.lists(
        st.tuples(
            st.floats(min_value=100.0, max_value=2_000.0),  # estimated cost
            st.floats(min_value=0.2, max_value=5.0),        # execution demand
            st.one_of(                                      # abandon time
                st.none(), st.floats(min_value=0.0, max_value=4.0)
            ),
        ),
        min_size=1,
        max_size=10,
    ),
    limit=st.floats(min_value=500.0, max_value=4_000.0),
    release_latency=st.sampled_from([0.0, 0.3]),
)
@settings(max_examples=25, deadline=None)
def test_dispatcher_accounting_survives_any_cancel_interleaving(
    specs, limit, release_latency
):
    """After any interleaving of release/complete/cancel the in-flight
    accounting returns exactly to zero and the release ledger balances
    (released == completed + cancelled)."""
    from repro.config import PatrollerConfig, default_config
    from repro.core.dispatcher import Dispatcher
    from repro.dbms.engine import DatabaseEngine
    from repro.dbms.query import CPU, Phase, Query, QueryState
    from repro.patroller.patroller import QueryPatroller
    from repro.sim.rng import RandomStreams

    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(
            interception_latency=0.0,
            release_latency=release_latency,
            overhead_cpu_demand=0.0,
        )
    )
    engine = DatabaseEngine(sim, config, RandomStreams(17))
    patroller = QueryPatroller(sim, engine, config.patroller)
    patroller.enable_for_class("c")
    service_class = ServiceClass("c", "olap", VelocityGoal(0.5), 1)
    dispatcher = Dispatcher(
        patroller, engine, [service_class], SchedulingPlan({"c": limit}, 1e9)
    )
    patroller.set_release_handler(dispatcher.enqueue)
    queries = []
    for index, (cost, demand, cancel_at) in enumerate(specs):
        query = Query(
            query_id=40_000 + index,
            class_name="c",
            client_id="p{}".format(index),
            template="t",
            kind="olap",
            phases=(Phase(CPU, demand),),
            true_cost=cost,
            estimated_cost=cost,
        )
        queries.append(query)
        patroller.submit(query)
        if cancel_at is not None:
            sim.schedule(cancel_at, lambda q=query: patroller.cancel(q))
    sim.run()
    # In-flight accounting returned exactly to zero...
    assert dispatcher.in_flight_count("c") == 0
    assert dispatcher.in_flight_cost("c") == 0.0
    assert dispatcher.queue_length("c") == 0
    # ...the release ledger balances...
    assert dispatcher.released_count("c") == (
        dispatcher.completed_count("c") + dispatcher.cancelled_count("c")
    )
    # ...and the dispatcher agrees with the engine about completions.
    completed = sum(1 for q in queries if q.state == QueryState.COMPLETED)
    assert engine.completed_queries == completed
    assert dispatcher.completed_count("c") == completed
