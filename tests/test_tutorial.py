"""Executable checks for docs/TUTORIAL.md code.

Documentation that doesn't run is worse than none; this mirrors the
tutorial's custom controller and workload-definition snippets and asserts
they behave as the text claims.
"""

from collections import deque

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.experiments.runner import build_bundle
from repro.workloads.schedule import constant_schedule
from repro.workloads.spec import QueryTemplate, WorkloadMix


class RoundRobinController:
    """The tutorial's minimal fair-share controller, verbatim in spirit."""

    name = "round_robin"

    def __init__(self, patroller, engine, classes):
        self.patroller = patroller
        self.queues = {c.name: deque() for c in classes if c.directly_controlled}
        self.busy = {name: False for name in self.queues}
        for c in classes:
            (patroller.enable_for_class if c.directly_controlled
             else patroller.disable_for_class)(c.name)
        engine.add_completion_listener(self.on_done)

    def start(self):
        self.patroller.set_release_handler(self.on_intercepted)

    def describe(self):
        return "Round-robin, one statement per class"

    def on_intercepted(self, query):
        self.queues[query.class_name].append(query)
        self.pump(query.class_name)

    def on_done(self, query):
        if query.class_name in self.busy:
            self.busy[query.class_name] = False
            self.pump(query.class_name)

    def pump(self, name):
        if not self.busy[name] and self.queues[name]:
            self.busy[name] = True
            self.patroller.release(self.queues[name].popleft())


def tutorial_workloads():
    analytics = WorkloadMix("analytics", [
        QueryTemplate("rollup", "olap", cpu_demand=4.0, io_demand=8.0,
                      rounds=4, parallelism=2, weight=3.0),
        QueryTemplate("deep_scan", "olap", cpu_demand=9.0, io_demand=18.0,
                      rounds=4, parallelism=2, weight=1.0),
    ])
    checkout = WorkloadMix("checkout", [
        QueryTemplate("pay", "oltp", cpu_demand=0.012, io_demand=0.004),
    ])
    classes = [
        ServiceClass("analytics", "olap", VelocityGoal(0.5), importance=1),
        ServiceClass("checkout", "oltp", ResponseTimeGoal(0.2), importance=3),
    ]
    return analytics, checkout, classes


def test_custom_controller_runs_on_the_harness():
    analytics, checkout, classes = tutorial_workloads()
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=30.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0),
        planner=PlannerConfig(control_interval=15.0),
    )
    schedule = constant_schedule(30.0, 2, {"analytics": 3, "checkout": 6})
    bundle = build_bundle(
        config=config, schedule=schedule, classes=classes,
        mixes={"analytics": analytics, "checkout": checkout},
    )
    controller = RoundRobinController(bundle.patroller, bundle.engine, bundle.classes)
    controller.start()
    bundle.manager.start()
    bundle.run()
    # One OLAP statement at a time, the OLTP class bypassing:
    assert bundle.engine.completed_queries > 50
    analytics_class = classes[0]
    velocities = bundle.collector.metric_series("analytics", "velocity")
    assert any(v is not None for v in velocities)
    assert controller.describe() == "Round-robin, one statement per class"
    # The single-slot release rule genuinely serialized the OLAP class.
    cell0 = bundle.collector.cell(0, "analytics")
    assert cell0 is None or cell0.completions <= 10


def test_tutorial_engine_probes_exist():
    """The measuring section's one-off probes are real API."""
    analytics, checkout, classes = tutorial_workloads()
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=1),
    )
    schedule = constant_schedule(20.0, 1, {"analytics": 1, "checkout": 2})
    bundle = build_bundle(config=config, schedule=schedule, classes=classes,
                          mixes={"analytics": analytics, "checkout": checkout})
    controller = RoundRobinController(bundle.patroller, bundle.engine, bundle.classes)
    controller.start()
    bundle.manager.start()
    bundle.run()
    assert bundle.engine.executing_cost("analytics") >= 0.0
    assert bundle.engine.cpu.utilization() > 0.0
    rt = bundle.engine.snapshot_monitor.average_response_time("checkout")
    assert rt is None or rt > 0.0
