"""Tests for the sharded experiment spec and cost-limit partitioning."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec
from repro.shard.spec import (
    ShardedExperimentSpec,
    default_class_weights,
    split_cost_limit,
)
from repro.workloads.schedule import constant_schedule


def tiny_config(**updates):
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )
    return config.with_updates(**updates) if updates else config


def tiny_base():
    return ExperimentSpec(
        controller="qs",
        config=tiny_config(),
        schedule=constant_schedule(20.0, 2, {"class1": 4, "class2": 4, "class3": 12}),
    )


class TestSplitCostLimit:
    def test_shares_sum_exactly_to_total(self):
        shares = split_cost_limit(30_000.0, [1.0, 2.0, 4.0], 3_000.0)
        assert sum(shares) == 30_000.0
        assert all(share >= 3_000.0 for share in shares)

    def test_proportional_to_demand_above_floor(self):
        shares = split_cost_limit(10_000.0, [1.0, 3.0], 2_000.0)
        # 6000 spare split 1:3.
        assert shares[0] == pytest.approx(3_500.0)
        assert shares[1] == pytest.approx(6_500.0)

    def test_zero_demand_splits_equally(self):
        shares = split_cost_limit(9_000.0, [0.0, 0.0, 0.0], 1_000.0)
        assert shares == [3_000.0, 3_000.0, 3_000.0]

    def test_underprovisioned_total_raises(self):
        with pytest.raises(ConfigurationError, match="cannot give"):
            split_cost_limit(5_000.0, [1.0, 1.0], 3_000.0)


class TestShardedExperimentSpec:
    def test_single_shard_returns_base_unchanged(self):
        base = tiny_base()
        spec = ShardedExperimentSpec(base=base, shards=1).validate()
        specs = spec.shard_specs()
        # Identity, not a copy: the unsharded run path must be untouched
        # so single-shard runs stay pinned by the existing golden data.
        assert specs == [base]
        assert specs[0] is base

    def test_shard_seeds_stride(self):
        spec = ShardedExperimentSpec(base=tiny_base(), shards=3)
        seeds = [s.config.seed for s in spec.shard_specs()]
        assert seeds == [7, 1007, 2007]

    def test_shard_zero_keeps_base_seed(self):
        spec = ShardedExperimentSpec(base=tiny_base(), shards=2, seed_stride=5)
        assert spec.shard_specs()[0].config.seed == 7

    def test_cost_limits_partition_global_exactly(self):
        spec = ShardedExperimentSpec(base=tiny_base(), shards=4, router="cost-aware")
        limits = [s.config.system_cost_limit for s in spec.shard_specs()]
        assert sum(limits) == tiny_config().system_cost_limit
        assert min(limits) >= spec.cost_floor()

    def test_schedules_partition_global_exactly(self):
        spec = ShardedExperimentSpec(base=tiny_base(), shards=3, router="hash")
        shards = [s.schedule for s in spec.shard_specs()]
        base_schedule = tiny_base().schedule
        for name, series in base_schedule.counts.items():
            for period, count in enumerate(series):
                assert sum(s.counts[name][period] for s in shards) == count

    def test_underprovisioned_limit_raises_at_validate(self):
        # 16 shards x 3 classes x 1000 timerons = 48k floor > 30k default.
        spec = ShardedExperimentSpec(base=tiny_base(), shards=16)
        with pytest.raises(ConfigurationError, match="system cost limit"):
            spec.validate()

    def test_rejects_unknown_router(self):
        with pytest.raises(ConfigurationError, match="router"):
            ShardedExperimentSpec(base=tiny_base(), shards=2, router="nope").validate()

    def test_rejects_unknown_rebalance(self):
        with pytest.raises(ConfigurationError, match="rebalance"):
            ShardedExperimentSpec(
                base=tiny_base(), shards=2, rebalance="hourly"
            ).validate()

    def test_rejects_non_positive_shards(self):
        with pytest.raises(ConfigurationError, match="shards"):
            ShardedExperimentSpec(base=tiny_base(), shards=0).validate()

    def test_rejects_bad_seed_stride(self):
        with pytest.raises(ConfigurationError, match="seed_stride"):
            ShardedExperimentSpec(
                base=tiny_base(), shards=2, seed_stride=0
            ).validate()

    def test_compilation_is_deterministic(self):
        spec = ShardedExperimentSpec(base=tiny_base(), shards=3, router="cost-aware")
        first = spec.shard_specs()
        second = spec.shard_specs()
        assert [s.config.seed for s in first] == [s.config.seed for s in second]
        assert [s.schedule.counts for s in first] == [s.schedule.counts for s in second]
        assert [s.config.system_cost_limit for s in first] == [
            s.config.system_cost_limit for s in second
        ]


def test_default_class_weights_rank_olap_above_oltp():
    from repro.core.service_class import paper_classes

    weights = default_class_weights(paper_classes())
    # TPC-H templates are orders of magnitude heavier than TPC-C's.
    assert weights["class1"] > weights["class3"]
    assert weights["class1"] == weights["class2"]
