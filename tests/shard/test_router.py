"""Tests for the shard routing policies."""

import zlib

import pytest

from repro.errors import ConfigurationError
from repro.shard.router import (
    ROUTER_NAMES,
    CostAwareRouter,
    HashRouter,
    LeastLoadedRouter,
    Router,
    make_router,
    partition_schedule,
    routed_demand,
)
from repro.workloads.schedule import PeriodSchedule, constant_schedule


def sample_schedule():
    return PeriodSchedule(
        10.0,
        {
            "class1": (4, 8, 2),
            "class2": (6, 0, 10),
            "class3": (20, 30, 40),
        },
    )


@pytest.mark.parametrize("name", ROUTER_NAMES)
def test_every_policy_conserves_counts(name):
    schedule = sample_schedule()
    shards = partition_schedule(schedule, 4, make_router(name))
    assert len(shards) == 4
    for shard in shards:
        assert shard.period_seconds == schedule.period_seconds
        assert shard.num_periods == schedule.num_periods
        assert set(shard.counts) == set(schedule.counts)
    for class_name, series in schedule.counts.items():
        for period, count in enumerate(series):
            routed = sum(s.counts[class_name][period] for s in shards)
            assert routed == count


@pytest.mark.parametrize("name", ROUTER_NAMES)
def test_every_policy_is_deterministic(name):
    schedule = sample_schedule()
    first = partition_schedule(schedule, 3, make_router(name))
    second = partition_schedule(schedule, 3, make_router(name))
    assert [s.counts for s in first] == [s.counts for s in second]


def test_hash_router_uses_crc32_not_builtin_hash():
    # Builtin hash() is salted per process; the routing must instead be
    # reproducible from first principles in any interpreter.
    counts = HashRouter().split("class1", 2, 5, 3)
    expected = [0, 0, 0]
    for slot in range(5):
        expected[zlib.crc32("class1:2:{}".format(slot).encode()) % 3] += 1
    assert counts == expected


def test_least_loaded_balances_counts_within_one():
    counts = LeastLoadedRouter().split("class3", 0, 31, 4)
    assert sum(counts) == 31
    assert max(counts) - min(counts) <= 1


def test_least_loaded_resets_loads_each_period():
    router = LeastLoadedRouter()
    router.begin_period(0)
    first = router.split("class3", 0, 7, 2)
    router.begin_period(1)
    second = router.split("class3", 1, 7, 2)
    # Same inputs after a reset give the same greedy placement; without
    # the reset the second split would compensate for the first's skew.
    assert first == second


def test_cost_aware_weights_heavy_classes():
    # One heavy class already placed on shard 0 pushes the next (light)
    # class's clients toward shard 1 until the cost evens out.
    router = CostAwareRouter({"heavy": 100.0, "light": 1.0})
    router.begin_period(0)
    heavy = router.split("heavy", 0, 1, 2)
    light = router.split("light", 0, 10, 2)
    assert heavy == [1, 0]
    # All ten light clients fit on shard 1 before its load reaches 100.
    assert light == [0, 10]


def test_cost_aware_defaults_to_uniform_weight():
    counts = CostAwareRouter().split("unknown", 0, 8, 4)
    assert counts == [2, 2, 2, 2]


def test_make_router_rejects_unknown_name():
    with pytest.raises(ConfigurationError):
        make_router("round-robin")


def test_partition_schedule_rejects_bad_router():
    class BrokenRouter(Router):
        name = "broken"

        def split(self, class_name, period, count, num_shards):
            return [count]  # wrong arity

    with pytest.raises(ConfigurationError):
        partition_schedule(sample_schedule(), 2, BrokenRouter())


def test_partition_single_shard_passes_everything_through():
    schedule = sample_schedule()
    (shard,) = partition_schedule(schedule, 1, make_router("hash"))
    assert shard.counts == schedule.counts


def test_routed_demand_weights_by_class():
    schedules = [
        constant_schedule(10.0, 2, {"a": 1, "b": 2}),
        constant_schedule(10.0, 2, {"a": 0, "b": 1}),
    ]
    demands = routed_demand(schedules, {"a": 10.0, "b": 1.0})
    assert demands == [2 * (10.0 + 2.0), 2 * 1.0]
