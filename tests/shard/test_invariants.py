"""Tests for the cross-shard global invariants."""

from repro.shard.invariants import (
    check_completion_conservation,
    check_cost_partition,
    check_routing_conservation,
)
from repro.workloads.schedule import PeriodSchedule, constant_schedule


def test_routing_conservation_passes_on_exact_partition():
    global_schedule = constant_schedule(10.0, 2, {"a": 4, "b": 6})
    shards = [
        constant_schedule(10.0, 2, {"a": 1, "b": 4}),
        constant_schedule(10.0, 2, {"a": 3, "b": 2}),
    ]
    assert check_routing_conservation(global_schedule, shards) == []


def test_routing_conservation_flags_lost_clients():
    global_schedule = constant_schedule(10.0, 2, {"a": 4})
    shards = [
        constant_schedule(10.0, 2, {"a": 1}),
        constant_schedule(10.0, 2, {"a": 2}),
    ]
    violations = check_routing_conservation(global_schedule, shards)
    assert violations
    assert all(v.name == "shard_routing_conservation" for v in violations)
    assert "3 clients routed" in violations[0].message


def test_routing_conservation_flags_unknown_class():
    global_schedule = constant_schedule(10.0, 1, {"a": 2})
    shards = [PeriodSchedule(10.0, {"a": (2,), "ghost": (1,)})]
    violations = check_routing_conservation(global_schedule, shards)
    assert any("ghost" in v.message for v in violations)


def test_cost_partition_passes_on_exact_sum():
    assert check_cost_partition(30_000.0, [10_000.0, 12_000.0, 8_000.0]) == []


def test_cost_partition_flags_drift():
    violations = check_cost_partition(30_000.0, [10_000.0, 10_000.0])
    assert violations
    assert "sum to 20000" in violations[0].message


def test_cost_partition_flags_non_positive_share():
    violations = check_cost_partition(10_000.0, [10_001.0, -1.0])
    assert any("non-positive" in v.message for v in violations)


def test_completion_conservation_passes_when_merged_matches():
    per_shard = [{"a": 10, "b": 2}, {"a": 5}]
    merged = {"a": 15, "b": 2}
    assert check_completion_conservation(per_shard, merged) == []


def test_completion_conservation_flags_mismatch():
    per_shard = [{"a": 10}, {"a": 5}]
    violations = check_completion_conservation(per_shard, {"a": 14})
    assert violations
    assert "15" in violations[0].message and "14" in violations[0].message
