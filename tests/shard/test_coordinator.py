"""Tests for the sharded coordinator: both modes, determinism, invariants."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_spec
from repro.shard import ShardedExperimentSpec, run_sharded
from repro.workloads.schedule import constant_schedule


def tiny_config():
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )


def tiny_base(controller="qs", invariants="strict"):
    return ExperimentSpec(
        controller=controller,
        config=tiny_config(),
        schedule=constant_schedule(20.0, 2, {"class1": 4, "class2": 4, "class3": 12}),
        invariants=invariants,
    )


def test_single_shard_matches_unsharded_run_bitwise():
    base = tiny_base()
    direct = run_spec(base)
    sharded = run_sharded(ShardedExperimentSpec(base=base, shards=1))
    assert len(sharded.summaries) == 1
    summary = sharded.summaries[0]
    assert summary.total_completions == direct.collector.total_completions
    assert summary.attainment == direct.goal_attainment()
    assert summary.performance_series == direct.performance_series()
    assert summary.class_completions == direct.collector.completions_by_class()


def test_static_mode_worker_count_never_changes_results():
    spec = ShardedExperimentSpec(base=tiny_base(), shards=2, router="hash")
    serial = run_sharded(spec, jobs=1)
    parallel = run_sharded(spec, jobs=2)
    for left, right in zip(serial.summaries, parallel.summaries):
        assert left.attainment == right.attainment
        assert left.total_completions == right.total_completions
        assert left.class_completions == right.class_completions
        assert left.performance_series == right.performance_series
    assert serial.report.attainment == parallel.report.attainment
    assert serial.final_cost_limits == parallel.final_cost_limits


def test_global_invariants_hold_on_clean_run():
    result = run_sharded(
        ShardedExperimentSpec(base=tiny_base(), shards=3, router="least-loaded")
    )
    assert result.ok
    assert result.report.ok
    assert result.report.violations == []
    assert sum(result.final_cost_limits) == tiny_config().system_cost_limit


def test_report_merges_all_shards():
    result = run_sharded(
        ShardedExperimentSpec(base=tiny_base(), shards=2, router="cost-aware")
    )
    assert result.report.shards == 2
    assert result.report.total_completions == sum(
        s.total_completions for s in result.summaries
    )
    assert len(result.report.per_shard) == 2
    assert result.report.per_shard[0].seed == 7
    assert result.report.per_shard[1].seed == 1007


def test_interval_rebalance_runs_and_conserves_budget():
    spec = ShardedExperimentSpec(
        base=tiny_base(), shards=2, router="cost-aware", rebalance="interval"
    )
    result = run_sharded(spec, jobs=1)
    assert result.ok
    assert sum(result.final_cost_limits) == pytest.approx(
        tiny_config().system_cost_limit
    )
    assert result.report.total_completions > 0


def test_interval_rebalance_requires_serial_execution():
    spec = ShardedExperimentSpec(
        base=tiny_base(), shards=2, rebalance="interval"
    )
    with pytest.raises(ConfigurationError, match="jobs=1"):
        run_sharded(spec, jobs=2)


def test_interval_rebalance_requires_query_scheduler():
    spec = ShardedExperimentSpec(
        base=tiny_base(controller="none", invariants="off"),
        shards=2,
        rebalance="interval",
    )
    with pytest.raises(ConfigurationError, match="Query Scheduler"):
        run_sharded(spec, jobs=1)


def test_interval_rebalance_is_deterministic():
    spec = ShardedExperimentSpec(
        base=tiny_base(), shards=2, rebalance="interval"
    )
    first = run_sharded(spec, jobs=1)
    second = run_sharded(spec, jobs=1)
    assert first.final_cost_limits == second.final_cost_limits
    for left, right in zip(first.summaries, second.summaries):
        assert left.attainment == right.attainment
        assert left.total_completions == right.total_completions


def test_sharded_sweep_smoke():
    """2 shards x 3 swept seeds through the parallel fan-out (jobs=2)."""
    from repro.experiments.parallel import RunRequest, run_requests

    spec = ShardedExperimentSpec(base=tiny_base(), shards=2)
    requests = []
    for seed in (1, 2, 3):
        for index, shard_spec in enumerate(spec.shard_specs()):
            requests.append(
                RunRequest(
                    controller=shard_spec.controller,
                    label="seed={}:shard{:02d}".format(seed, index),
                    spec=shard_spec.with_overrides(
                        config=shard_spec.config.with_updates(seed=seed + index * 1000)
                    ),
                )
            )
    labels = [r.request_label for r in requests]
    assert len(set(labels)) == len(labels)
    outcomes = run_requests(requests, jobs=2)
    assert [o.index for o in outcomes] == list(range(len(requests)))
    assert all(o.ok for o in outcomes)
