"""End-to-end fleet demo: the sharded-fleet library scenario.

The acceptance bar for the sharded control plane: at least ten shards,
thousands of concurrent clients, run strict-invariant-clean with the
global conservation and cost-partition invariants passing.  Runs
smoke-compressed (seconds of virtual time, same schedule shape).
"""

from repro.scenarios import find_scenario, to_sharded_experiment_spec
from repro.shard import run_sharded


def test_sharded_fleet_demo_runs_clean_at_scale():
    scenario = find_scenario("sharded-fleet")
    assert scenario.shards is not None
    assert scenario.shards.count >= 10
    assert scenario.invariants == "strict"
    peak_clients = sum(
        max(counts) for counts in scenario.resolved_counts().values()
    )
    assert peak_clients >= 2000

    spec = to_sharded_experiment_spec(scenario, smoke=True)
    assert spec.shards >= 10
    result = run_sharded(spec, jobs=2)

    assert result.ok
    assert result.report.violations == []
    assert result.report.total_completions > 1000
    assert len(result.report.per_shard) == spec.shards
    # Cost partition: shard limits sum exactly to the scenario's global
    # limit and every shard clears the solver floor.
    assert sum(result.final_cost_limits) == 120_000.0
    assert min(result.final_cost_limits) >= spec.cost_floor() - 1e-9
    # Routing conservation end-to-end: every scheduled client landed on
    # exactly one shard.
    global_schedule = spec.resolved_schedule()
    shard_schedules = [s.schedule for s in spec.shard_specs()]
    for name, series in global_schedule.counts.items():
        for period, count in enumerate(series):
            assert sum(s.counts[name][period] for s in shard_schedules) == count
