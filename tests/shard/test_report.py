"""Tests for cross-shard report merging and per-shard exports."""

import json

import pytest

from repro.errors import ExportError
from repro.experiments.parallel import RunSummary
from repro.metrics.telemetry import ControlIntervalRecord, SolverTelemetry
from repro.shard.report import (
    build_sharded_report,
    export_shard_telemetry,
    format_sharded_report,
    save_sharded_report,
    shard_path,
    sharded_report_to_dict,
)
from repro.sim.stats import Histogram


def make_summary(seed, attainment, completions, histogram=None, records=()):
    return RunSummary(
        controller="qs",
        seed=seed,
        class_names=tuple(attainment),
        attainment=dict(attainment),
        performance_series={name: [1.0] for name in attainment},
        total_completions=sum(completions.values()),
        label="shard{:02d}".format(seed % 100),
        telemetry_records=tuple(records),
        class_completions=dict(completions),
        response_histograms=(
            {name: histogram.to_dict() for name in attainment} if histogram else {}
        ),
    )


class TestShardPath:
    def test_inserts_suffix_before_extension(self):
        assert shard_path("out.jsonl", 3) == "out.shard03.jsonl"

    def test_appends_when_no_extension(self):
        assert shard_path("telemetry", 0) == "telemetry.shard00"

    def test_preserves_directories(self):
        assert shard_path("a/b/run.json", 11) == "a/b/run.shard11.json"


class TestBuildShardedReport:
    def test_attainment_is_completion_weighted(self):
        # The aggregation-bug regression at shard level: 1.0 over 10
        # completions and 0.0 over 990 must pool to 0.01, not 0.5.
        summaries = [
            make_summary(0, {"c": 1.0}, {"c": 10}),
            make_summary(1, {"c": 0.0}, {"c": 990}),
        ]
        report = build_sharded_report(summaries, 2, "hash", "static", [1.0, 1.0])
        assert report.attainment["c"] == pytest.approx(0.01)
        assert report.completions["c"] == 1000

    def test_percentiles_come_from_merged_histograms(self):
        low = Histogram(0.0, 10.0, bins=10)
        high = Histogram(0.0, 10.0, bins=10)
        for _ in range(95):
            low.add(1.0)
        for _ in range(5):
            high.add(9.5)
        summaries = [
            make_summary(0, {"c": 1.0}, {"c": 95}, histogram=low),
            make_summary(1, {"c": 1.0}, {"c": 5}, histogram=high),
        ]
        report = build_sharded_report(summaries, 2, "hash", "static", [1.0, 1.0])
        tails = report.percentiles["c"]
        assert tails["p50"] < 2.0
        assert tails["p99"] > 5.0

    def test_idle_class_has_no_percentiles(self):
        report = build_sharded_report(
            [make_summary(0, {"c": 0.0}, {"c": 0})], 1, "hash", "static", [1.0]
        )
        assert "c" not in report.percentiles

    def test_format_includes_shard_rows(self):
        summaries = [
            make_summary(0, {"c": 1.0}, {"c": 5}),
            make_summary(1, {"c": 1.0}, {"c": 7}),
        ]
        report = build_sharded_report(
            summaries, 2, "cost-aware", "static", [100.0, 200.0]
        )
        text = format_sharded_report(report)
        assert "2 shards" in text
        assert "cost-aware" in text
        assert "shard00" in text and "shard01" in text
        assert "global invariants: ok" in text


class TestSaveShardedReport:
    def test_writes_json(self, tmp_path):
        report = build_sharded_report(
            [make_summary(0, {"c": 1.0}, {"c": 5})], 1, "hash", "static", [1.0]
        )
        target = tmp_path / "report.json"
        save_sharded_report(report, str(target))
        payload = json.loads(target.read_text())
        assert payload["ok"] is True
        assert payload["attainment"]["c"] == 1.0
        assert payload == sharded_report_to_dict(report)

    def test_refuses_to_overwrite(self, tmp_path):
        report = build_sharded_report(
            [make_summary(0, {"c": 1.0}, {"c": 5})], 1, "hash", "static", [1.0]
        )
        target = tmp_path / "report.json"
        target.write_text("precious")
        with pytest.raises(ExportError, match="overwrite"):
            save_sharded_report(report, str(target))
        assert target.read_text() == "precious"
        save_sharded_report(report, str(target), overwrite=True)
        assert target.read_text() != "precious"


class TestExportShardTelemetry:
    def record(self):
        return ControlIntervalRecord(
            time=1.0,
            interval_index=0,
            trigger="scheduled",
            measurements={},
            predictions={},
            solver=SolverTelemetry(
                allocation={},
                objective=None,
                evaluations=0,
                solve_calls=1,
                oltp_slope=None,
                oltp_observations=None,
            ),
            dispatcher={},
        )

    def test_writes_suffixed_paths(self, tmp_path):
        summaries = [
            make_summary(0, {"c": 1.0}, {"c": 1}, records=[self.record()]),
            make_summary(1, {"c": 1.0}, {"c": 1}, records=[self.record()]),
        ]
        base = tmp_path / "telemetry.jsonl"
        written = export_shard_telemetry(summaries, str(base))
        assert written == [
            str(tmp_path / "telemetry.shard00.jsonl"),
            str(tmp_path / "telemetry.shard01.jsonl"),
        ]
        for path in written:
            assert json.loads(open(path).readline())["time"] == 1.0

    def test_skips_shards_without_telemetry(self, tmp_path):
        summaries = [
            make_summary(0, {"c": 1.0}, {"c": 1}),
            make_summary(1, {"c": 1.0}, {"c": 1}, records=[self.record()]),
        ]
        written = export_shard_telemetry(summaries, str(tmp_path / "t.jsonl"))
        assert written == [str(tmp_path / "t.shard01.jsonl")]

    def test_refuses_to_overwrite_existing_shard_file(self, tmp_path):
        summaries = [
            make_summary(0, {"c": 1.0}, {"c": 1}, records=[self.record()]),
        ]
        target = tmp_path / "t.shard00.jsonl"
        target.write_text("precious")
        with pytest.raises(ExportError, match="overwrite"):
            export_shard_telemetry(summaries, str(tmp_path / "t.jsonl"))
        assert target.read_text() == "precious"
