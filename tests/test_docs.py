"""Documentation consistency checks.

Docs drift silently; these tests pin the claims that are cheap to verify
mechanically: referenced files exist, documented constants match the code,
and the README's command lines are real.
"""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def read(relpath):
    with open(os.path.join(REPO, relpath)) as handle:
        return handle.read()


def test_required_documents_exist():
    for relpath in (
        "README.md",
        "DESIGN.md",
        "EXPERIMENTS.md",
        "docs/API.md",
        "docs/TUTORIAL.md",
        "docs/CALIBRATION.md",
        "docs/VALIDATION.md",
        "docs/BENCHMARKS.md",
        "docs/MODELS.md",
    ):
        assert os.path.exists(os.path.join(REPO, relpath)), relpath


def test_design_md_references_existing_modules():
    text = read("DESIGN.md")
    for module in re.findall(r"`repro\.([a-z_.]+)`", text):
        path = os.path.join(REPO, "src", "repro", *module.split("."))
        assert (
            os.path.exists(path + ".py") or os.path.isdir(path)
        ), "DESIGN.md references missing module repro.{}".format(module)


def test_experiments_md_references_existing_benches():
    text = read("EXPERIMENTS.md")
    for bench in set(re.findall(r"bench_[a-z0-9_]+\.py", text)):
        assert os.path.exists(
            os.path.join(REPO, "benchmarks", bench)
        ), "EXPERIMENTS.md references missing {}".format(bench)


def test_readme_examples_exist():
    text = read("README.md")
    for example in set(re.findall(r"examples/[a-z_]+\.py", text)):
        assert os.path.exists(os.path.join(REPO, example)), example


def test_calibration_doc_constants_match_code():
    from repro.config import default_config

    config = default_config()
    text = read("docs/CALIBRATION.md")
    assert str(int(config.optimizer.cpu_timerons_per_second)) in text  # 600
    assert str(int(config.optimizer.io_timerons_per_second)) in text  # 240
    assert "{:.1e}".format(abs(config.planner.oltp_slope_prior)) in text.replace(
        "-", ""
    ) or "4.2e-6" in text
    assert str(int(config.overload.knee_cost // 1000)) in text  # 26


def test_design_md_confirms_paper_match():
    """DESIGN.md must state the paper-text check outcome (system prompt
    requirement: note a mismatch at the top, otherwise confirm)."""
    text = read("DESIGN.md")
    assert "Paper-text check" in text
    assert "matches the target paper" in text


def test_paper_goals_quoted_consistently():
    """The Section 4 goals appear identically in code and docs."""
    from repro.config import PAPER_CLASSES

    readme = read("README.md")
    assert PAPER_CLASSES[0][2] == 0.40
    assert PAPER_CLASSES[1][2] == 0.60
    assert PAPER_CLASSES[2][2] == 0.25
    assert "0.25" in read("EXPERIMENTS.md")
    assert "0.40 / 0.60" in read("EXPERIMENTS.md")
