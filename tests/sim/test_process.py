"""Tests for the coroutine-style process helper."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.process import Delay, Process, WaitFor
from repro.sim.resources import ProcessorSharingResource, PSJob


def test_delays_advance_simulated_time():
    sim = Simulator()
    trace = []

    def body():
        trace.append(sim.now)
        yield Delay(2.0)
        trace.append(sim.now)
        yield 3.0  # float shorthand
        trace.append(sim.now)

    process = Process(sim, body()).start()
    sim.run()
    assert trace == [0.0, 2.0, 5.0]
    assert process.done


def test_return_value_captured():
    sim = Simulator()

    def body():
        yield 1.0
        return "finished"

    process = Process(sim, body()).start()
    sim.run()
    assert process.result == "finished"


def test_wait_for_adapts_resource_completion():
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "p", 1)
    spans = []

    def body():
        start = sim.now
        yield WaitFor(
            lambda done: pool.submit(PSJob("work", 4.0, on_complete=done))
        )
        spans.append(sim.now - start)

    Process(sim, body()).start()
    sim.run()
    assert spans == [pytest.approx(4.0)]


def test_wait_for_passes_value_through():
    sim = Simulator()
    received = []

    def body():
        value = yield WaitFor(lambda done: sim.schedule(1.0, lambda: done(42)))
        received.append(value)

    Process(sim, body()).start()
    sim.run()
    assert received == [42]


def test_two_processes_interleave():
    sim = Simulator()
    order = []

    def worker(tag, delay):
        for _ in range(3):
            yield delay
            order.append((tag, sim.now))

    Process(sim, worker("a", 1.0)).start()
    Process(sim, worker("b", 1.5)).start()
    sim.run()
    # At t=3.0 both fire; b scheduled its wake-up first (at t=1.5) so it
    # wins the deterministic (time, seq) tie-break.
    assert order == [
        ("a", 1.0), ("b", 1.5), ("a", 2.0), ("b", 3.0), ("a", 3.0), ("b", 4.5),
    ]


def test_double_start_rejected():
    sim = Simulator()

    def body():
        yield 1.0

    process = Process(sim, body()).start()
    with pytest.raises(SimulationError):
        process.start()


def test_negative_delay_rejected():
    sim = Simulator()

    def body():
        yield -1.0

    Process(sim, body()).start()
    with pytest.raises(SimulationError):
        sim.run()


def test_unsupported_yield_rejected():
    sim = Simulator()

    def body():
        yield "what"

    Process(sim, body()).start()
    with pytest.raises(SimulationError):
        sim.run()


def test_double_resume_rejected():
    sim = Simulator()
    resumes = []

    def body():
        yield WaitFor(lambda done: resumes.append(done))

    Process(sim, body()).start()
    sim.run()
    resumes[0]("first")
    with pytest.raises(SimulationError):
        resumes[0]("second")
