"""Tests for the named random stream factory."""

import numpy as np

from repro.sim.rng import RandomStreams


def test_same_seed_same_stream_same_draws():
    a = RandomStreams(seed=42)
    b = RandomStreams(seed=42)
    assert a.stream("x").random(5).tolist() == b.stream("x").random(5).tolist()


def test_streams_are_independent_of_request_order():
    a = RandomStreams(seed=42)
    b = RandomStreams(seed=42)
    # Request in different orders; draws per stream must match anyway.
    a_first = a.stream("alpha").random(3).tolist()
    a_second = a.stream("beta").random(3).tolist()
    b_second = b.stream("beta").random(3).tolist()
    b_first = b.stream("alpha").random(3).tolist()
    assert a_first == b_first
    assert a_second == b_second


def test_different_names_differ():
    streams = RandomStreams(seed=1)
    assert streams.stream("a").random(4).tolist() != streams.stream("b").random(4).tolist()


def test_different_seeds_differ():
    a = RandomStreams(seed=1)
    b = RandomStreams(seed=2)
    assert a.stream("x").random(4).tolist() != b.stream("x").random(4).tolist()


def test_stream_is_cached():
    streams = RandomStreams(seed=0)
    assert streams.stream("x") is streams.stream("x")


def test_exponential_mean():
    streams = RandomStreams(seed=7)
    draws = [streams.exponential("e", 2.0) for _ in range(4000)]
    assert abs(np.mean(draws) - 2.0) < 0.15
    assert all(d >= 0 for d in draws)


def test_lognormal_factor_median_near_one():
    streams = RandomStreams(seed=7)
    draws = [streams.lognormal_factor("ln", 0.5) for _ in range(4000)]
    assert abs(np.median(draws) - 1.0) < 0.06
    assert all(d > 0 for d in draws)


def test_lognormal_factor_zero_sigma_is_exact_one():
    streams = RandomStreams(seed=7)
    assert streams.lognormal_factor("ln", 0.0) == 1.0
    assert streams.lognormal_factor("ln", -1.0) == 1.0


def test_uniform_bounds():
    streams = RandomStreams(seed=3)
    draws = [streams.uniform("u", 2.0, 5.0) for _ in range(500)]
    assert all(2.0 <= d < 5.0 for d in draws)


def test_choice_index_respects_weights():
    streams = RandomStreams(seed=11)
    counts = [0, 0]
    for _ in range(2000):
        counts[streams.choice_index("c", [3.0, 1.0])] += 1
    ratio = counts[0] / counts[1]
    assert 2.2 < ratio < 4.0


def test_choice_index_zero_weights_rejected():
    streams = RandomStreams(seed=11)
    try:
        streams.choice_index("c", [0.0, 0.0])
    except ValueError:
        return
    raise AssertionError("expected ValueError")
