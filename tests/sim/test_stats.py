"""Tests for the online statistics helpers."""

import math

import numpy as np
import pytest

from repro.sim.stats import (
    Histogram,
    SlidingWindow,
    TimeWeightedValue,
    WelfordAccumulator,
)


class TestWelford:
    def test_empty(self):
        acc = WelfordAccumulator()
        assert acc.count == 0
        assert acc.mean == 0.0
        assert acc.variance == 0.0

    def test_matches_numpy(self):
        values = [3.1, -2.0, 7.5, 0.0, 4.4, 4.4, 9.9]
        acc = WelfordAccumulator()
        for v in values:
            acc.add(v)
        assert acc.mean == pytest.approx(np.mean(values))
        assert acc.variance == pytest.approx(np.var(values, ddof=1))
        assert acc.stddev == pytest.approx(np.std(values, ddof=1))
        assert acc.minimum == min(values)
        assert acc.maximum == max(values)
        assert acc.total == pytest.approx(sum(values))

    def test_single_value_variance_zero(self):
        acc = WelfordAccumulator()
        acc.add(5.0)
        assert acc.variance == 0.0

    def test_merge_equals_combined(self):
        left = [1.0, 2.0, 3.0]
        right = [10.0, 20.0]
        a = WelfordAccumulator()
        b = WelfordAccumulator()
        for v in left:
            a.add(v)
        for v in right:
            b.add(v)
        a.merge(b)
        combined = left + right
        assert a.count == 5
        assert a.mean == pytest.approx(np.mean(combined))
        assert a.variance == pytest.approx(np.var(combined, ddof=1))

    def test_merge_with_empty(self):
        a = WelfordAccumulator()
        a.add(1.0)
        a.merge(WelfordAccumulator())
        assert a.count == 1
        b = WelfordAccumulator()
        b.merge(a)
        assert b.count == 1
        assert b.mean == 1.0


class TestSlidingWindow:
    def test_capacity_eviction(self):
        window = SlidingWindow(capacity=3)
        for i in range(5):
            window.add(float(i), float(i))
        assert len(window) == 3
        assert window.values() == [2.0, 3.0, 4.0]
        assert window.mean == pytest.approx(3.0)

    def test_time_eviction(self):
        window = SlidingWindow(capacity=10)
        for t in range(5):
            window.add(float(t), float(t))
        window.evict_older_than(2.0)
        assert window.values() == [2.0, 3.0, 4.0]

    def test_empty_mean_zero(self):
        assert SlidingWindow(3).mean == 0.0

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            SlidingWindow(0)


class TestTimeWeightedValue:
    def test_piecewise_constant_average(self):
        signal = TimeWeightedValue(initial=0.0, start_time=0.0)
        signal.update(2.0, 10.0)  # 0 for [0,2), 10 afterwards
        assert signal.average(4.0) == pytest.approx((0 * 2 + 10 * 2) / 4)

    def test_current(self):
        signal = TimeWeightedValue()
        signal.update(1.0, 7.0)
        assert signal.current == 7.0

    def test_monotone_time_enforced(self):
        signal = TimeWeightedValue()
        signal.update(5.0, 1.0)
        with pytest.raises(ValueError):
            signal.update(4.0, 2.0)

    def test_reset(self):
        signal = TimeWeightedValue()
        signal.update(2.0, 4.0)
        signal.reset(2.0)
        assert signal.average(4.0) == pytest.approx(4.0)

    def test_reset_then_average_on_empty_span_returns_current_value(self):
        # Documented contract: an empty span degenerates to the current
        # value (the limit of the average as the span shrinks), not 0.0.
        signal = TimeWeightedValue()
        signal.update(2.0, 4.0)
        signal.reset(5.0)
        assert signal.average(5.0) == 4.0
        assert signal.current == 4.0

    def test_empty_span_before_any_update_returns_initial(self):
        signal = TimeWeightedValue(initial=3.0, start_time=1.0)
        assert signal.average(1.0) == 3.0


class TestHistogram:
    def test_counts_and_percentiles(self):
        hist = Histogram(0.0, 10.0, bins=10)
        for v in np.linspace(0.05, 9.95, 200):
            hist.add(float(v))
        assert hist.count == 200
        assert hist.underflow == 0 and hist.overflow == 0
        assert hist.percentile(50) == pytest.approx(5.0, abs=0.5)
        assert hist.percentile(90) == pytest.approx(9.0, abs=0.6)

    def test_overflow_underflow(self):
        hist = Histogram(0.0, 1.0, bins=4)
        hist.add(-5.0)
        hist.add(2.0)
        hist.add(0.5)
        assert hist.underflow == 1
        assert hist.overflow == 1
        assert sum(hist.counts()) == 1

    def test_empty_percentile_zero(self):
        assert Histogram(0.0, 1.0).percentile(50) == 0.0

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            Histogram(1.0, 1.0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0, bins=0)
        with pytest.raises(ValueError):
            Histogram(0.0, 1.0).percentile(101)

    def test_upper_edge_value_lands_in_overflow(self):
        hist = Histogram(0.0, 1.0, bins=4)
        hist.add(1.0)
        assert hist.overflow == 1

    def test_percentile_zero_returns_true_minimum(self):
        # Regression: percentile(0) used to return `low` even when every
        # observation sat well above it (target == 0 tripped the
        # underflow check).
        hist = Histogram(0.0, 10.0, bins=10)
        hist.add(3.7)
        hist.add(8.0)
        assert hist.percentile(0) == 3.7

    def test_percentile_hundred_returns_true_maximum_with_overflow(self):
        # Regression: percentile(100) used to clamp to `high` whenever any
        # mass sat in the overflow bin.
        hist = Histogram(0.0, 10.0, bins=10)
        hist.add(1.0)
        hist.add(25.0)
        assert hist.percentile(100) == 25.0
        assert hist.percentile(0) == 1.0

    def test_extremes_with_underflow_mass(self):
        hist = Histogram(10.0, 20.0, bins=5)
        hist.add(2.0)  # underflow
        hist.add(15.0)
        assert hist.percentile(0) == 2.0
        assert hist.percentile(100) == 15.0

    def test_interior_percentiles_interpolate_open_ended_bins(self):
        hist = Histogram(10.0, 20.0, bins=5)
        for value in (2.0, 4.0, 6.0, 8.0):  # all underflow
            hist.add(value)
        # Interior percentiles stay within the observed range instead of
        # being clamped to the `low` edge above every observation.
        assert 2.0 <= hist.percentile(50) <= 10.0
        hist = Histogram(0.0, 1.0, bins=4)
        for value in (5.0, 6.0, 7.0, 8.0):  # all overflow
            hist.add(value)
        assert 1.0 <= hist.percentile(50) <= 8.0

    def test_percentile_extremes_without_over_or_underflow_are_exact(self):
        hist = Histogram(0.0, 10.0, bins=10)
        for value in (1.25, 4.5, 9.75):
            hist.add(value)
        assert hist.percentile(0) == 1.25
        assert hist.percentile(100) == 9.75


def test_welford_is_finite_under_many_identical_values():
    acc = WelfordAccumulator()
    for _ in range(10000):
        acc.add(1e9)
    assert acc.mean == pytest.approx(1e9)
    assert math.isfinite(acc.variance)
    assert acc.variance == pytest.approx(0.0, abs=1e-3)


class TestHistogramMerge:
    def test_merge_equals_combined_stream(self):
        left = Histogram(0.0, 10.0, bins=20)
        right = Histogram(0.0, 10.0, bins=20)
        combined = Histogram(0.0, 10.0, bins=20)
        for value in (0.5, 1.5, 2.5, 11.0, -1.0):
            left.add(value)
            combined.add(value)
        for value in (3.5, 9.9, 12.0):
            right.add(value)
            combined.add(value)
        left.merge(right)
        assert left.count == combined.count
        assert left.counts() == combined.counts()
        assert left.underflow == combined.underflow
        assert left.overflow == combined.overflow
        assert left.min_value == combined.min_value
        assert left.max_value == combined.max_value
        for q in (0, 25, 50, 75, 95, 100):
            assert left.percentile(q) == combined.percentile(q)

    def test_merge_with_empty_is_identity(self):
        hist = Histogram(0.0, 10.0, bins=4)
        hist.add(2.0)
        before = hist.to_dict()
        hist.merge(Histogram(0.0, 10.0, bins=4))
        assert hist.to_dict() == before

    def test_merge_incompatible_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram(0.0, 10.0, bins=4).merge(Histogram(0.0, 20.0, bins=4))
        with pytest.raises(ValueError):
            Histogram(0.0, 10.0, bins=4).merge(Histogram(0.0, 10.0, bins=8))

    def test_dict_round_trip(self):
        hist = Histogram(0.0, 5.0, bins=10)
        for value in (-1.0, 0.1, 2.2, 4.9, 7.0):
            hist.add(value)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()
        assert clone.percentile(50) == hist.percentile(50)
        assert clone.min_value == hist.min_value
        assert clone.max_value == hist.max_value

    def test_empty_dict_round_trip(self):
        hist = Histogram(0.0, 5.0, bins=3)
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.count == 0
        assert clone.percentile(95) == 0.0
