"""Tests for the virtual-time processor-sharing resource."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.resources import ProcessorSharingResource, PSJob


def make_pool(sim, servers=2, speed=1.0):
    return ProcessorSharingResource(sim, "pool", servers, speed)


def run_job(sim, pool, demand):
    done = []
    pool.submit(PSJob("j", demand, on_complete=lambda j: done.append(sim.now)))
    sim.run()
    return done[0]


def test_single_job_takes_its_demand(sim):
    pool = make_pool(sim, servers=2)
    assert run_job(sim, pool, 5.0) == pytest.approx(5.0)


def test_job_under_capacity_runs_at_full_speed(sim):
    pool = make_pool(sim, servers=4)
    finish = []
    for i in range(4):
        pool.submit(PSJob("j{}".format(i), 3.0, on_complete=lambda j: finish.append(sim.now)))
    sim.run()
    assert finish == pytest.approx([3.0] * 4)


def test_jobs_over_capacity_share_equally(sim):
    # 4 equal jobs on 2 servers: each runs at rate 1/2, so 3s of demand
    # takes 6s of wall clock.
    pool = make_pool(sim, servers=2)
    finish = []
    for i in range(4):
        pool.submit(PSJob("j{}".format(i), 3.0, on_complete=lambda j: finish.append(sim.now)))
    sim.run()
    assert finish == pytest.approx([6.0] * 4)


def test_late_arrival_slows_existing_job(sim):
    # Job A (demand 4) alone on 1 server; at t=2, job B (demand 1) arrives.
    # A has 2 demand left, shared rate 1/2: A finishes at 2 + 2/(1/2)=6 if B
    # ran that long, but B finishes first at t=4 (1 demand at rate 1/2);
    # then A has 1 left at full rate -> t=5.
    pool = make_pool(sim, servers=1)
    finish = {}
    pool.submit(PSJob("a", 4.0, on_complete=lambda j: finish.setdefault("a", sim.now)))
    sim.schedule(
        2.0,
        lambda: pool.submit(
            PSJob("b", 1.0, on_complete=lambda j: finish.setdefault("b", sim.now))
        ),
    )
    sim.run()
    assert finish["b"] == pytest.approx(4.0)
    assert finish["a"] == pytest.approx(5.0)


def test_speed_scales_service(sim):
    pool = make_pool(sim, servers=1, speed=2.0)
    assert run_job(sim, pool, 4.0) == pytest.approx(2.0)


def test_efficiency_slows_everything(sim):
    pool = make_pool(sim, servers=1)
    pool.set_efficiency(0.5)
    assert run_job(sim, pool, 2.0) == pytest.approx(4.0)


def test_efficiency_change_mid_service(sim):
    pool = make_pool(sim, servers=1)
    done = []
    pool.submit(PSJob("j", 4.0, on_complete=lambda j: done.append(sim.now)))
    # Halve speed after 2s: 2 demand done, remaining 2 at rate 0.5 -> 4s more.
    sim.schedule(2.0, lambda: pool.set_efficiency(0.5))
    sim.run()
    assert done[0] == pytest.approx(6.0)


def test_nonpositive_efficiency_rejected(sim):
    pool = make_pool(sim)
    with pytest.raises(SimulationError):
        pool.set_efficiency(0.0)


def test_zero_demand_job_completes_immediately(sim):
    pool = make_pool(sim)
    done = []
    pool.submit(PSJob("z", 0.0, on_complete=lambda j: done.append(sim.now)))
    sim.run()
    assert done == [0.0]


def test_negative_demand_rejected():
    with pytest.raises(SimulationError):
        PSJob("bad", -1.0)


def test_cancel_removes_job(sim):
    pool = make_pool(sim, servers=1)
    done = []
    victim = PSJob("victim", 10.0, on_complete=lambda j: done.append("victim"))
    pool.submit(victim)
    pool.submit(PSJob("keeper", 2.0, on_complete=lambda j: done.append(sim.now)))
    sim.schedule(1.0, lambda: pool.cancel(victim))
    sim.run()
    # keeper: 1s at rate 1/2 (0.5 done), then 1.5 left at full -> t=2.5
    assert done == [pytest.approx(2.5)]
    assert pool.active_jobs == 0


def test_cancel_completed_job_returns_false(sim):
    pool = make_pool(sim)
    job = PSJob("j", 1.0)
    pool.submit(job)
    sim.run()
    assert not pool.cancel(job)


def test_remaining_demand_decreases(sim):
    pool = make_pool(sim, servers=1)
    job = PSJob("j", 10.0)
    pool.submit(job)
    sim.schedule(4.0, lambda: None)
    sim.run_until(4.0)
    assert pool.remaining_demand(job) == pytest.approx(6.0)


def test_completion_callback_can_resubmit(sim):
    pool = make_pool(sim, servers=1)
    finishes = []

    def resubmit(job):
        finishes.append(sim.now)
        if len(finishes) < 3:
            pool.submit(PSJob("next", 1.0, on_complete=resubmit))

    pool.submit(PSJob("first", 1.0, on_complete=resubmit))
    sim.run()
    assert finishes == pytest.approx([1.0, 2.0, 3.0])


def test_work_conservation_counters(sim):
    pool = make_pool(sim, servers=2)
    for i in range(5):
        pool.submit(PSJob("j{}".format(i), 2.0))
    sim.run()
    assert pool.completed_jobs == 5
    assert pool.completed_demand == pytest.approx(10.0)


def test_utilization_of_saturated_pool(sim):
    pool = make_pool(sim, servers=1)
    pool.submit(PSJob("j", 5.0))
    sim.run()
    assert pool.utilization() == pytest.approx(1.0)


def test_mean_jobs_in_service(sim):
    pool = make_pool(sim, servers=2)
    pool.submit(PSJob("a", 2.0))
    pool.submit(PSJob("b", 2.0))
    sim.run()
    # Two jobs for the whole (2s) horizon.
    assert pool.mean_jobs_in_service() == pytest.approx(2.0)


def test_invalid_construction():
    sim = Simulator()
    with pytest.raises(SimulationError):
        ProcessorSharingResource(sim, "bad", 0)
    with pytest.raises(SimulationError):
        ProcessorSharingResource(sim, "bad", 1, speed=0.0)


def test_many_jobs_finish_in_demand_order_when_equal_arrival(sim):
    pool = make_pool(sim, servers=1)
    finished = []
    for name, demand in (("small", 1.0), ("large", 5.0), ("medium", 2.0)):
        pool.submit(PSJob(name, demand, on_complete=lambda j: finished.append(j.name)))
    sim.run()
    assert finished == ["small", "medium", "large"]
