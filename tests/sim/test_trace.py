"""Tests for the bounded tracer."""

from repro.sim.trace import Tracer


def test_records_in_order():
    tracer = Tracer()
    tracer.record(1.0, "a", "one")
    tracer.record(2.0, "b", "two")
    records = list(tracer)
    assert [r.kind for r in records] == ["a", "b"]
    assert [r.time for r in records] == [1.0, 2.0]


def test_capacity_evicts_oldest():
    tracer = Tracer(capacity=3)
    for i in range(5):
        tracer.record(float(i), "k", str(i))
    assert len(tracer) == 3
    assert [r.detail for r in tracer] == ["2", "3", "4"]
    assert tracer.dropped == 2


def test_filter_by_kind():
    tracer = Tracer()
    tracer.record(0.0, "x")
    tracer.record(1.0, "y")
    tracer.record(2.0, "x")
    assert len(tracer.filter("x")) == 2
    assert len(tracer.filter("z")) == 0


def test_clear_keeps_dropped_count():
    tracer = Tracer(capacity=1)
    tracer.record(0.0, "a")
    tracer.record(1.0, "a")
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 1


def test_format_limits_output():
    tracer = Tracer()
    for i in range(100):
        tracer.record(float(i), "k", "detail-{}".format(i))
    text = tracer.format(limit=5)
    assert text.count("\n") == 4
    assert "detail-99" in text


def test_unbounded_capacity():
    tracer = Tracer(capacity=None)
    for i in range(1000):
        tracer.record(float(i), "k")
    assert len(tracer) == 1000
    assert tracer.dropped == 0
