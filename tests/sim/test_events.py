"""Tests for event records and handles."""

from repro.sim.events import Event, EventHandle


def make_event(time=1.0, priority=0, seq=0, label=""):
    return Event(time, priority, seq, lambda: None, label)


def test_sort_key_orders_by_time_then_priority_then_seq():
    assert make_event(time=1.0) < make_event(time=2.0)
    assert make_event(priority=-1, seq=5) < make_event(priority=0, seq=1)
    assert make_event(seq=1) < make_event(seq=2)


def test_handle_exposes_metadata():
    handle = EventHandle(make_event(time=3.5, label="tick"))
    assert handle.time == 3.5
    assert handle.label == "tick"
    assert handle.active


def test_handle_cancel_semantics():
    handle = EventHandle(make_event())
    assert handle.cancel() is True
    assert handle.active is False
    assert handle.cancel() is False
