"""Tests for the discrete-event simulator kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Simulator


def test_clock_starts_at_zero(sim):
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.fired_events == 0


def test_schedule_and_run_single_event(sim):
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run_until(10.0)
    assert fired == [5.0]
    assert sim.now == 10.0


def test_events_fire_in_time_order(sim):
    order = []
    sim.schedule(3.0, lambda: order.append("c"))
    sim.schedule(1.0, lambda: order.append("a"))
    sim.schedule(2.0, lambda: order.append("b"))
    sim.run()
    assert order == ["a", "b", "c"]


def test_simultaneous_events_fire_in_scheduling_order(sim):
    order = []
    for tag in ("first", "second", "third"):
        sim.schedule(1.0, lambda t=tag: order.append(t))
    sim.run()
    assert order == ["first", "second", "third"]


def test_priority_breaks_simultaneous_ties(sim):
    order = []
    sim.schedule(1.0, lambda: order.append("normal"), priority=0)
    sim.schedule(1.0, lambda: order.append("early"), priority=-1)
    sim.run()
    assert order == ["early", "normal"]


def test_zero_delay_event_fires_after_current_instant_work(sim):
    order = []

    def outer():
        order.append("outer")
        sim.schedule(0.0, lambda: order.append("inner"))

    sim.schedule(1.0, outer)
    sim.run()
    assert order == ["outer", "inner"]
    assert sim.now == 1.0


def test_negative_delay_rejected(sim):
    with pytest.raises(SimulationError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_in_the_past_rejected(sim):
    sim.schedule(2.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(1.0, lambda: None)


def test_run_until_stops_at_horizon_and_clock_lands_on_it(sim):
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(5.0, lambda: fired.append(5))
    sim.run_until(3.0)
    assert fired == [1]
    assert sim.now == 3.0
    sim.run_until(6.0)
    assert fired == [1, 5]


def test_run_until_executes_events_exactly_at_horizon(sim):
    fired = []
    sim.schedule(3.0, lambda: fired.append(3))
    sim.run_until(3.0)
    assert fired == [3]


def test_run_until_in_the_past_rejected(sim):
    sim.run_until(5.0)
    with pytest.raises(SimulationError):
        sim.run_until(4.0)


def test_cancel_prevents_firing(sim):
    fired = []
    handle = sim.schedule(1.0, lambda: fired.append(1))
    assert handle.active
    assert handle.cancel()
    assert not handle.active
    sim.run()
    assert fired == []


def test_cancel_twice_returns_false(sim):
    handle = sim.schedule(1.0, lambda: None)
    assert handle.cancel()
    assert not handle.cancel()


def test_cancel_after_firing_is_noop(sim):
    handle = sim.schedule(1.0, lambda: None)
    sim.run()
    assert not handle.cancel()


def test_events_scheduled_from_callbacks(sim):
    times = []

    def chain(depth):
        times.append(sim.now)
        if depth > 0:
            sim.schedule(1.0, lambda: chain(depth - 1))

    sim.schedule(1.0, lambda: chain(3))
    sim.run()
    assert times == [1.0, 2.0, 3.0, 4.0]


def test_run_max_events(sim):
    for _ in range(10):
        sim.schedule(1.0, lambda: None)
    fired = sim.run(max_events=4)
    assert fired == 4
    assert sim.fired_events == 4


def test_reentrant_run_rejected(sim):
    errors = []

    def inner():
        try:
            sim.run_until(10.0)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, inner)
    sim.run_until(5.0)
    assert len(errors) == 1


def test_fired_event_count(sim):
    for delay in (1.0, 2.0, 3.0):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert sim.fired_events == 3


def test_tracer_records_fired_events():
    from repro.sim.trace import Tracer

    tracer = Tracer()
    sim = Simulator(tracer=tracer)
    sim.schedule(1.0, lambda: None, label="my-event")
    sim.run()
    events = tracer.filter("event")
    assert len(events) == 1
    assert events[0].detail == "my-event"
    assert events[0].time == 1.0
