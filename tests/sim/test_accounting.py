"""Regression tests for PS-pool accounting and heap-compaction behaviour.

These pin the fixes that rode along with the hot-path optimization work:
the utilization horizon window, elapsed-since-construction averaging,
the demand-proportional completion tolerance at large virtual times, and
the simulator's tombstone compaction.
"""

import pytest

from repro.errors import SimulationError
from repro.sim.engine import _COMPACT_MIN_TOMBSTONES, Simulator
from repro.sim.resources import ProcessorSharingResource, PSJob


# ----------------------------------------------------------------------
# Utilization / mean-jobs accounting
# ----------------------------------------------------------------------
def test_utilization_horizon_extends_window():
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "pool", servers=1)
    pool.submit(PSJob("j", 2.0))
    sim.run()
    assert pool.utilization() == pytest.approx(1.0)
    # A horizon past "now" dilutes the average with the idle tail.
    assert pool.utilization(horizon=4.0) == pytest.approx(0.5)


def test_utilization_rejects_stale_horizon():
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "pool", servers=1)
    pool.submit(PSJob("j", 2.0))
    sim.run()
    # Busy time is already integrated over 2 seconds; a 1-second window
    # would report utilization above 1.0.
    with pytest.raises(SimulationError, match="stale horizon"):
        pool.utilization(horizon=1.0)


def test_accounting_measures_from_construction_not_time_zero():
    # A pool built at t=10 that is then busy for 2 seconds is 100% busy,
    # not 2/12 busy: both averages must use elapsed-since-construction.
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert sim.now == 10.0
    pool = ProcessorSharingResource(sim, "late", servers=1)
    pool.submit(PSJob("j", 2.0))
    sim.run()
    assert sim.now == pytest.approx(12.0)
    assert pool.utilization() == pytest.approx(1.0)
    assert pool.mean_jobs_in_service() == pytest.approx(1.0)


def test_idle_pool_reports_zero_averages():
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "idle", servers=2)
    assert pool.utilization() == 0.0
    assert pool.mean_jobs_in_service() == 0.0


# ----------------------------------------------------------------------
# Long-horizon completion tolerance
# ----------------------------------------------------------------------
def test_completion_tolerance_does_not_drift_at_large_vtime():
    # The completion slack is proportional to the job's own demand plus a
    # few ulps of the virtual clock.  An absolute vtime-proportional
    # tolerance would, at vtime ~1e9, carry ~1 second of slack and
    # complete a demand-1.0 job the instant it was submitted.
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "pool", servers=1)
    pool.submit(PSJob("big", 1e9))
    sim.run()
    assert sim.now == pytest.approx(1e9)
    finish = []
    pool.submit(PSJob("small", 1.0, on_complete=lambda j: finish.append(sim.now)))
    assert finish == []  # must not complete on submission
    sim.run()
    assert len(finish) == 1
    elapsed = finish[0] - 1e9
    assert elapsed == pytest.approx(1.0, rel=1e-6)
    assert elapsed > 0.9


def test_long_run_preserves_short_job_ordering():
    # Two unequal jobs submitted at vtime ~1e9 must still complete in
    # demand order with correct spacing.
    sim = Simulator()
    pool = ProcessorSharingResource(sim, "pool", servers=2)
    pool.submit(PSJob("warmup", 1e9))
    sim.run()
    order = []
    pool.submit(PSJob("a", 2.0, on_complete=lambda j: order.append((j.name, sim.now))))
    pool.submit(PSJob("b", 5.0, on_complete=lambda j: order.append((j.name, sim.now))))
    sim.run()
    assert [name for name, _ in order] == ["a", "b"]
    assert order[0][1] - 1e9 == pytest.approx(2.0, rel=1e-6)
    assert order[1][1] - 1e9 == pytest.approx(5.0, rel=1e-6)


# ----------------------------------------------------------------------
# Tombstone compaction
# ----------------------------------------------------------------------
def test_cancel_storm_triggers_compaction():
    sim = Simulator()
    fired = []
    keep = sim.schedule(50.0, lambda: fired.append("keep"))
    handles = [
        sim.schedule(1.0 + index * 0.001, lambda: fired.append("dead"))
        for index in range(2 * _COMPACT_MIN_TOMBSTONES)
    ]
    for handle in handles:
        handle.cancel()
    # Tombstones outnumbered live events, so the heap was rebuilt.
    assert sim.compactions >= 1
    assert sim.cancelled_pending < _COMPACT_MIN_TOMBSTONES
    assert sim.pending_events < len(handles)
    sim.run()
    assert fired == ["keep"]
    assert keep.cancelled  # consumed


def test_small_cancel_count_defers_compaction():
    sim = Simulator()
    for _ in range(10):
        sim.schedule(1.0, lambda: None).cancel()
    assert sim.compactions == 0
    assert sim.cancelled_pending == 10
    sim.run()
    assert sim.cancelled_pending == 0


def test_compaction_preserves_fire_order():
    sim = Simulator()
    fired = []
    for index in range(100):
        sim.schedule(float(100 - index), lambda i=index: fired.append(i))
    doomed = [
        sim.schedule(0.5, lambda: fired.append("dead"))
        for _ in range(2 * _COMPACT_MIN_TOMBSTONES)
    ]
    for handle in doomed:
        handle.cancel()
    assert sim.compactions >= 1
    sim.run()
    assert fired == list(reversed(range(100)))
