"""Unit tests for the invariant primitives (Invariant, Registry, Violation)."""

import pytest

from repro.errors import SchedulingError
from repro.validation import Invariant, InvariantRegistry, Severity, Violation


def always_true(world):
    return True


class TestSeverity:
    def test_ordering(self):
        assert Severity.WARNING < Severity.ERROR < Severity.CRITICAL

    def test_strict_threshold_is_error(self):
        assert Severity.ERROR >= Severity.ERROR
        assert not Severity.WARNING >= Severity.ERROR


class TestInvariant:
    def test_defaults_to_error_severity(self):
        invariant = Invariant(name="x", check=always_true, message="m")
        assert invariant.severity == Severity.ERROR

    def test_empty_name_rejected(self):
        with pytest.raises(SchedulingError):
            Invariant(name="", check=always_true, message="m")

    def test_non_callable_check_rejected(self):
        with pytest.raises(SchedulingError):
            Invariant(name="x", check="not-callable", message="m")


class TestRegistry:
    def test_register_and_lookup(self):
        registry = InvariantRegistry()
        invariant = registry.register(
            Invariant(name="a", check=always_true, message="m")
        )
        assert registry.get("a") is invariant
        assert registry.names == ["a"]
        assert len(registry) == 1
        assert list(registry) == [invariant]

    def test_duplicate_name_rejected(self):
        registry = InvariantRegistry(
            [Invariant(name="a", check=always_true, message="m")]
        )
        with pytest.raises(SchedulingError):
            registry.register(Invariant(name="a", check=always_true, message="m"))

    def test_unknown_name_rejected(self):
        with pytest.raises(SchedulingError):
            InvariantRegistry().get("ghost")

    def test_evaluate_clean(self):
        registry = InvariantRegistry(
            [Invariant(name="a", check=always_true, message="m")]
        )
        assert registry.evaluate(world=None, now=1.0) == []

    def test_evaluate_false_uses_static_message(self):
        registry = InvariantRegistry(
            [Invariant(name="a", check=lambda w: False, message="broken")]
        )
        violations = registry.evaluate(world=None, now=2.0)
        assert len(violations) == 1
        violation = violations[0]
        assert violation.name == "a"
        assert violation.message == "broken"
        assert violation.detail is None
        assert violation.time == 2.0

    def test_evaluate_string_becomes_detail(self):
        registry = InvariantRegistry(
            [Invariant(name="a", check=lambda w: "class1 off by 3", message="m")]
        )
        violations = registry.evaluate(world=None)
        assert violations[0].detail == "class1 off by 3"

    def test_check_exception_is_a_violation(self):
        def broken(world):
            raise ZeroDivisionError("boom")

        registry = InvariantRegistry(
            [
                Invariant(name="a", check=broken, message="m"),
                Invariant(name="b", check=lambda w: False, message="m2"),
            ]
        )
        violations = registry.evaluate(world=None, now=3.0)
        # The raising check does not abort the sweep.
        assert [v.name for v in violations] == ["a", "b"]
        assert "ZeroDivisionError" in violations[0].detail


class TestViolation:
    def test_to_dict_is_json_ready(self):
        violation = Violation(
            name="a", message="m", severity=Severity.CRITICAL, time=7.0, detail="d"
        )
        payload = violation.to_dict()
        assert payload == {
            "name": "a",
            "message": "m",
            "severity": "critical",
            "time": 7.0,
            "detail": "d",
        }

    def test_describe_mentions_everything(self):
        violation = Violation(
            name="a", message="m", severity=Severity.WARNING, time=7.0, detail="d"
        )
        text = violation.describe()
        for expected in ("WARNING", "a", "t=7.0", "m", "(d)"):
            assert expected in text
