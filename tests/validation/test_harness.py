"""Tests for the validation harness wiring and modes."""

import json

import pytest

from repro.errors import InvariantViolation, SchedulingError
from repro.experiments.runner import run_experiment
from repro.faults import FaultInjector
from repro.validation import (
    ControlLoopWorld,
    ValidationHarness,
    attach_harness,
    core_invariants,
)

from tests.validation.conftest import make_qs_bundle, small_config


class TestCleanRuns:
    def test_strict_clean_run_has_zero_violations(self):
        result = run_experiment(
            controller="qs", config=small_config(), invariants="strict"
        )
        harness = result.extras["validation"]
        assert harness.mode == "strict"
        assert harness.violations == []
        assert harness.checks_run > 0
        assert result.extras["telemetry"].violations() == []

    def test_off_mode_attaches_nothing(self):
        result = run_experiment(
            controller="qs", config=small_config(), invariants="off"
        )
        assert "validation" not in result.extras

    def test_unknown_mode_rejected(self, qs_bundle):
        with pytest.raises(SchedulingError):
            attach_harness(qs_bundle, mode="paranoid")


class TestWorldConstruction:
    def test_from_bundle_sees_scheduler_components(self, qs_bundle):
        world = ControlLoopWorld.from_bundle(qs_bundle)
        scheduler = qs_bundle.controller
        assert world.dispatcher is scheduler.dispatcher
        assert world.monitor is scheduler.monitor
        assert world.planner is scheduler.planner
        assert world.oltp_model is scheduler.planner.oltp_model
        assert [c.name for c in world.controlled_classes()] == ["class1", "class2"]

    def test_from_scheduler_equivalent(self, qs_bundle):
        world = ControlLoopWorld.from_scheduler(qs_bundle.controller)
        assert world.dispatcher is qs_bundle.controller.dispatcher
        assert world.sim is qs_bundle.sim

    def test_core_suite_covers_the_named_invariants(self, qs_bundle):
        registry = core_invariants(ControlLoopWorld.from_bundle(qs_bundle))
        assert set(registry.names) == {
            "dispatcher_in_flight_consistent",
            "dispatcher_engine_agreement",
            "plan_limits_nonnegative",
            "plan_spends_system_limit",
            "class_conservation",
            "monitor_open_is_live",
            "velocity_in_unit_interval",
            "oltp_slope_in_clamp_band",
        }

    def test_baseline_controller_gets_reduced_suite(self):
        from repro.experiments.runner import build_bundle, make_controller
        from repro.workloads.schedule import constant_schedule

        config = small_config()
        bundle = build_bundle(
            config=config,
            schedule=constant_schedule(30.0, 1, {"class1": 1, "class3": 1}),
        )
        make_controller(bundle, "none")
        registry = core_invariants(ControlLoopWorld.from_bundle(bundle))
        assert registry.names == []  # no dispatcher, monitor or planner


class TestModes:
    def test_strict_mode_raises_mid_run(self, qs_bundle):
        harness = attach_harness(qs_bundle, mode="strict")
        injector = FaultInjector(qs_bundle)
        qs_bundle.controller.start()
        qs_bundle.manager.start()
        qs_bundle.sim.schedule(
            5.0, lambda: injector.leak_dispatcher_slot("class1")
        )
        with pytest.raises(InvariantViolation):
            qs_bundle.run()
        assert harness.violations  # recorded before raising

    def test_warn_mode_records_without_raising(self, qs_bundle):
        harness = attach_harness(qs_bundle, mode="warn")
        injector = FaultInjector(qs_bundle)
        qs_bundle.controller.start()
        qs_bundle.manager.start()
        qs_bundle.sim.schedule(
            5.0, lambda: injector.leak_dispatcher_slot("class1")
        )
        qs_bundle.run()  # must not raise
        names = {v.name for v in harness.violations}
        assert "dispatcher_in_flight_consistent" in names

    def test_off_mode_check_is_noop(self, qs_bundle):
        world = ControlLoopWorld.from_bundle(qs_bundle)
        harness = ValidationHarness(world, mode="off")
        FaultInjector(qs_bundle).leak_dispatcher_slot("class1")
        assert harness.check() == []
        assert harness.checks_run == 0


class TestTelemetryEmbedding:
    def test_violations_land_in_the_interval_record(self, qs_bundle):
        harness = attach_harness(qs_bundle, mode="warn")
        injector = FaultInjector(qs_bundle)
        qs_bundle.controller.start()
        qs_bundle.manager.start()
        # A leaked slot persists across re-plans (unlike a corrupted plan,
        # which the next interval's fresh plan would replace), so every
        # subsequent boundary check sees it.
        qs_bundle.sim.schedule(
            5.0, lambda: injector.leak_dispatcher_slot("class1")
        )
        qs_bundle.run()
        store = qs_bundle.controller.telemetry.store
        embedded = store.violations()
        assert embedded
        assert any(
            v["name"] == "dispatcher_in_flight_consistent" for v in embedded
        )
        # And they survive the JSONL export (what `repro trace` emits).
        rows = [json.loads(line) for line in store.to_jsonl().splitlines()]
        assert any(row["violations"] for row in rows)
        assert harness.violations

    def test_on_demand_check_does_not_pollute_interval_records(self, qs_bundle):
        harness = attach_harness(qs_bundle, mode="warn")
        injector = FaultInjector(qs_bundle)
        qs_bundle.controller.start()
        qs_bundle.manager.start()
        qs_bundle.run(horizon=12.0)  # past the first control interval
        injector.leak_dispatcher_slot("class1")
        qs_bundle.sim.run_until(13.0)
        found = harness.check()  # between interval boundaries
        assert found
        # The interval record at t=10 must not carry a violation observed
        # at t=13; it rides only in the harness log.
        store = qs_bundle.controller.telemetry.store
        assert store.violations() == []
