"""Shared fixtures for the validation-harness tests."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import build_bundle, make_controller
from repro.workloads.schedule import constant_schedule


def small_config(seed=7, period_seconds=30.0, num_periods=2, control_interval=10.0):
    """A config small enough for sub-second full runs."""
    return default_config(
        seed=seed,
        scale=WorkloadScaleConfig(
            period_seconds=period_seconds, num_periods=num_periods
        ),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=control_interval),
    )


def make_qs_bundle(seed=7, period_seconds=30.0, num_periods=2):
    """A small assembled bundle with a Query Scheduler attached (not started)."""
    config = small_config(
        seed=seed, period_seconds=period_seconds, num_periods=num_periods
    )
    schedule = constant_schedule(
        period_seconds, num_periods, {"class1": 2, "class2": 2, "class3": 3}
    )
    bundle = build_bundle(config=config, schedule=schedule)
    make_controller(bundle, "qs")
    return bundle


@pytest.fixture
def qs_bundle():
    return make_qs_bundle()
