"""Fault-injection tests: each core invariant fires under its seeded fault.

The harness is only trustworthy if every invariant demonstrably *can* fire;
each test seeds the one fault an invariant exists to catch and asserts the
violation is named, while behavioral storms on the fixed accounting paths
stay violation-free.
"""

import pytest

from repro.errors import SchedulingError
from repro.faults import FaultInjector
from repro.validation import ControlLoopWorld, ValidationHarness, attach_harness

from tests.validation.conftest import make_qs_bundle


def started_harness(bundle, mode="warn"):
    harness = attach_harness(bundle, mode=mode)
    bundle.controller.start()
    bundle.manager.start()
    return harness


def violation_names(harness):
    return {v.name for v in harness.violations}


class TestCorruptionsTripTheirInvariant:
    def test_leaked_slot_trips_in_flight_consistency(self, qs_bundle):
        harness = started_harness(qs_bundle)
        qs_bundle.run(horizon=5.0)
        FaultInjector(qs_bundle).leak_dispatcher_slot("class1", cost=750.0)
        found = harness.check()
        assert "dispatcher_in_flight_consistent" in {v.name for v in found}
        # The phantom slot also breaks released = in-flight + completed +
        # cancelled, so conservation fires alongside.
        assert "class_conservation" in {v.name for v in found}

    def test_negative_plan_limit_trips_nonnegativity(self, qs_bundle):
        harness = started_harness(qs_bundle)
        qs_bundle.run(horizon=5.0)
        FaultInjector(qs_bundle).corrupt_plan(mode="negative")
        assert "plan_limits_nonnegative" in {v.name for v in harness.check()}

    def test_undersumming_plan_trips_spend_check(self, qs_bundle):
        harness = started_harness(qs_bundle)
        qs_bundle.run(horizon=5.0)
        FaultInjector(qs_bundle).corrupt_plan(mode="undersum", amount=9_000.0)
        assert "plan_spends_system_limit" in {v.name for v in harness.check()}

    def test_stale_open_entry_trips_monitor_liveness(self, qs_bundle):
        harness = started_harness(qs_bundle)
        qs_bundle.run(horizon=5.0)
        FaultInjector(qs_bundle).corrupt_monitor_open("class1")
        assert "monitor_open_is_live" in {v.name for v in harness.check()}

    def test_out_of_range_velocity_trips_range_check(self, qs_bundle):
        harness = started_harness(qs_bundle)
        qs_bundle.run(horizon=5.0)
        FaultInjector(qs_bundle).corrupt_velocity_sample("class1", value=1.5)
        assert "velocity_in_unit_interval" in {v.name for v in harness.check()}

    def test_corrupt_regression_trips_slope_check_via_exception(self, qs_bundle):
        harness = started_harness(qs_bundle)
        qs_bundle.run(horizon=5.0)
        FaultInjector(qs_bundle).corrupt_oltp_regression()
        found = harness.check()
        slope = [v for v in found if v.name == "oltp_slope_in_clamp_band"]
        assert slope
        # The invariant fired through its exception path and survived.
        assert "ZeroDivisionError" in slope[0].detail

    def test_regression_corruption_goes_through_public_seam(
        self, qs_bundle, monkeypatch
    ):
        """The injector must use the model's ``corrupt()`` seam, never
        reach into private regression state — and the invariant must
        still trip through the seam."""
        harness = started_harness(qs_bundle)
        qs_bundle.run(horizon=5.0)
        model = qs_bundle.controller.planner.model
        calls = []
        original = model.corrupt
        monkeypatch.setattr(
            model,
            "corrupt",
            lambda mode="regression": (calls.append(mode), original(mode))[1],
        )
        FaultInjector(qs_bundle).corrupt_oltp_regression()
        assert calls == ["regression"]
        # Telemetry's describe() stays JSON-safe on the corrupted state...
        assert model.describe()["slope"] is None
        # ...while the invariant still fires.
        assert "oltp_slope_in_clamp_band" in {v.name for v in harness.check()}
        # And reset() restores a checkable slope.
        model.reset()
        assert "oltp_slope_in_clamp_band" not in {v.name for v in harness.check()}

    def test_dropped_dispatcher_completion_trips_engine_agreement(self, qs_bundle):
        harness = started_harness(qs_bundle)
        injector = FaultInjector(qs_bundle)
        injector.drop_completions(count=1, component="dispatcher", class_name="class1")
        qs_bundle.run()
        names = violation_names(harness)
        assert "dispatcher_engine_agreement" in names

    def test_dropped_monitor_completion_trips_open_liveness(self, qs_bundle):
        harness = started_harness(qs_bundle)
        injector = FaultInjector(qs_bundle)
        injector.drop_completions(count=1, component="monitor", class_name="class1")
        qs_bundle.run()
        assert "monitor_open_is_live" in violation_names(harness)


class TestBehavioralFaultsStayClean:
    """The fixed accounting paths must absorb hostile-but-legal workload
    events with every invariant intact (strict mode completes)."""

    def test_cancel_storm_is_absorbed(self, qs_bundle):
        harness = started_harness(qs_bundle, mode="strict")
        injector = FaultInjector(qs_bundle)
        injector.arrival_burst("class1", count=12, delay=4.0)
        injector.cancel_storm(delay=8.0)  # cancel every queued query
        injector.cancel_storm(class_name="class2", delay=25.0, fraction=0.5)
        qs_bundle.run()
        assert harness.violations == []
        assert any(f["fault"] == "cancel_storm" for f in injector.injected)
        # The storm actually cancelled something, and the dispatcher
        # accounted for it at queue level.
        cancelled = sum(
            f.get("cancelled", 0)
            for f in injector.injected
            if f["fault"] == "cancel_storm"
        )
        dispatcher = qs_bundle.controller.dispatcher
        queue_level = sum(
            dispatcher.queue_cancelled_count(c.name)
            for c in qs_bundle.classes
            if c.directly_controlled
        )
        assert cancelled > 0
        assert queue_level == cancelled

    def test_release_latency_jitter_is_absorbed(self, qs_bundle):
        harness = started_harness(qs_bundle, mode="strict")
        injector = FaultInjector(qs_bundle)
        injector.release_latency_jitter(2.0, delay=5.0)
        injector.arrival_burst("class2", count=8, delay=6.0)
        injector.release_latency_jitter(0.05, delay=30.0)
        qs_bundle.run()
        assert harness.violations == []

    def test_injection_log_records_every_fault(self, qs_bundle):
        started_harness(qs_bundle)
        injector = FaultInjector(qs_bundle)
        injector.arrival_burst("class1", count=3, delay=2.0)
        injector.cancel_storm(delay=3.0)
        qs_bundle.run(horizon=4.0)
        assert [f["fault"] for f in injector.injected] == [
            "arrival_burst",
            "cancel_storm",
        ]
        assert injector.injected[0]["time"] == pytest.approx(2.0)


class TestInjectorGuards:
    def test_unknown_component_rejected(self, qs_bundle):
        with pytest.raises(SchedulingError):
            FaultInjector(qs_bundle).drop_completions(component="classifier")

    def test_unknown_plan_corruption_rejected(self, qs_bundle):
        with pytest.raises(SchedulingError):
            FaultInjector(qs_bundle).corrupt_plan(mode="jackpot")

    def test_baseline_bundle_has_no_dispatcher_to_fault(self):
        from repro.experiments.runner import build_bundle, make_controller
        from repro.workloads.schedule import constant_schedule
        from tests.validation.conftest import small_config

        bundle = build_bundle(
            config=small_config(),
            schedule=constant_schedule(30.0, 1, {"class1": 1, "class3": 1}),
        )
        make_controller(bundle, "none")
        with pytest.raises(SchedulingError):
            FaultInjector(bundle).leak_dispatcher_slot("class1")

    def test_world_helper_reflects_mode_guard(self, qs_bundle):
        with pytest.raises(SchedulingError):
            ValidationHarness(
                ControlLoopWorld.from_bundle(qs_bundle), mode="bogus"
            )


class TestScheduledFaults:
    """The data-driven fault path: ScheduledFault -> FaultInjector.apply."""

    def _none_bundle(self):
        from repro.experiments.runner import build_bundle, make_controller
        from repro.workloads.schedule import constant_schedule
        from tests.validation.conftest import small_config

        bundle = build_bundle(
            config=small_config(),
            schedule=constant_schedule(30.0, 1, {"class1": 1, "class3": 1}),
        )
        make_controller(bundle, "none")
        return bundle

    def test_apply_schedules_at_absolute_time(self, qs_bundle):
        from repro.faults import ScheduledFault

        started_harness(qs_bundle)
        injector = FaultInjector(qs_bundle)
        injector.apply(ScheduledFault(
            kind="arrival_burst", at=3.0,
            params={"class_name": "class1", "count": 2},
        ))
        qs_bundle.run(horizon=5.0)
        assert injector.injected[0]["fault"] == "arrival_burst"
        assert injector.injected[0]["time"] == pytest.approx(3.0)

    def test_unknown_kind_rejected_before_scheduling(self, qs_bundle):
        from repro.faults import ScheduledFault

        with pytest.raises(SchedulingError, match="unknown behavioral fault"):
            FaultInjector(qs_bundle).apply(ScheduledFault(kind="meteor"))

    def test_negative_time_rejected(self, qs_bundle):
        from repro.faults import ScheduledFault

        with pytest.raises(SchedulingError, match="must be >= 0"):
            FaultInjector(qs_bundle).apply(
                ScheduledFault(kind="cancel_storm", at=-1.0)
            )

    def test_missing_dispatcher_names_fault_and_controller(self):
        """Regression: a fault needing an absent component raises a clear
        SchedulingError naming both, instead of failing obscurely later."""
        from repro.faults import ScheduledFault

        injector = FaultInjector(self._none_bundle())
        with pytest.raises(SchedulingError) as excinfo:
            injector.apply(ScheduledFault(kind="cancel_storm", at=1.0))
        message = str(excinfo.value)
        assert "'cancel_storm'" in message
        assert "dispatcher" in message
        assert "NoControlController" in message

    def test_missing_monitor_named_for_drop_completions(self):
        injector = FaultInjector(self._none_bundle())
        with pytest.raises(SchedulingError) as excinfo:
            injector.drop_completions(component="monitor")
        assert "'drop_completions'" in str(excinfo.value)
        assert "monitor" in str(excinfo.value)

    def test_cancel_storm_fraction_bounds_checked(self, qs_bundle):
        with pytest.raises(SchedulingError, match="fraction"):
            FaultInjector(qs_bundle).cancel_storm(fraction=0.0)
        with pytest.raises(SchedulingError, match="fraction"):
            FaultInjector(qs_bundle).cancel_storm(fraction=1.5)

    def test_cancel_storm_on_unqueued_class_logs_a_skip(self, qs_bundle):
        """Regression: storming a class the dispatcher does not queue
        (OLTP, or unknown) records a skip entry instead of silently
        cancelling nothing."""
        started_harness(qs_bundle)
        injector = FaultInjector(qs_bundle)
        injector.cancel_storm(class_name="class3", delay=1.0)  # OLTP: bypasses
        injector.cancel_storm(class_name="ghost", delay=2.0)   # unknown
        qs_bundle.run(horizon=3.0)
        assert len(injector.injected) == 2
        for entry in injector.injected:
            assert entry["fault"] == "cancel_storm"
            assert entry["cancelled"] == 0
            assert "not queued by the dispatcher" in entry["skipped"]
