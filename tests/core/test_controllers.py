"""Tests for the baseline controllers."""

import pytest

from repro.core.controllers import NoControlController, QPPriorityController
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.errors import ConfigurationError
from repro.config import PatrollerConfig, default_config
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_stack():
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(interception_latency=0.0, release_latency=0.0,
                                  overhead_cpu_demand=0.0)
    )
    engine = DatabaseEngine(sim, config, RandomStreams(21))
    patroller = QueryPatroller(sim, engine, config.patroller)
    return sim, engine, patroller, list(paper_classes())


class TestNoControl:
    def test_start_installs_single_limit_policy(self):
        sim, engine, patroller, classes = make_stack()
        controller = NoControlController(patroller, engine, classes, 30_000.0)
        controller.start()
        assert controller.policy is not None
        assert controller.policy.groups == []
        assert controller.policy.priorities == {}
        assert controller.policy.global_cost_limit == 30_000.0
        assert patroller.intercepts("class1")
        assert not patroller.intercepts("class3")

    def test_invalid_limit(self):
        sim, engine, patroller, classes = make_stack()
        with pytest.raises(ConfigurationError):
            NoControlController(patroller, engine, classes, 0.0)

    def test_describe(self):
        sim, engine, patroller, classes = make_stack()
        controller = NoControlController(patroller, engine, classes, 30_000.0)
        assert "30000" in controller.describe()


class TestQPPriority:
    def _controller(self, priority=True):
        sim, engine, patroller, classes = make_stack()
        controller = QPPriorityController(
            patroller,
            engine,
            classes,
            historical_costs=[100.0, 500.0, 1_000.0, 5_000.0, 10_000.0] * 10,
            static_olap_limit=30_000.0,
            priority_control=priority,
        )
        return sim, controller

    def test_start_builds_three_groups(self):
        sim, controller = self._controller()
        controller.start()
        names = [g.name for g in controller.policy.groups]
        assert names == ["small", "medium", "large"]

    def test_priorities_mirror_importance_for_olap_only(self):
        sim, controller = self._controller(priority=True)
        controller.start()
        assert controller.policy.priorities == {"class1": 1, "class2": 2}

    def test_priority_off_empty_map(self):
        sim, controller = self._controller(priority=False)
        controller.start()
        assert controller.policy.priorities == {}

    def test_requires_history(self):
        sim, engine, patroller, classes = make_stack()
        with pytest.raises(ConfigurationError):
            QPPriorityController(
                patroller, engine, classes,
                historical_costs=[], static_olap_limit=30_000.0,
            )

    def test_requires_positive_limit(self):
        sim, engine, patroller, classes = make_stack()
        with pytest.raises(ConfigurationError):
            QPPriorityController(
                patroller, engine, classes,
                historical_costs=[1.0], static_olap_limit=0.0,
            )

    def test_describe_reports_priority_state(self):
        sim, controller = self._controller(priority=True)
        assert "priorities on" in controller.describe()
        sim, controller = self._controller(priority=False)
        assert "priorities off" in controller.describe()
