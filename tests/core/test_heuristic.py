"""Tests for the deficit-weighted heuristic allocator."""

import pytest

from repro.core.heuristic import DeficitAllocator
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.core.solver import ClassStatus
from repro.errors import SchedulingError


def olap_status(name, goal, importance, velocity, limit=10_000.0):
    return ClassStatus(
        ServiceClass(name, "olap", VelocityGoal(goal), importance), limit, velocity
    )


def oltp_status(name, goal, importance, rt, limit=10_000.0):
    return ClassStatus(
        ServiceClass(name, "oltp", ResponseTimeGoal(goal), importance), limit, rt
    )


def make_allocator(**kwargs):
    defaults = dict(system_cost_limit=30_000.0, grid_timerons=1_000.0,
                    min_class_limit=1_000.0)
    defaults.update(kwargs)
    return DeficitAllocator(**defaults)


def test_respects_budget_and_minimums():
    allocator = make_allocator()
    plan = allocator.solve([
        olap_status("a", 0.4, 1, 0.2),
        olap_status("b", 0.6, 2, 0.3),
        oltp_status("c", 0.25, 3, 0.4),
    ])
    assert plan.total_allocated <= 30_000.0 + 1e-9
    for name in plan:
        assert plan.limit(name) >= 1_000.0


def test_bigger_deficit_gets_more():
    allocator = make_allocator()
    plan = allocator.solve([
        olap_status("hurting", 0.6, 1, 0.1),
        olap_status("fine", 0.6, 1, 0.9),
    ])
    assert plan.limit("hurting") > plan.limit("fine")


def test_importance_scales_share():
    allocator = make_allocator()
    plan = allocator.solve([
        olap_status("lo", 0.6, 1, 0.3),
        olap_status("hi", 0.6, 3, 0.3),
    ])
    assert plan.limit("hi") > plan.limit("lo")


def test_all_satisfied_splits_evenly():
    allocator = make_allocator()
    plan = allocator.solve([
        olap_status("a", 0.4, 1, 0.9),
        olap_status("b", 0.4, 1, 0.9),
    ])
    assert plan.limit("a") == pytest.approx(plan.limit("b"), abs=1_000.0)


def test_deficit_floor_keeps_satisfied_class_alive():
    status = olap_status("fine", 0.4, 1, 1.0)
    assert DeficitAllocator.deficit(status) == pytest.approx(0.05)


def test_missing_measurement_counts_as_at_goal():
    allocator = make_allocator()
    status = ClassStatus(
        ServiceClass("x", "olap", VelocityGoal(0.5), 1), 10_000.0, None
    )
    assert DeficitAllocator.deficit(status) == pytest.approx(0.05)


def test_validation():
    with pytest.raises(SchedulingError):
        make_allocator(system_cost_limit=0.0)
    with pytest.raises(SchedulingError):
        make_allocator(grid_timerons=0.0)
    with pytest.raises(SchedulingError):
        make_allocator(min_class_limit=-1.0)
    with pytest.raises(SchedulingError):
        make_allocator().solve([])
    tiny = make_allocator(system_cost_limit=1_500.0)
    with pytest.raises(SchedulingError):
        tiny.solve([olap_status("a", 0.4, 1, 0.2), olap_status("b", 0.4, 1, 0.2)])


def test_scheduler_accepts_deficit_allocator():
    """The QueryScheduler wires the heuristic when configured."""
    from repro.config import PlannerConfig, default_config
    from repro.core.scheduler import QueryScheduler
    from repro.core.service_class import paper_classes
    from repro.dbms.engine import DatabaseEngine
    from repro.patroller.patroller import QueryPatroller
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams

    sim = Simulator()
    config = default_config(planner=PlannerConfig(allocator="deficit",
                                                  control_interval=10.0))
    engine = DatabaseEngine(sim, config, RandomStreams(81))
    patroller = QueryPatroller(sim, engine, config.patroller)
    scheduler = QueryScheduler(sim, engine, patroller, list(paper_classes()), config)
    assert isinstance(scheduler.solver, DeficitAllocator)
    scheduler.start()
    sim.run_until(25.0)
    assert scheduler.planner.intervals_run == 2  # loop works model-free
