"""Tests for the Query Scheduler facade wiring."""

import pytest

from repro.config import (
    MonitorConfig,
    PatrollerConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.plan import SchedulingPlan
from repro.core.scheduler import QueryScheduler
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.errors import SchedulingError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.client import ClosedLoopClient
from repro.workloads.spec import QueryFactory
from repro.workloads.tpcc import tpcc_mix
from repro.workloads.tpch import tpch_mix


def make_scheduler(initial_plan=None):
    sim = Simulator()
    config = default_config(
        planner=PlannerConfig(control_interval=10.0),
        monitor=MonitorConfig(snapshot_interval=2.0),
        patroller=PatrollerConfig(interception_latency=0.05, release_latency=0.0,
                                  overhead_cpu_demand=0.0),
    )
    engine = DatabaseEngine(sim, config, RandomStreams(17))
    patroller = QueryPatroller(sim, engine, config.patroller)
    classes = list(paper_classes())
    scheduler = QueryScheduler(sim, engine, patroller, classes, config,
                               initial_plan=initial_plan)
    return sim, engine, patroller, scheduler


def test_interception_configuration():
    sim, engine, patroller, scheduler = make_scheduler()
    assert patroller.intercepts("class1")
    assert patroller.intercepts("class2")
    assert not patroller.intercepts("class3")


def test_initial_plan_even_split_by_default():
    sim, engine, patroller, scheduler = make_scheduler()
    assert scheduler.plan.limit("class1") == pytest.approx(10_000.0)
    assert scheduler.plan.total_allocated == pytest.approx(30_000.0)


def test_explicit_initial_plan_honoured():
    plan = SchedulingPlan(
        {"class1": 5_000.0, "class2": 5_000.0, "class3": 20_000.0}, 30_000.0
    )
    sim, engine, patroller, scheduler = make_scheduler(initial_plan=plan)
    assert scheduler.plan.limit("class3") == 20_000.0


def test_double_start_rejected():
    sim, engine, patroller, scheduler = make_scheduler()
    scheduler.start()
    with pytest.raises(SchedulingError):
        scheduler.start()


def test_no_classes_rejected():
    sim = Simulator()
    config = default_config()
    engine = DatabaseEngine(sim, config, RandomStreams(1))
    patroller = QueryPatroller(sim, engine, config.patroller)
    with pytest.raises(SchedulingError):
        QueryScheduler(sim, engine, patroller, [], config)


def test_describe_mentions_configuration():
    sim, engine, patroller, scheduler = make_scheduler()
    text = scheduler.describe()
    assert "3 classes" in text
    assert "piecewise" in text


def test_end_to_end_flow_under_load():
    """OLAP queries flow intercept -> classify -> queue -> release -> engine,
    OLTP bypasses, and the planner re-plans periodically."""
    sim, engine, patroller, scheduler = make_scheduler()
    factory = QueryFactory(engine.estimator, RandomStreams(18))
    olap_mix, oltp_mix = tpch_mix(), tpcc_mix()
    clients = []
    for i in range(3):
        clients.append(ClosedLoopClient(sim, patroller, factory, olap_mix,
                                        "class1", "c1-{}".format(i)))
    for i in range(6):
        clients.append(ClosedLoopClient(sim, patroller, factory, oltp_mix,
                                        "class3", "c3-{}".format(i)))
    scheduler.start()
    for client in clients:
        client.activate()
    sim.run_until(60.0)
    assert patroller.intercepted_count > 0
    assert patroller.bypassed_count > 50
    assert scheduler.planner.intervals_run == 6
    assert engine.completed_queries > 50
    # The monitor produced at least the OLTP measurement.
    assert scheduler.monitor.measure("class3") is not None


class TestDetectionWiring:
    def test_enable_detection_attaches_and_triggers(self):
        sim, engine, patroller, scheduler = make_scheduler()
        detector = scheduler.enable_detection(
            bucket_seconds=5.0, warmup_buckets=1, min_shift_gap=0.0,
            shift_factor=1.3,
        )
        assert scheduler.detector is detector
        scheduler.start()
        factory = QueryFactory(engine.estimator, RandomStreams(19))
        mix = tpcc_mix()
        clients = [
            ClosedLoopClient(sim, patroller, factory, mix, "class3",
                             "c{}".format(i))
            for i in range(3)
        ]
        # Quiet start, then a burst of clients -> rate shift -> early replan.
        sim.run_until(20.0)
        for client in clients:
            client.activate()
        sim.run_until(60.0)
        assert detector.buckets_seen >= 10
        assert len(detector.shifts) >= 1
        assert scheduler.planner.early_triggers >= 1

    def test_enable_detection_twice_rejected(self):
        sim, engine, patroller, scheduler = make_scheduler()
        scheduler.enable_detection()
        with pytest.raises(SchedulingError):
            scheduler.enable_detection()

    def test_enable_after_start_begins_immediately(self):
        sim, engine, patroller, scheduler = make_scheduler()
        scheduler.start()
        detector = scheduler.enable_detection(bucket_seconds=5.0)
        sim.run_until(11.0)
        assert detector.buckets_seen == 2
