"""Tests for service classes and performance goals."""

import pytest

from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
    find_class,
    paper_classes,
)
from repro.errors import ConfigurationError


class TestVelocityGoal:
    def test_achievement_is_one_at_goal(self):
        goal = VelocityGoal(0.4)
        assert goal.achievement(0.4) == pytest.approx(1.0)

    def test_achievement_scales_linearly(self):
        goal = VelocityGoal(0.5)
        assert goal.achievement(0.25) == pytest.approx(0.5)
        assert goal.achievement(1.0) == pytest.approx(2.0)

    def test_satisfied(self):
        goal = VelocityGoal(0.6)
        assert goal.satisfied(0.6)
        assert goal.satisfied(0.9)
        assert not goal.satisfied(0.59)

    def test_negative_velocity_clamped(self):
        assert VelocityGoal(0.5).achievement(-1.0) == 0.0

    def test_bounds(self):
        with pytest.raises(ConfigurationError):
            VelocityGoal(0.0)
        with pytest.raises(ConfigurationError):
            VelocityGoal(1.5)
        VelocityGoal(1.0)  # exactly 1 is legal


class TestResponseTimeGoal:
    def test_achievement_is_one_at_goal(self):
        goal = ResponseTimeGoal(0.25)
        assert goal.achievement(0.25) == pytest.approx(1.0)

    def test_achievement_linear_in_response_time(self):
        # r = 2 - t/goal: the deficit form (see class docstring).
        goal = ResponseTimeGoal(0.25)
        assert goal.achievement(0.125) == pytest.approx(1.5)
        assert goal.achievement(0.375) == pytest.approx(0.5)
        assert goal.achievement(0.5) == pytest.approx(0.0)
        # Deliberately unclamped: deep violations keep their slope.
        assert goal.achievement(0.75) == pytest.approx(-1.0)

    def test_satisfied_iff_at_or_below_goal(self):
        goal = ResponseTimeGoal(0.25)
        assert goal.satisfied(0.25)
        assert goal.satisfied(0.1)
        assert not goal.satisfied(0.26)

    def test_constant_urgency_per_second(self):
        """Equal response-time deltas give equal achievement deltas."""
        goal = ResponseTimeGoal(0.2)
        deltas = [
            goal.achievement(t) - goal.achievement(t + 0.05)
            for t in (0.2, 0.25, 0.3)
        ]
        assert deltas[0] == pytest.approx(deltas[1]) == pytest.approx(deltas[2])

    def test_positive_target_required(self):
        with pytest.raises(ConfigurationError):
            ResponseTimeGoal(0.0)


class TestServiceClass:
    def test_olap_class(self):
        c = ServiceClass("c1", "olap", VelocityGoal(0.4), importance=1)
        assert c.directly_controlled

    def test_oltp_class(self):
        c = ServiceClass("c3", "oltp", ResponseTimeGoal(0.25), importance=3)
        assert not c.directly_controlled

    def test_kind_goal_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceClass("bad", "olap", ResponseTimeGoal(0.25), importance=1)
        with pytest.raises(ConfigurationError):
            ServiceClass("bad", "oltp", VelocityGoal(0.4), importance=1)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceClass("bad", "batch", VelocityGoal(0.4), importance=1)

    def test_nonpositive_importance_rejected(self):
        with pytest.raises(ConfigurationError):
            ServiceClass("bad", "olap", VelocityGoal(0.4), importance=0)


class TestPaperClasses:
    def test_section4_setup(self):
        c1, c2, c3 = paper_classes()
        assert (c1.goal.target, c1.importance) == (0.40, 1)
        assert (c2.goal.target, c2.importance) == (0.60, 2)
        assert (c3.goal.target, c3.importance) == (0.25, 3)
        assert c1.kind == c2.kind == "olap"
        assert c3.kind == "oltp"

    def test_find_class(self):
        classes = paper_classes()
        assert find_class(classes, "class2").importance == 2
        assert find_class(classes, "nope") is None
