"""Tests for the solver's memoized search and solution cache.

The optimized solver must be a pure speedup: for any inputs, the plan it
produces (and the score it reports) must match a reference solver that
re-evaluates the full objective for every candidate allocation, and a
repeat solve on unchanged inputs must be a cache hit that returns the
same plan without searching.
"""

import math
import random

import pytest

from repro.core.models import OLTPResponseTimeModel
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.core.solver import (
    _SOLUTION_CACHE_MAX,
    ClassStatus,
    PerformanceSolver,
    _compositions,
)
from repro.core.utility import PiecewiseLinearUtility
from repro.obs.registry import MetricsRegistry


def make_solver(num_classes=3, system_per_class=10_000.0):
    return PerformanceSolver(
        utility=PiecewiseLinearUtility(),
        oltp_model=OLTPResponseTimeModel(prior_slope=-4.2e-6),
        system_cost_limit=system_per_class * num_classes,
        grid_timerons=1_000.0,
        min_class_limit=1_000.0,
    )


def random_statuses(rng, num_classes):
    """Randomized ClassStatus inputs: OLAP classes plus one OLTP class."""
    statuses = []
    for index in range(num_classes):
        if index == num_classes - 1:
            service_class = ServiceClass(
                "oltp", "oltp", ResponseTimeGoal(rng.uniform(0.1, 0.5)),
                importance=rng.randint(1, 3),
            )
            value = rng.uniform(0.05, 0.6)
        else:
            service_class = ServiceClass(
                "olap{}".format(index), "olap",
                VelocityGoal(rng.uniform(0.2, 0.8)),
                importance=rng.randint(1, 3),
            )
            value = rng.uniform(0.05, 0.95)
        statuses.append(
            ClassStatus(
                service_class,
                current_limit=rng.uniform(2_000.0, 20_000.0),
                current_value=value,
            )
        )
    return statuses


def reference_exhaustive(solver, statuses):
    """Brute-force best allocation using the unmemoized full objective."""
    count = len(statuses)
    min_units = max(0, int(round(solver.min_class_limit / solver.grid)))
    total_units = int(solver.system_cost_limit // solver.grid)
    free = total_units - min_units * count
    best_units, best_score = None, float("nan")
    for combo in _compositions(free, count):
        units = tuple(min_units + c for c in combo)
        limits = [u * solver.grid for u in units]
        score = solver.objective(statuses, limits)
        if math.isnan(score):
            continue
        if math.isnan(best_score) or score > best_score:
            best_units, best_score = units, score
    return best_units, best_score


class TestMemoizedSearchConformance:
    def test_exhaustive_matches_unmemoized_reference_randomized(self):
        rng = random.Random(20260808)
        for _ in range(25):
            num_classes = rng.randint(1, 3)
            statuses = random_statuses(rng, num_classes)
            optimized = make_solver(num_classes)
            reference = make_solver(num_classes)
            plan = optimized.solve(statuses)
            ref_units, ref_score = reference_exhaustive(reference, statuses)
            names = [s.service_class.name for s in statuses]
            expected = {
                name: units * optimized.grid
                for name, units in zip(names, ref_units)
            }
            assert plan.as_dict() == expected
            assert optimized.last_score == pytest.approx(ref_score, abs=0.0)

    def test_greedy_memoized_matches_fresh_solver_randomized(self):
        # Beyond the exhaustive cut-off a brute-force reference is too
        # large; instead two independent solvers (each searching from a
        # cold cache) must agree exactly — the memo must not change which
        # moves the hill-climb takes.
        rng = random.Random(7)
        for _ in range(10):
            num_classes = rng.randint(4, 7)
            statuses = random_statuses(rng, num_classes)
            first = make_solver(num_classes).solve(statuses)
            second = make_solver(num_classes).solve(statuses)
            assert first.as_dict() == second.as_dict()

    def test_memo_does_not_change_evaluation_count(self):
        # Every candidate allocation is still counted as one evaluation;
        # the memo only avoids recomputing per-class utilities.
        rng = random.Random(3)
        statuses = random_statuses(rng, 3)
        solver = make_solver(3)
        solver.solve(statuses)
        free = int(solver.system_cost_limit // solver.grid) - 3
        candidates = len(list(_compositions(free, 3)))
        assert solver.last_evaluations == candidates


class TestSolutionCache:
    def test_repeat_solve_is_cache_hit_with_same_plan(self):
        rng = random.Random(11)
        statuses = random_statuses(rng, 3)
        solver = make_solver(3)
        first = solver.solve(statuses, now=0.0)
        assert solver.cache_hits == 0
        second = solver.solve(statuses, now=60.0)
        assert solver.cache_hits == 1
        assert second.as_dict() == first.as_dict()
        assert second.created_at == 60.0
        assert solver.last_evaluations == 0  # served without searching
        assert solver.solve_calls == 2

    def test_changed_measurement_misses_cache(self):
        solver = make_solver(3)
        rng = random.Random(13)
        statuses = random_statuses(rng, 3)
        solver.solve(statuses)
        statuses[0].current_value *= 0.5
        solver.solve(statuses)
        assert solver.cache_hits == 0
        assert solver.last_evaluations > 0

    def test_model_learning_invalidates_cache(self):
        # observe() bumps the model's observation count, which is part of
        # the cache key: a learned slope must not be served a stale plan.
        solver = make_solver(3)
        rng = random.Random(17)
        statuses = random_statuses(rng, 3)
        solver.solve(statuses)
        solver.oltp_model.observe(2_000.0, -0.05)
        solver.solve(statuses)
        assert solver.cache_hits == 0

    def test_cache_capacity_is_bounded(self):
        solver = make_solver(3)
        rng = random.Random(19)
        for _ in range(_SOLUTION_CACHE_MAX + 10):
            solver.solve(random_statuses(rng, 3))
        assert len(solver._solution_cache) <= _SOLUTION_CACHE_MAX

    def test_cache_hits_instrument_registered(self):
        registry = MetricsRegistry()
        solver = make_solver(3)
        solver.register_instruments(registry)
        rng = random.Random(23)
        statuses = random_statuses(rng, 3)
        solver.solve(statuses)
        solver.solve(statuses)
        sample = registry.sample(now=0.0)
        assert sample["solver_cache_hits_total"] == 1
