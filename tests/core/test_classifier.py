"""Tests for the Classifier."""

import pytest

from repro.core.classifier import Classifier, CostBandRule, KindRule, submitter_tag_rule
from repro.core.service_class import paper_classes
from repro.dbms.query import CPU, Phase, Query
from repro.errors import SchedulingError


def make_query(class_name="class1", kind="olap", cost=1000.0):
    return Query(
        query_id=1,
        class_name=class_name,
        client_id="c0",
        template="t",
        kind=kind,
        phases=(Phase(CPU, 1.0),),
        true_cost=cost,
        estimated_cost=cost,
    )


def test_default_rule_trusts_submitter_tag():
    classifier = Classifier(paper_classes())
    query = make_query(class_name="class2")
    assigned = classifier.classify(query)
    assert assigned.name == "class2"
    assert classifier.classified_count == 1


def test_unknown_tag_rejected():
    classifier = Classifier(paper_classes())
    with pytest.raises(SchedulingError):
        classifier.classify(make_query(class_name="marketing"))


def test_untagged_query_with_no_matching_rule_rejected():
    classifier = Classifier(paper_classes())
    with pytest.raises(SchedulingError):
        classifier.classify(make_query(class_name=""))


def test_kind_rule():
    classifier = Classifier(
        paper_classes(),
        rules=[KindRule("class3", "oltp"), KindRule("class1", "olap")],
    )
    assert classifier.classify(make_query(kind="oltp", class_name="x")).name == "class3"
    assert classifier.classify(make_query(kind="olap", class_name="x")).name == "class1"


def test_cost_band_rule_first_match_wins():
    classifier = Classifier(
        paper_classes(),
        rules=[
            CostBandRule("class2", 0.0, 2_000.0),
            CostBandRule("class1", 0.0, float("inf")),
        ],
    )
    assert classifier.classify(make_query(cost=1_500.0)).name == "class2"
    assert classifier.classify(make_query(cost=9_000.0)).name == "class1"


def test_classification_overwrites_query_tag():
    classifier = Classifier(paper_classes(), rules=[KindRule("class1", "olap")])
    query = make_query(class_name="whatever")
    classifier.classify(query)
    assert query.class_name == "class1"


def test_rule_naming_unregistered_class_rejected():
    classifier = Classifier(paper_classes(), rules=[KindRule("ghost", "olap")])
    with pytest.raises(SchedulingError):
        classifier.classify(make_query())


def test_duplicate_classes_rejected():
    classes = list(paper_classes())
    with pytest.raises(SchedulingError):
        Classifier(classes + [classes[0]])


def test_empty_classes_rejected():
    with pytest.raises(SchedulingError):
        Classifier([])


def test_get_lookup():
    classifier = Classifier(paper_classes())
    assert classifier.get("class3").kind == "oltp"
    with pytest.raises(SchedulingError):
        classifier.get("nope")
    assert classifier.class_names == ["class1", "class2", "class3"]


def test_submitter_tag_rule_returns_none_for_blank():
    assert submitter_tag_rule(make_query(class_name="")) is None
