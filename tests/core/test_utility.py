"""Tests for the utility function families."""

import pytest

from repro.core.utility import (
    PiecewiseLinearUtility,
    SigmoidUtility,
    StepUtility,
    effective_weight,
    make_utility,
)
from repro.errors import ConfigurationError

ALL_FAMILIES = [
    PiecewiseLinearUtility(),
    SigmoidUtility(),
    StepUtility(),
]


class TestEffectiveWeight:
    def test_exponential(self):
        assert effective_weight(1, 4.0) == pytest.approx(1.0)
        assert effective_weight(2, 4.0) == pytest.approx(4.0)
        assert effective_weight(3, 4.0) == pytest.approx(16.0)

    def test_base_one_is_linear(self):
        assert effective_weight(3, 1.0) == 3


@pytest.mark.parametrize("utility", ALL_FAMILIES, ids=lambda u: type(u).__name__)
class TestSharedContract:
    def test_monotone_in_achievement(self, utility):
        points = [utility.value(r / 10.0, 2) for r in range(0, 25)]
        assert all(a <= b + 1e-12 for a, b in zip(points, points[1:]))

    def test_more_important_violator_worth_more_to_fix(self, utility):
        """Raising r 0.5 -> 1.0 must gain more for higher importance."""
        gain_low = utility.value(1.0, 1) - utility.value(0.5, 1)
        gain_high = utility.value(1.0, 3) - utility.value(0.5, 3)
        assert gain_high > gain_low

    def test_importance_mostly_irrelevant_above_goal(self, utility):
        """Section 4.3: importance is in effect only while violating."""
        surplus_low = utility.value(1.5, 1) - utility.value(1.0, 1)
        surplus_high = utility.value(1.5, 3) - utility.value(1.0, 3)
        below_high = utility.value(1.0, 3) - utility.value(0.5, 3)
        assert surplus_high <= below_high * 0.5
        assert surplus_high == pytest.approx(surplus_low, abs=1e-9)

    def test_surplus_saturates(self, utility):
        assert utility.value(5.0, 2) == pytest.approx(utility.value(2.0, 2), rel=1e-6)

    def test_negative_achievement_keeps_gradient(self, utility):
        """Deep violations must stay strictly worse than shallow ones so
        the solver never loses its slope toward a rescue."""
        assert utility.value(-1.0, 2) < utility.value(0.0, 2)

    def test_callable_protocol(self, utility):
        assert utility(1.0, 2) == utility.value(1.0, 2)


class TestPiecewiseLinear:
    def test_below_goal_slope_is_weight(self):
        utility = PiecewiseLinearUtility(surplus_slope=0.05, importance_base=1.0)
        assert utility.value(0.5, 2) == pytest.approx(1.0)
        assert utility.value(0.9, 2) == pytest.approx(1.8)

    def test_surplus_slope(self):
        utility = PiecewiseLinearUtility(surplus_slope=0.1, importance_base=1.0)
        assert utility.value(1.5, 2) == pytest.approx(2.0 + 0.05)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            PiecewiseLinearUtility(surplus_slope=-0.1)
        with pytest.raises(ConfigurationError):
            PiecewiseLinearUtility(importance_base=0.5)


class TestSigmoid:
    def test_half_weight_at_goal(self):
        utility = SigmoidUtility(steepness=4.0, epsilon=0.0, importance_base=1.0)
        assert utility.value(1.0, 2) == pytest.approx(1.0)

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            SigmoidUtility(steepness=0.0)
        with pytest.raises(ConfigurationError):
            SigmoidUtility(epsilon=-1.0)


class TestStep:
    def test_jump_at_goal(self):
        utility = StepUtility(ramp=0.1, importance_base=1.0)
        below = utility.value(0.99, 2)
        at_goal = utility.value(1.0, 2)
        assert at_goal - below > 1.5


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_utility("piecewise"), PiecewiseLinearUtility)
        assert isinstance(make_utility("sigmoid"), SigmoidUtility)
        assert isinstance(make_utility("step"), StepUtility)

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            make_utility("parabolic")

    def test_params_forwarded(self):
        utility = make_utility("piecewise", surplus_slope=0.2, importance_base=2.0)
        assert utility.surplus_slope == 0.2
        assert utility.importance_base == 2.0
