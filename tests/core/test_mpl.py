"""Tests for the MPL-based admission control extension."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.core.mpl import MPLController
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, Phase, Query
from repro.errors import ConfigurationError, SchedulingError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_stack(initial_mpl=2, control_interval=10.0):
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(interception_latency=0.0, release_latency=0.0,
                                  overhead_cpu_demand=0.0)
    )
    engine = DatabaseEngine(sim, config, RandomStreams(23))
    patroller = QueryPatroller(sim, engine, config.patroller)
    classes = list(paper_classes())
    controller = MPLController(
        sim, patroller, engine, classes,
        initial_mpl=initial_mpl, control_interval=control_interval,
    )
    return sim, engine, patroller, controller


_qid = [1000]


def olap_query(class_name="class1", demand=5.0):
    _qid[0] += 1
    return Query(
        query_id=_qid[0],
        class_name=class_name,
        client_id="c",
        template="t",
        kind="olap",
        phases=(Phase(CPU, demand),),
        true_cost=1_000.0,
        estimated_cost=1_000.0,
    )


def oltp_query(demand=0.02):
    _qid[0] += 1
    return Query(
        query_id=_qid[0],
        class_name="class3",
        client_id="oltp-{}".format(_qid[0]),
        template="t",
        kind="oltp",
        phases=(Phase(CPU, demand),),
        true_cost=30.0,
        estimated_cost=30.0,
    )


def test_mpl_caps_concurrency_per_class():
    sim, engine, patroller, controller = make_stack(initial_mpl=2)
    controller.start()
    for _ in range(5):
        patroller.submit(olap_query())
    sim.run_until(1.0)
    assert engine.executing_queries == 2
    # 5 queries of 5s CPU, 2 at a time on 2 idle CPUs: done well before 40s.
    sim.run_until(40.0)
    assert engine.completed_queries == 5


def test_mpl_is_cost_blind():
    """Unlike cost-based control, one monster counts the same as one mouse."""
    sim, engine, patroller, controller = make_stack(initial_mpl=2)
    controller.start()
    big = olap_query(demand=5.0)
    big.estimated_cost = 1e9
    patroller.submit(big)
    patroller.submit(olap_query(demand=5.0))
    sim.run_until(1.0)
    assert engine.executing_queries == 2


def test_aimd_decreases_on_oltp_violation():
    sim, engine, patroller, controller = make_stack(initial_mpl=8, control_interval=5.0)
    controller.start()
    # Complete a slow OLTP statement so the snapshot shows a violation.
    bad = oltp_query(demand=2.0)  # 2s >> 0.25s goal
    bad.submit_time = 0.0
    engine.execute(bad)
    sim.run_until(6.0)
    assert controller.mpl["class1"] == 4  # halved
    sim.run_until(11.0)
    assert controller.mpl["class1"] == 2  # halved again (stale but recent sample)


def test_aimd_increases_when_goals_met():
    sim, engine, patroller, controller = make_stack(initial_mpl=2, control_interval=5.0)
    controller.start()
    good = oltp_query(demand=0.01)
    good.submit_time = 0.0
    engine.execute(good)
    sim.run_until(6.0)
    assert controller.mpl["class1"] == 3  # +1


def test_no_snapshot_data_no_adjustment():
    sim, engine, patroller, controller = make_stack(initial_mpl=4, control_interval=5.0)
    controller.start()
    sim.run_until(16.0)
    assert controller.mpl["class1"] == 4
    assert controller.adjustments == 0


def test_mpl_never_below_min():
    sim, engine, patroller, controller = make_stack(initial_mpl=2, control_interval=5.0)
    controller.start()
    bad = oltp_query(demand=2.0)
    bad.submit_time = 0.0
    engine.execute(bad)
    sim.run_until(50.0)
    assert controller.mpl["class1"] >= controller.min_mpl


def test_unmanaged_class_query_rejected():
    sim, engine, patroller, controller = make_stack()
    controller.start()
    stray = olap_query(class_name="ghost")
    patroller.enable_for_class("ghost")
    patroller.submit(stray)
    with pytest.raises(SchedulingError):
        sim.run_until(1.0)


def test_double_start_rejected():
    sim, engine, patroller, controller = make_stack()
    controller.start()
    with pytest.raises(SchedulingError):
        controller.start()


def test_invalid_parameters():
    sim, engine, patroller, _ = make_stack()
    classes = list(paper_classes())
    with pytest.raises(ConfigurationError):
        MPLController(sim, patroller, engine, classes, initial_mpl=0)
    with pytest.raises(ConfigurationError):
        MPLController(sim, patroller, engine, classes, decrease_factor=1.5)
    with pytest.raises(ConfigurationError):
        MPLController(sim, patroller, engine, classes, control_interval=0.0)
