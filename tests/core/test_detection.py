"""Tests for the workload detector."""

import pytest

from repro.core.detection import ShiftEvent, WorkloadDetector
from repro.core.service_class import paper_classes
from repro.dbms.query import CPU, Phase, Query
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator


def make_detector(sim=None, **kwargs):
    sim = sim or Simulator()
    defaults = dict(bucket_seconds=10.0, ewma_alpha=0.5, shift_factor=1.5,
                    warmup_buckets=1, min_shift_gap=0.0)
    defaults.update(kwargs)
    return sim, WorkloadDetector(sim, paper_classes(), **defaults)


_qid = [9000]


def arrival(class_name="class3", cost=30.0):
    _qid[0] += 1
    return Query(
        query_id=_qid[0],
        class_name=class_name,
        client_id="c",
        template="t",
        kind="oltp",
        phases=(Phase(CPU, 0.01),),
        true_cost=cost,
        estimated_cost=cost,
    )


def drive(sim, detector, rates, class_name="class3"):
    """Submit `rates[i]` arrivals during bucket i."""
    detector.start()
    for bucket, count in enumerate(rates):
        start = bucket * 10.0
        for i in range(count):
            at = start + (i + 0.5) * (10.0 / max(count, 1))
            sim.schedule_at(at, lambda c=class_name: detector.observe(arrival(c)))
        sim.run_until((bucket + 1) * 10.0)


def test_characterization_per_bucket():
    sim, detector = make_detector()
    drive(sim, detector, [5, 10])
    class3 = [h for h in detector.history if h.class_name == "class3"]
    assert [h.arrivals for h in class3] == [5, 10]
    assert class3[0].arrival_rate == pytest.approx(0.5)
    assert class3[1].arrival_rate == pytest.approx(1.0)
    assert class3[0].mean_cost == pytest.approx(30.0)


def test_baseline_tracks_ewma():
    sim, detector = make_detector(ewma_alpha=0.5, shift_factor=100.0)
    drive(sim, detector, [10, 20])
    # baseline = 0.5*2.0 + 0.5*1.0 = 1.5 arrivals/sec
    assert detector.baseline_rate("class3") == pytest.approx(1.5)


def test_shift_fires_on_rate_jump():
    sim, detector = make_detector()
    events = []
    detector.add_shift_listener(events.append)
    drive(sim, detector, [10, 10, 30])  # 3x jump in bucket 3
    assert len(events) >= 1
    event = events[0]
    assert event.class_name == "class3"
    assert event.factor > 1.5


def test_shift_fires_on_rate_drop():
    sim, detector = make_detector()
    events = []
    detector.add_shift_listener(events.append)
    drive(sim, detector, [30, 30, 5])
    assert any(e.factor < 1.0 for e in events)


def test_no_shift_on_steady_rate():
    sim, detector = make_detector()
    events = []
    detector.add_shift_listener(events.append)
    drive(sim, detector, [10, 11, 10, 9, 10])
    assert events == []


def test_warmup_suppresses_early_shifts():
    sim, detector = make_detector(warmup_buckets=3)
    events = []
    detector.add_shift_listener(events.append)
    drive(sim, detector, [2, 30, 2])  # wild swings inside warmup
    assert events == []


def test_min_shift_gap_rate_limits():
    sim, detector = make_detector(min_shift_gap=100.0)
    events = []
    detector.add_shift_listener(events.append)
    drive(sim, detector, [10, 10, 40, 5, 40, 5])
    assert len(events) == 1


def test_unmanaged_class_ignored():
    sim, detector = make_detector()
    detector.observe(arrival(class_name="ghost"))
    detector.start()
    sim.run_until(10.0)
    assert all(h.arrivals == 0 for h in detector.history)


def test_double_start_rejected():
    sim, detector = make_detector()
    detector.start()
    with pytest.raises(ConfigurationError):
        detector.start()


def test_invalid_parameters():
    sim = Simulator()
    classes = paper_classes()
    with pytest.raises(ConfigurationError):
        WorkloadDetector(sim, classes, bucket_seconds=0.0)
    with pytest.raises(ConfigurationError):
        WorkloadDetector(sim, classes, ewma_alpha=0.0)
    with pytest.raises(ConfigurationError):
        WorkloadDetector(sim, classes, shift_factor=1.0)
    with pytest.raises(ConfigurationError):
        WorkloadDetector(sim, classes, warmup_buckets=0)
    with pytest.raises(ConfigurationError):
        WorkloadDetector(sim, classes, min_shift_gap=-1.0)


def test_shift_event_factor_guards_zero_baseline():
    up = ShiftEvent("c", 0.0, baseline_rate=0.0, observed_rate=5.0)
    assert up.factor == float("inf")
    flat = ShiftEvent("c", 0.0, baseline_rate=0.0, observed_rate=0.0)
    assert flat.factor == 1.0


class TestForecasting:
    def test_flat_rate_forecast(self):
        sim, detector = make_detector(shift_factor=100.0)
        drive(sim, detector, [10, 10, 10])
        forecast = detector.forecast_rate("class3", horizon=20.0)
        assert forecast == pytest.approx(1.0, abs=0.05)

    def test_rising_trend_extrapolated(self):
        sim, detector = make_detector(shift_factor=100.0)
        drive(sim, detector, [10, 20, 30])  # +1/sec per bucket of rate... linear
        forecast = detector.forecast_rate("class3", horizon=10.0)
        # rates were 1.0, 2.0, 3.0 at bucket starts 0,10,20; now=30;
        # trend = +0.1/sec^2 -> at t=40: 1.0 + 0.1*40 = 5.0
        assert forecast == pytest.approx(5.0, abs=0.3)

    def test_falling_trend_floored_at_zero(self):
        sim, detector = make_detector(shift_factor=100.0)
        drive(sim, detector, [30, 15, 2])
        forecast = detector.forecast_rate("class3", horizon=100.0)
        assert forecast == 0.0

    def test_insufficient_history_returns_none(self):
        sim, detector = make_detector()
        drive(sim, detector, [5])
        assert detector.forecast_rate("class3", horizon=10.0) is None

    def test_negative_horizon_rejected(self):
        sim, detector = make_detector()
        drive(sim, detector, [5, 5])
        with pytest.raises(ConfigurationError):
            detector.forecast_rate("class3", horizon=-1.0)
