"""Tests for the OLAP velocity and OLTP response-time models."""

import pytest

from repro.core.models import OLAPVelocityModel, OLTPResponseTimeModel
from repro.errors import ConfigurationError


class TestOLAPVelocityModel:
    def test_paper_equation(self):
        """V^k = V^{k-1} * C^k / C^{k-1} (Section 3.2)."""
        assert OLAPVelocityModel.predict(0.4, 10_000, 20_000) == pytest.approx(0.8)
        assert OLAPVelocityModel.predict(0.4, 10_000, 5_000) == pytest.approx(0.2)

    def test_capped_at_one(self):
        assert OLAPVelocityModel.predict(0.8, 10_000, 30_000) == 1.0

    def test_floor_at_zero(self):
        assert OLAPVelocityModel.predict(-0.5, 10_000, 10_000) == 0.0

    def test_unchanged_limit_predicts_same_velocity(self):
        assert OLAPVelocityModel.predict(0.55, 12_000, 12_000) == pytest.approx(0.55)

    def test_zero_previous_limit_guarded(self):
        # Must not divide by zero; a tiny previous limit saturates to 1.
        assert OLAPVelocityModel.predict(0.5, 0.0, 10_000) == 1.0

    def test_previous_velocity_above_one_clamped(self):
        assert OLAPVelocityModel.predict(1.7, 10_000, 10_000) == pytest.approx(1.0)


class TestOLTPResponseTimeModel:
    def test_paper_equation(self):
        """t^k = t^{k-1} + s (C^k - C^{k-1}) (Section 3.2)."""
        model = OLTPResponseTimeModel(prior_slope=-5e-6)
        # Raising the OLTP reservation by 10K lowers t by 0.05s.
        assert model.predict(0.30, 10_000, 20_000) == pytest.approx(0.25)
        assert model.predict(0.30, 10_000, 5_000) == pytest.approx(0.325)

    def test_initial_slope_equals_prior(self):
        model = OLTPResponseTimeModel(prior_slope=-3e-6)
        assert model.slope == pytest.approx(-3e-6)

    def test_prediction_floored_at_millisecond(self):
        model = OLTPResponseTimeModel(prior_slope=-5e-6)
        assert model.predict(0.01, 0.0, 1e9) == pytest.approx(1e-3)

    def test_positive_prior_rejected(self):
        with pytest.raises(ConfigurationError):
            OLTPResponseTimeModel(prior_slope=1e-6)

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            OLTPResponseTimeModel(prior_weight=0.0)
        with pytest.raises(ConfigurationError):
            OLTPResponseTimeModel(forgetting=0.0)
        with pytest.raises(ConfigurationError):
            OLTPResponseTimeModel(forgetting=1.5)

    def test_observations_move_slope(self):
        model = OLTPResponseTimeModel(prior_slope=-4e-6, prior_weight=2.0, forgetting=0.9)
        # Feed consistent observations implying a steeper slope (-8e-6).
        for _ in range(60):
            model.observe(1_000.0, -8e-3)
        assert model.slope < -6e-6
        assert model.observations == 60

    def test_slope_clamped_near_prior(self):
        model = OLTPResponseTimeModel(prior_slope=-4e-6, prior_weight=1.0, forgetting=0.5)
        # Observations implying a *positive* slope must not flip the sign.
        for _ in range(100):
            model.observe(1_000.0, +5e-3)
        assert model.slope < 0
        assert model.slope == pytest.approx(-4e-6 / 3.0)
        # And absurdly steep observations saturate at 3x the prior.
        steep = OLTPResponseTimeModel(prior_slope=-4e-6, prior_weight=1.0, forgetting=0.5)
        for _ in range(100):
            steep.observe(1_000.0, -1.0)
        assert steep.slope == pytest.approx(-4e-6 * 3.0)

    def test_tiny_deltas_ignored(self):
        model = OLTPResponseTimeModel(prior_slope=-4e-6)
        model.observe(0.5, 100.0)  # sub-timeron delta: no information
        assert model.observations == 0
        assert model.slope == pytest.approx(-4e-6)
