"""Tests for scheduling plans."""

import pytest

from repro.core.plan import SchedulingPlan
from repro.errors import SchedulingError


def test_limits_accessible():
    plan = SchedulingPlan({"a": 10_000.0, "b": 20_000.0}, 30_000.0)
    assert plan.limit("a") == 10_000.0
    assert plan.limit("b") == 20_000.0
    assert "a" in plan and "c" not in plan
    assert len(plan) == 2
    assert sorted(plan) == ["a", "b"]


def test_sum_invariant_enforced():
    """Section 2: the sum of class limits must not exceed the system limit."""
    with pytest.raises(SchedulingError):
        SchedulingPlan({"a": 20_000.0, "b": 20_000.0}, 30_000.0)


def test_sum_tolerates_float_dust():
    SchedulingPlan({"a": 10_000.0, "b": 20_000.0 + 1e-9}, 30_000.0)


def test_under_allocation_allowed_and_tracked():
    plan = SchedulingPlan({"a": 10_000.0}, 30_000.0)
    assert plan.total_allocated == 10_000.0
    assert plan.slack == 20_000.0


def test_negative_limit_rejected():
    with pytest.raises(SchedulingError):
        SchedulingPlan({"a": -1.0}, 30_000.0)


def test_empty_plan_rejected():
    with pytest.raises(SchedulingError):
        SchedulingPlan({}, 30_000.0)


def test_nonpositive_system_limit_rejected():
    with pytest.raises(SchedulingError):
        SchedulingPlan({"a": 1.0}, 0.0)


def test_unknown_class_lookup_raises():
    plan = SchedulingPlan({"a": 1.0}, 10.0)
    with pytest.raises(SchedulingError):
        plan.limit("zzz")


def test_replace_produces_new_valid_plan():
    plan = SchedulingPlan({"a": 10_000.0, "b": 10_000.0}, 30_000.0)
    updated = plan.replace(a=5_000.0)
    assert updated.limit("a") == 5_000.0
    assert updated.limit("b") == 10_000.0
    assert plan.limit("a") == 10_000.0  # original untouched


def test_replace_validates_sum():
    plan = SchedulingPlan({"a": 10_000.0, "b": 10_000.0}, 30_000.0)
    with pytest.raises(SchedulingError):
        plan.replace(a=25_000.0)


def test_replace_unknown_class_rejected():
    plan = SchedulingPlan({"a": 1.0}, 10.0)
    with pytest.raises(SchedulingError):
        plan.replace(z=1.0)


def test_even_split():
    plan = SchedulingPlan.even_split(["a", "b", "c"], 30_000.0)
    assert plan.limit("a") == pytest.approx(10_000.0)
    assert plan.total_allocated == pytest.approx(30_000.0)


def test_even_split_empty_rejected():
    with pytest.raises(SchedulingError):
        SchedulingPlan.even_split([], 30_000.0)


def test_equality_and_as_dict():
    a = SchedulingPlan({"x": 1.0}, 10.0)
    b = SchedulingPlan({"x": 1.0}, 10.0)
    c = SchedulingPlan({"x": 2.0}, 10.0)
    assert a == b
    assert a != c
    d = a.as_dict()
    d["x"] = 99.0
    assert a.limit("x") == 1.0  # as_dict returns a copy
