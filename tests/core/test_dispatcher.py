"""Tests for the Dispatcher's cost-limit release semantics."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.core.dispatcher import Dispatcher
from repro.core.plan import SchedulingPlan
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, Phase, Query, QueryState
from repro.errors import SchedulingError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_world(limits=None):
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(
            interception_latency=0.0, release_latency=0.0, overhead_cpu_demand=0.0
        )
    )
    engine = DatabaseEngine(sim, config, RandomStreams(9))
    patroller = QueryPatroller(sim, engine, config.patroller)
    classes = list(paper_classes())
    for c in classes:
        if c.directly_controlled:
            patroller.enable_for_class(c.name)
    plan = SchedulingPlan(
        limits or {"class1": 10_000.0, "class2": 10_000.0, "class3": 10_000.0},
        30_000.0,
    )
    dispatcher = Dispatcher(patroller, engine, classes, plan)
    # Route interceptions straight into the dispatcher for these tests.
    patroller.set_release_handler(dispatcher.enqueue)
    return sim, engine, patroller, dispatcher


_next_id = [100]


def make_query(cost, class_name="class1", demand=5.0):
    _next_id[0] += 1
    return Query(
        query_id=_next_id[0],
        class_name=class_name,
        client_id="c",
        template="t",
        kind="olap",
        phases=(Phase(CPU, demand),),
        true_cost=cost,
        estimated_cost=cost,
    )


def test_release_within_limit():
    sim, engine, patroller, dispatcher = make_world()
    patroller.submit(make_query(4_000.0))
    patroller.submit(make_query(4_000.0))
    sim.run_until(0.1)
    assert dispatcher.in_flight_count("class1") == 2
    assert dispatcher.in_flight_cost("class1") == pytest.approx(8_000.0)
    assert dispatcher.queue_length("class1") == 0


def test_queueing_past_limit():
    sim, engine, patroller, dispatcher = make_world()
    for _ in range(4):
        patroller.submit(make_query(4_000.0))
    sim.run_until(0.1)
    # 2 x 4000 fit under 10000; the 3rd would exceed.
    assert dispatcher.in_flight_count("class1") == 2
    assert dispatcher.queue_length("class1") == 2


def test_completion_frees_budget_fifo():
    sim, engine, patroller, dispatcher = make_world()
    for i in range(3):
        patroller.submit(make_query(6_000.0, demand=float(i + 1)))
    sim.run()
    assert dispatcher.released_count("class1") == 3
    assert dispatcher.in_flight_count("class1") == 0


def test_classes_isolated():
    sim, engine, patroller, dispatcher = make_world()
    patroller.submit(make_query(9_000.0, class_name="class1"))
    patroller.submit(make_query(9_000.0, class_name="class2"))
    patroller.submit(make_query(9_000.0, class_name="class2"))
    sim.run_until(0.1)
    assert dispatcher.in_flight_count("class1") == 1
    assert dispatcher.in_flight_count("class2") == 1
    assert dispatcher.queue_length("class2") == 1


def test_starvation_guard_releases_oversized_query_alone():
    sim, engine, patroller, dispatcher = make_world()
    patroller.submit(make_query(50_000.0))  # above the whole class limit
    sim.run_until(0.1)
    assert dispatcher.in_flight_count("class1") == 1


def test_oversized_query_waits_while_class_busy():
    sim, engine, patroller, dispatcher = make_world()
    patroller.submit(make_query(8_000.0, demand=3.0))
    patroller.submit(make_query(50_000.0, demand=3.0))
    sim.run_until(0.1)
    assert dispatcher.in_flight_count("class1") == 1
    assert dispatcher.queue_length("class1") == 1
    sim.run()
    assert dispatcher.released_count("class1") == 2


def test_install_plan_with_higher_limit_releases_queued():
    sim, engine, patroller, dispatcher = make_world()
    for _ in range(4):
        patroller.submit(make_query(4_000.0, demand=50.0))
    sim.run_until(0.1)
    assert dispatcher.queue_length("class1") == 2
    released = dispatcher.install_plan(
        SchedulingPlan({"class1": 20_000.0, "class2": 5_000.0, "class3": 5_000.0}, 30_000.0)
    )
    assert released == 2
    assert dispatcher.in_flight_count("class1") == 4


def test_lowered_limit_never_revokes_in_flight():
    sim, engine, patroller, dispatcher = make_world()
    patroller.submit(make_query(8_000.0, demand=50.0))
    sim.run_until(0.1)
    dispatcher.install_plan(
        SchedulingPlan({"class1": 1_000.0, "class2": 1_000.0, "class3": 1_000.0}, 30_000.0)
    )
    assert dispatcher.in_flight_count("class1") == 1  # still running
    patroller.submit(make_query(500.0))
    sim.run_until(0.2)
    # New query blocked: 8000 in flight > 1000 limit.
    assert dispatcher.queue_length("class1") == 1


def test_enqueue_indirect_class_rejected():
    sim, engine, patroller, dispatcher = make_world()
    query = make_query(100.0, class_name="class3")
    with pytest.raises(SchedulingError):
        dispatcher.enqueue(query)


def test_unknown_class_rejected():
    sim, engine, patroller, dispatcher = make_world()
    with pytest.raises(SchedulingError):
        dispatcher.queue_length("ghost")
    with pytest.raises(SchedulingError):
        dispatcher.install_plan(SchedulingPlan({"ghost": 1.0}, 30_000.0))


def test_foreign_completions_ignored():
    """Completions of queries this dispatcher never released must not
    corrupt the in-flight accounting."""
    sim, engine, patroller, dispatcher = make_world()
    foreign = make_query(1_000.0, class_name="class1", demand=0.5)
    foreign.submit_time = sim.now
    engine.execute(foreign)  # bypasses the dispatcher entirely
    sim.run()
    assert dispatcher.in_flight_count("class1") == 0
    assert dispatcher.in_flight_cost("class1") == 0.0


class TestQueueDisciplines:
    def _world(self, discipline):
        sim = Simulator()
        config = default_config(
            patroller=PatrollerConfig(
                interception_latency=0.0, release_latency=0.0,
                overhead_cpu_demand=0.0,
            )
        )
        engine = DatabaseEngine(sim, config, RandomStreams(9))
        patroller = QueryPatroller(sim, engine, config.patroller)
        classes = list(paper_classes())
        for c in classes:
            if c.directly_controlled:
                patroller.enable_for_class(c.name)
        plan = SchedulingPlan(
            {"class1": 5_000.0, "class2": 1_000.0, "class3": 1_000.0}, 30_000.0
        )
        dispatcher = Dispatcher(patroller, engine, classes, plan,
                                discipline=discipline)
        patroller.set_release_handler(dispatcher.enqueue)
        return sim, engine, patroller, dispatcher

    def test_unknown_discipline_rejected(self):
        with pytest.raises(SchedulingError):
            self._world("lottery")

    def test_sjf_releases_cheapest_first(self):
        sim, engine, patroller, dispatcher = self._world("sjf")
        order = []
        original = patroller.release
        patroller.release = lambda q: (order.append(q.estimated_cost), original(q))
        # A blocker occupies the class; the rest queue.
        patroller.submit(make_query(4_900.0, demand=2.0))
        patroller.submit(make_query(3_000.0, demand=0.5))
        patroller.submit(make_query(1_000.0, demand=0.5))
        patroller.submit(make_query(2_000.0, demand=0.5))
        sim.run()
        assert order[0] == 4_900.0
        assert order[1:] == [1_000.0, 2_000.0, 3_000.0]

    def test_fifo_preserves_arrival_order(self):
        sim, engine, patroller, dispatcher = self._world("fifo")
        order = []
        original = patroller.release
        patroller.release = lambda q: (order.append(q.estimated_cost), original(q))
        patroller.submit(make_query(4_900.0, demand=2.0))
        patroller.submit(make_query(3_000.0, demand=0.5))
        patroller.submit(make_query(1_000.0, demand=0.5))
        sim.run()
        assert order == [4_900.0, 3_000.0, 1_000.0]

    def test_aging_lets_old_monster_pass_young_mice(self):
        sim, engine, patroller, dispatcher = self._world("aging")
        order = []
        original = patroller.release
        patroller.release = lambda q: (order.append(q.template), original(q))
        blocker = make_query(4_900.0, demand=50.0)
        blocker.template = "blocker"
        patroller.submit(blocker)
        old_big = make_query(3_000.0, demand=0.5)
        old_big.template = "old_big"
        patroller.submit(old_big)
        sim.run_until(45.0)

        def submit_young():
            young = make_query(1_000.0, demand=0.5)
            young.template = "young_small"
            patroller.submit(young)

        sim.schedule(0.1, submit_young)
        sim.run()
        # When the blocker finishes (t~50) old_big has waited ~45s longer
        # than young: aged costs 3000-50*50=500 vs 1000-50*5=750, so the
        # old monster goes first.  Under SJF it would starve behind every
        # young mouse.
        assert order[0] == "blocker"
        assert order[1] == "old_big"

    def test_aging_scans_past_unfitting_head(self):
        """Regression: when the min-aged-cost query does not fit, the aging
        discipline must try the remaining candidates instead of stalling the
        whole class behind it (head-of-line blocking)."""
        sim, engine, patroller, dispatcher = self._world("aging")
        order = []
        original = patroller.release
        patroller.release = lambda q: (order.append(q.template), original(q))
        blocker = make_query(4_000.0, demand=200.0)  # runs past the test
        blocker.template = "blocker"
        patroller.submit(blocker)
        old_big = make_query(3_000.0, demand=0.5)  # 4000+3000 > 5000: no fit
        old_big.template = "old_big"
        patroller.submit(old_big)
        sim.run_until(45.0)
        young = make_query(800.0, demand=0.5)  # 4000+800 <= 5000: fits
        young.template = "young_small"
        patroller.submit(young)
        sim.run_until(46.0)
        # old_big's aged cost (3000 - 50*45 = 750) beats young's (800), so
        # it is selected first — but it cannot fit while the blocker runs.
        # Pre-fix, the release loop broke there and young never released.
        assert order == ["blocker", "young_small"]
        assert dispatcher.queue_length("class1") == 1

    def test_fifo_head_of_line_still_blocks(self):
        """FIFO semantics unchanged: a later query that would fit must not
        jump an unfitting head-of-line query."""
        sim, engine, patroller, dispatcher = self._world("fifo")
        patroller.submit(make_query(4_000.0, demand=200.0))
        patroller.submit(make_query(3_000.0, demand=0.5))
        patroller.submit(make_query(800.0, demand=0.5))
        sim.run_until(1.0)
        assert dispatcher.in_flight_count("class1") == 1
        assert dispatcher.queue_length("class1") == 2


class TestQueueCancellationAccounting:
    def test_cancelled_queued_query_counts(self):
        sim, engine, patroller, dispatcher = make_world()
        patroller.submit(make_query(9_000.0, demand=100.0))
        victim = make_query(5_000.0)
        patroller.submit(victim)
        sim.run_until(0.1)
        assert dispatcher.queue_length("class1") == 1
        assert patroller.cancel(victim)
        assert dispatcher.queue_length("class1") == 0
        assert dispatcher.queue_cancelled_count("class1") == 1
        # A queue-level cancel never consumed in-flight budget, so it must
        # not count as a post-release cancellation.
        assert dispatcher.cancelled_count("class1") == 0
        assert dispatcher.enqueued_count("class1") == (
            dispatcher.queue_length("class1")
            + dispatcher.queue_cancelled_count("class1")
            + dispatcher.released_count("class1")
        )

    def test_lazy_purge_counts_unwired_cancellations(self):
        """Tombstones purged at release time (a cancellation path that never
        fired the listener) must be counted too, not silently dropped."""
        sim, engine, patroller, dispatcher = make_world()
        patroller.submit(make_query(9_000.0, demand=100.0))
        victim = make_query(5_000.0)
        patroller.submit(victim)
        sim.run_until(0.1)
        victim.state = QueryState.CANCELLED  # no listener notification
        dispatcher.install_plan(
            SchedulingPlan(
                {"class1": 10_000.0, "class2": 10_000.0, "class3": 10_000.0},
                30_000.0,
            )
        )
        assert dispatcher.queue_length("class1") == 0
        assert dispatcher.queue_cancelled_count("class1") == 1

    def test_enqueued_count_tracks_every_enqueue(self):
        sim, engine, patroller, dispatcher = make_world()
        for _ in range(4):
            patroller.submit(make_query(4_000.0, demand=50.0))
        sim.run_until(0.1)
        assert dispatcher.enqueued_count("class1") == 4
        assert dispatcher.enqueued_count("class2") == 0
