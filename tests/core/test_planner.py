"""Tests for the Scheduling Planner control loop."""

import pytest

from repro.config import (
    MonitorConfig,
    PatrollerConfig,
    PlannerConfig,
    default_config,
)
from repro.core.dispatcher import Dispatcher
from repro.core.models import OLTPResponseTimeModel
from repro.core.monitor import Monitor
from repro.core.plan import SchedulingPlan
from repro.core.planner import SchedulingPlanner
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    paper_classes,
)
from repro.core.solver import PerformanceSolver
from repro.core.utility import PiecewiseLinearUtility
from repro.dbms.engine import DatabaseEngine
from repro.errors import SchedulingError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_planner(online_regression=False, classes=None):
    sim = Simulator()
    planner_config = PlannerConfig(
        control_interval=10.0, online_regression=online_regression
    )
    config = default_config(
        planner=planner_config,
        monitor=MonitorConfig(snapshot_interval=2.0),
        patroller=PatrollerConfig(
            interception_latency=0.0, release_latency=0.0, overhead_cpu_demand=0.0
        ),
    )
    engine = DatabaseEngine(sim, config, RandomStreams(13))
    patroller = QueryPatroller(sim, engine, config.patroller)
    classes = list(classes if classes is not None else paper_classes())
    for c in classes:
        if c.directly_controlled:
            patroller.enable_for_class(c.name)
    plan = SchedulingPlan.even_split([c.name for c in classes], 30_000.0)
    dispatcher = Dispatcher(patroller, engine, classes, plan)
    patroller.set_release_handler(dispatcher.enqueue)
    monitor = Monitor(sim, engine, classes, config.monitor)
    solver = PerformanceSolver(
        utility=PiecewiseLinearUtility(),
        oltp_model=OLTPResponseTimeModel(prior_slope=-4.2e-6),
        system_cost_limit=30_000.0,
    )
    planner = SchedulingPlanner(sim, monitor, dispatcher, solver, classes, planner_config)
    return sim, engine, monitor, dispatcher, planner


def test_start_schedules_recurring_intervals():
    sim, engine, monitor, dispatcher, planner = make_planner()
    planner.start()
    sim.run_until(35.0)
    assert planner.intervals_run == 3
    assert len(planner.history) == 3


def test_double_start_rejected():
    sim, engine, monitor, dispatcher, planner = make_planner()
    planner.start()
    with pytest.raises(SchedulingError):
        planner.start()


def test_run_interval_installs_plan_on_dispatcher():
    sim, engine, monitor, dispatcher, planner = make_planner()
    record = planner.run_interval()
    assert dispatcher.plan is record.plan
    assert record.plan.total_allocated <= 30_000.0 + 1e-6


def test_plan_listener_invoked():
    sim, engine, monitor, dispatcher, planner = make_planner()
    records = []
    planner.add_plan_listener(records.append)
    planner.run_interval()
    planner.run_interval()
    assert len(records) == 2
    assert records[0].plan is planner.history[0].plan


def test_no_measurements_yields_stable_plan():
    """With every class assumed at goal, consecutive plans agree."""
    sim, engine, monitor, dispatcher, planner = make_planner()
    first = planner.run_interval().plan
    second = planner.run_interval().plan
    assert first == second


def test_two_oltp_classes_rejected():
    oltp_a = ServiceClass("a", "oltp", ResponseTimeGoal(0.2), 1)
    oltp_b = ServiceClass("b", "oltp", ResponseTimeGoal(0.3), 2)
    with pytest.raises(SchedulingError):
        make_planner(classes=[oltp_a, oltp_b])


def test_offline_mode_never_feeds_regression():
    sim, engine, monitor, dispatcher, planner = make_planner(online_regression=False)
    # Fabricate OLTP measurements so regression *could* run.
    from repro.core.monitor import ClassMeasurement

    for i in range(4):
        monitor._last_measurement["class3"] = ClassMeasurement(
            "class3", "response_time", 0.3 + 0.01 * i, 5, float(i)
        )
        planner.run_interval()
    assert planner.oltp_model.observations == 0


def test_online_mode_feeds_regression_after_two_intervals():
    sim, engine, monitor, dispatcher, planner = make_planner(online_regression=True)
    from repro.core.monitor import ClassMeasurement

    # Alternate violating / meeting so the planned OLTP limit moves.
    values = [0.40, 0.15, 0.40, 0.15, 0.40]
    fed = 0
    for i, value in enumerate(values):
        monitor._last_measurement["class3"] = ClassMeasurement(
            "class3", "response_time", value, 5, float(i)
        )
        planner.run_interval()
    assert planner.oltp_model.observations > 0
