"""Tests for direct in-engine control (the future-work extension)."""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.direct import DirectScheduler, EngineGate
from repro.core.plan import SchedulingPlan
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
    paper_classes,
)
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, Phase, Query
from repro.errors import SchedulingError
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_engine():
    sim = Simulator()
    engine = DatabaseEngine(sim, default_config(), RandomStreams(41))
    return sim, engine


_qid = [20000]


def make_query(class_name="class1", cost=1_000.0, demand=2.0, kind="olap"):
    _qid[0] += 1
    query = Query(
        query_id=_qid[0],
        class_name=class_name,
        client_id="c{}".format(_qid[0]),
        template="t",
        kind=kind,
        phases=(Phase(CPU, demand),),
        true_cost=cost,
        estimated_cost=cost,
    )
    query.submit_time = 0.0
    return query


def make_gate(limits=None):
    sim, engine = make_engine()
    plan = SchedulingPlan(
        limits or {"class1": 2_000.0, "class2": 2_000.0, "class3": 2_000.0},
        30_000.0,
    )
    gate = EngineGate(engine, list(paper_classes()), plan)
    return sim, engine, gate


class TestEngineGate:
    def test_admits_within_limit(self):
        sim, engine, gate = make_gate()
        engine.execute(make_query(cost=1_500.0))
        sim.run_until(0.1)
        assert engine.executing_queries == 1
        assert gate.in_flight_cost("class1") == pytest.approx(1_500.0)

    def test_queues_past_limit_and_drains_on_completion(self):
        sim, engine, gate = make_gate()
        for _ in range(3):
            engine.execute(make_query(cost=1_500.0, demand=1.0))
        sim.run_until(0.1)
        assert engine.executing_queries == 1
        assert gate.queue_length("class1") == 2
        sim.run_until(10.0)
        assert gate.released_count("class1") == 3
        assert gate.queue_length("class1") == 0

    def test_gates_oltp_too(self):
        """The whole point of in-engine control: OLTP is controllable."""
        sim, engine, gate = make_gate(
            {"class1": 2_000.0, "class2": 2_000.0, "class3": 50.0}
        )
        for _ in range(4):
            engine.execute(make_query(class_name="class3", cost=40.0,
                                      demand=0.02, kind="oltp"))
        sim.run_until(0.001)
        assert engine.executing_queries == 1
        assert gate.queue_length("class3") == 3

    def test_gating_adds_no_overhead(self):
        """Admitted statements run at bare speed: zero added latency."""
        sim, engine, gate = make_gate()
        query = make_query(cost=100.0, demand=1.0)
        engine.execute(query)
        sim.run_until(5.0)
        assert query.finish_time == pytest.approx(1.0)
        assert query.velocity == pytest.approx(1.0)

    def test_held_statement_velocity_reflects_gate_wait(self):
        sim, engine, gate = make_gate()
        blocker = make_query(cost=2_000.0, demand=1.0)
        held = make_query(cost=2_000.0, demand=1.0)
        engine.execute(blocker)
        engine.execute(held)
        sim.run_until(5.0)
        # held waited ~1s (blocker's runtime) then ran ~1s.
        assert held.velocity == pytest.approx(0.5, abs=0.1)

    def test_unmanaged_class_passes_through(self):
        sim, engine, gate = make_gate()
        stray = make_query(class_name="ghost", cost=1e9)
        engine.execute(stray)
        sim.run_until(0.1)
        assert engine.executing_queries == 1

    def test_starvation_guard(self):
        sim, engine, gate = make_gate()
        monster = make_query(cost=1e6, demand=0.5)
        engine.execute(monster)
        sim.run_until(0.1)
        assert engine.executing_queries == 1  # alone, despite the limit

    def test_install_plan_drains_queues(self):
        sim, engine, gate = make_gate()
        for _ in range(3):
            engine.execute(make_query(cost=1_500.0, demand=10.0))
        sim.run_until(0.1)
        assert gate.queue_length("class1") == 2
        admitted = gate.install_plan(
            SchedulingPlan({"class1": 10_000.0, "class2": 1_000.0, "class3": 1_000.0},
                           30_000.0)
        )
        assert admitted == 2
        assert engine.executing_queries == 3

    def test_unknown_plan_class_rejected(self):
        sim, engine, gate = make_gate()
        with pytest.raises(SchedulingError):
            gate.install_plan(SchedulingPlan({"ghost": 1.0}, 30_000.0))


class TestDirectScheduler:
    def _scheduler(self):
        sim, engine = make_engine()
        config = default_config(
            planner=PlannerConfig(control_interval=10.0),
            monitor=MonitorConfig(snapshot_interval=5.0),
            scale=WorkloadScaleConfig(period_seconds=30.0, num_periods=2),
        )
        scheduler = DirectScheduler(sim, engine, list(paper_classes()), config)
        return sim, engine, scheduler

    def test_start_runs_intervals(self):
        sim, engine, scheduler = self._scheduler()
        scheduler.start()
        sim.run_until(35.0)
        assert scheduler.intervals_run == 3
        assert len(scheduler.plans) == 3

    def test_double_start_rejected(self):
        sim, engine, scheduler = self._scheduler()
        scheduler.start()
        with pytest.raises(SchedulingError):
            scheduler.start()

    def test_measurement_from_completions(self):
        sim, engine, scheduler = self._scheduler()
        query = make_query(class_name="class3", cost=40.0, demand=0.2, kind="oltp")
        engine.execute(query)
        sim.run_until(1.0)
        assert scheduler.measure("class3") == pytest.approx(0.2, abs=0.02)
        assert scheduler.measure("class1") is None

    def test_replan_moves_limits_toward_violator(self):
        sim, engine, scheduler = self._scheduler()
        # A slow OLTP completion signals a violated goal.
        slow = make_query(class_name="class3", cost=40.0, demand=1.0, kind="oltp")
        engine.execute(slow)
        sim.run_until(2.0)
        before = scheduler.plan.limit("class3")
        scheduler.run_interval()
        assert scheduler.plan.limit("class3") > before

    def test_requires_classes(self):
        sim, engine = make_engine()
        with pytest.raises(SchedulingError):
            DirectScheduler(sim, engine, [], default_config())

    def test_describe(self):
        sim, engine, scheduler = self._scheduler()
        assert "in-engine" in scheduler.describe()
