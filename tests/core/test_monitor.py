"""Tests for the Monitor's measurement paths."""

import pytest

from repro.config import MonitorConfig, PatrollerConfig, default_config
from repro.core.monitor import Monitor
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, IO, Phase, Query
from repro.errors import SchedulingError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_world(snapshot_interval=5.0, velocity_window=60.0, rt_window=30.0,
               max_measurement_age=300.0):
    sim = Simulator()
    config = default_config(
        monitor=MonitorConfig(
            snapshot_interval=snapshot_interval,
            velocity_window=velocity_window,
            response_time_window=rt_window,
            max_measurement_age=max_measurement_age,
        ),
        patroller=PatrollerConfig(
            interception_latency=0.0, release_latency=0.0, overhead_cpu_demand=0.0
        ),
    )
    engine = DatabaseEngine(sim, config, RandomStreams(11))
    patroller = QueryPatroller(sim, engine, config.patroller)
    classes = list(paper_classes())
    monitor = Monitor(sim, engine, classes, config.monitor)
    return sim, engine, patroller, monitor


_qid = [0]


def make_query(class_name="class1", kind="olap", demand=1.0):
    _qid[0] += 1
    return Query(
        query_id=_qid[0],
        class_name=class_name,
        client_id="client-{}".format(_qid[0]),
        template="t",
        kind=kind,
        phases=(Phase(CPU, demand / 2), Phase(IO, demand / 2)),
        true_cost=100.0,
        estimated_cost=100.0,
    )


def run_query_with_wait(sim, engine, monitor, wait, demand=10.0):
    """Submit at now, hold for `wait`, execute; returns the query."""
    query = make_query(demand=demand)
    query.submit_time = sim.now
    monitor._open[query.query_id] = query  # as on_intercepted would
    sim.schedule(wait, lambda: (setattr(query, "release_time", sim.now),
                                engine.execute(query)))
    return query


class TestVelocityMeasurement:
    def test_completed_queries_define_velocity(self):
        sim, engine, patroller, monitor = make_world()
        query = run_query_with_wait(sim, engine, monitor, wait=10.0, demand=10.0)
        sim.run()
        measurement = monitor.measure("class1")
        assert measurement is not None
        assert measurement.metric == "velocity"
        # 10s execution / 20s response.
        assert measurement.value == pytest.approx(0.5, abs=0.05)

    def test_no_data_returns_none(self):
        sim, engine, patroller, monitor = make_world()
        assert monitor.measure("class1") is None

    def test_in_flight_blend_sees_queue_pressure(self):
        sim, engine, patroller, monitor = make_world()
        # A query stuck in queue for 30s with no execution at all.
        query = make_query()
        query.submit_time = 0.0
        monitor._open[query.query_id] = query
        sim.run_until(30.0)
        measurement = monitor.measure("class1")
        assert measurement is not None
        assert measurement.value == pytest.approx(0.0, abs=0.01)

    def test_young_in_flight_queries_excluded(self):
        sim, engine, patroller, monitor = make_world()
        query = make_query()
        query.submit_time = 0.0
        monitor._open[query.query_id] = query
        sim.run_until(1.0)  # younger than MIN_IN_FLIGHT_AGE
        assert monitor.measure("class1") is None

    def test_old_completions_age_out_but_last_measurement_kept(self):
        sim, engine, patroller, monitor = make_world(velocity_window=20.0)
        run_query_with_wait(sim, engine, monitor, wait=5.0, demand=5.0)
        sim.run()
        first = monitor.measure("class1")
        assert first is not None
        sim.run_until(sim.now + 100.0)
        # Window empty now; measure() returns the retained last measurement.
        second = monitor.measure("class1")
        assert second is not None
        assert second.measured_at == first.measured_at

    def test_retained_measurement_expires_past_max_age(self):
        """Regression: the last-measurement fallback must not feed the
        solver an arbitrarily stale value forever."""
        sim, engine, patroller, monitor = make_world(
            velocity_window=20.0, max_measurement_age=60.0
        )
        run_query_with_wait(sim, engine, monitor, wait=5.0, demand=5.0)
        sim.run()
        first = monitor.measure("class1")
        assert first is not None
        sim.run_until(sim.now + 30.0)
        assert monitor.measure("class1") is not None  # still fresh enough
        sim.run_until(sim.now + 100.0)  # now older than max_measurement_age
        assert monitor.measure("class1") is None
        # The expired entry is dropped outright, not merely masked.
        assert monitor.retained_measurement("class1") is None

    def test_retained_measurement_is_a_pure_read(self):
        sim, engine, patroller, monitor = make_world(velocity_window=20.0)
        assert monitor.retained_measurement("class1") is None
        run_query_with_wait(sim, engine, monitor, wait=5.0, demand=5.0)
        sim.run()
        first = monitor.measure("class1")
        assert monitor.retained_measurement("class1") == first
        with pytest.raises(SchedulingError):
            monitor.retained_measurement("ghost")

    def test_nonpositive_max_measurement_age_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MonitorConfig(max_measurement_age=0.0).validate()


class TestResponseTimeMeasurement:
    def test_snapshot_sampling_averages_clients(self):
        sim, engine, patroller, monitor = make_world(snapshot_interval=5.0)
        monitor.start()
        for demand in (0.2, 0.4):
            query = make_query(class_name="class3", kind="oltp", demand=demand)
            query.submit_time = 0.0
            query.release_time = 0.0
            engine.execute(query)
        sim.run_until(20.0)
        measurement = monitor.measure("class3")
        assert measurement is not None
        assert measurement.metric == "response_time"
        assert measurement.value == pytest.approx(0.3, abs=0.05)
        assert monitor.snapshots_taken == 4

    def test_no_snapshots_before_start(self):
        sim, engine, patroller, monitor = make_world()
        query = make_query(class_name="class3", kind="oltp", demand=0.2)
        query.submit_time = 0.0
        engine.execute(query)
        sim.run_until(20.0)
        assert monitor.snapshots_taken == 0
        assert monitor.measure("class3") is None

    def test_double_start_rejected(self):
        sim, engine, patroller, monitor = make_world()
        monitor.start()
        with pytest.raises(SchedulingError):
            monitor.start()


class TestWiring:
    def test_on_intercepted_forwards(self):
        sim, engine, patroller, monitor = make_world()
        seen = []
        monitor.set_forward(seen.append)
        query = make_query()
        monitor.on_intercepted(query)
        assert seen == [query]
        assert monitor.open_queries == 1

    def test_on_intercepted_without_forward_raises(self):
        sim, engine, patroller, monitor = make_world()
        with pytest.raises(SchedulingError):
            monitor.on_intercepted(make_query())

    def test_unknown_class_rejected(self):
        sim, engine, patroller, monitor = make_world()
        with pytest.raises(SchedulingError):
            monitor.measure("ghost")

    def test_completion_clears_open_set(self):
        sim, engine, patroller, monitor = make_world()
        query = run_query_with_wait(sim, engine, monitor, wait=1.0, demand=1.0)
        sim.run()
        assert monitor.open_queries == 0

    def test_measure_all_covers_measured_classes(self):
        sim, engine, patroller, monitor = make_world()
        run_query_with_wait(sim, engine, monitor, wait=2.0, demand=2.0)
        sim.run()
        results = monitor.measure_all()
        assert "class1" in results
        assert "class3" not in results  # nothing measured for it yet


class TestCancellationPurge:
    """Regression: cancelled queries must leave the open-query table even
    when velocity is never measured (e.g. an OLTP-only deployment)."""

    def test_on_cancelled_purges_open_query(self):
        sim, engine, patroller, monitor = make_world()
        monitor.set_forward(lambda q: None)
        query = make_query()
        monitor.on_intercepted(query)
        assert monitor.open_queries == 1
        monitor.on_cancelled(query)
        assert monitor.open_queries == 0

    def test_open_set_stays_bounded_without_velocity_measurement(self):
        """Feed many queries and cancel them all, never calling measure():
        pre-fix, _open only shrank inside _measure_velocity, so a
        deployment with no OLAP class grew without bound."""
        from repro.core.service_class import (
            ResponseTimeGoal,
            ServiceClass,
        )

        sim = Simulator()
        config = default_config()
        engine = DatabaseEngine(sim, config, RandomStreams(12))
        oltp_only = [
            ServiceClass("class3", "oltp", ResponseTimeGoal(0.25), 3)
        ]
        monitor = Monitor(sim, engine, oltp_only, config.monitor)
        monitor.set_forward(lambda q: None)
        for _ in range(100):
            query = make_query(class_name="class3", kind="oltp")
            monitor.on_intercepted(query)
            monitor.on_cancelled(query)
        assert monitor.open_queries == 0

    def test_on_cancelled_unknown_query_is_noop(self):
        sim, engine, patroller, monitor = make_world()
        monitor.on_cancelled(make_query())  # never intercepted
        assert monitor.open_queries == 0
