"""Tests for the Performance Solver."""

import pytest

from repro.core.models import OLTPResponseTimeModel
from repro.core.plan import SchedulingPlan
from repro.core.service_class import (
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.core.solver import ClassStatus, PerformanceSolver, _compositions
from repro.core.utility import PiecewiseLinearUtility
from repro.errors import SchedulingError


def make_solver(system=30_000.0, grid=1_000.0, minimum=1_000.0, margin=1.0):
    return PerformanceSolver(
        utility=PiecewiseLinearUtility(),
        oltp_model=OLTPResponseTimeModel(prior_slope=-4.2e-6),
        system_cost_limit=system,
        grid_timerons=grid,
        min_class_limit=minimum,
        oltp_target_margin=margin,
    )


def olap(name, goal, importance):
    return ServiceClass(name, "olap", VelocityGoal(goal), importance)


def oltp(name, goal, importance):
    return ServiceClass(name, "oltp", ResponseTimeGoal(goal), importance)


def paper_statuses(v1=0.4, v2=0.6, t3=0.25, c1=10_000, c2=10_000, c3=10_000):
    return [
        ClassStatus(olap("class1", 0.4, 1), c1, v1),
        ClassStatus(olap("class2", 0.6, 2), c2, v2),
        ClassStatus(oltp("class3", 0.25, 3), c3, t3),
    ]


class TestCompositions:
    def test_enumerates_simplex(self):
        combos = list(_compositions(3, 2))
        assert sorted(combos) == [(0, 3), (1, 2), (2, 1), (3, 0)]

    def test_count_matches_stars_and_bars(self):
        # C(n + k - 1, k - 1) with n=5, k=3 -> C(7,2) = 21
        assert len(list(_compositions(5, 3))) == 21

    def test_single_part(self):
        assert list(_compositions(4, 1)) == [(4,)]


class TestSolve:
    def test_plan_respects_system_limit_and_minimums(self):
        solver = make_solver()
        plan = solver.solve(paper_statuses())
        assert plan.total_allocated <= 30_000.0 + 1e-6
        for name in plan:
            assert plan.limit(name) >= 1_000.0

    def test_spends_whole_budget(self):
        solver = make_solver()
        plan = solver.solve(paper_statuses())
        assert plan.total_allocated == pytest.approx(30_000.0)

    def test_violating_oltp_class_gains_resources(self):
        solver = make_solver()
        balanced = solver.solve(paper_statuses(t3=0.25))
        violating = solver.solve(paper_statuses(t3=0.40))
        assert violating.limit("class3") > balanced.limit("class3")

    def test_satisfied_oltp_class_stripped_to_need(self):
        """Figure 7: a class meeting its goal gets few resources."""
        solver = make_solver()
        plan = solver.solve(paper_statuses(t3=0.10, v1=0.2, v2=0.3))
        # class3 comfortably meets its goal; OLAP classes are starving.
        assert plan.limit("class3") < 10_000.0

    def test_importance_orders_violation_repair(self):
        """Two equally violating OLAP classes: the important one gets more."""
        solver = make_solver()
        statuses = [
            ClassStatus(olap("lo", 0.6, 1), 10_000, 0.3),
            ClassStatus(olap("hi", 0.6, 2), 10_000, 0.3),
            ClassStatus(oltp("class3", 0.25, 3), 10_000, 0.10),
        ]
        plan = solver.solve(statuses)
        assert plan.limit("hi") > plan.limit("lo")

    def test_missing_measurement_assumes_goal(self):
        status = ClassStatus(olap("c", 0.5, 1), 10_000, None)
        assert status.current_value == 0.5

    def test_oltp_margin_targets_below_goal(self):
        tight = make_solver(margin=0.9)
        loose = make_solver(margin=1.0)
        # Sitting exactly at goal: the margined solver still sees a
        # violation and reserves more for the OLTP class.
        tight_plan = tight.solve(paper_statuses(t3=0.25, v1=0.5, v2=0.7))
        loose_plan = loose.solve(paper_statuses(t3=0.25, v1=0.5, v2=0.7))
        assert tight_plan.limit("class3") >= loose_plan.limit("class3")

    def test_created_at_stamped(self):
        solver = make_solver()
        plan = solver.solve(paper_statuses(), now=123.0)
        assert plan.created_at == 123.0

    def test_duplicate_class_names_rejected(self):
        solver = make_solver()
        statuses = [
            ClassStatus(olap("same", 0.5, 1), 1_000, 0.5),
            ClassStatus(olap("same", 0.5, 1), 1_000, 0.5),
        ]
        with pytest.raises(SchedulingError):
            solver.solve(statuses)

    def test_infeasible_minimums_rejected(self):
        solver = make_solver(system=2_000.0, minimum=1_000.0)
        with pytest.raises(SchedulingError):
            solver.solve(paper_statuses())

    def test_empty_statuses_rejected(self):
        with pytest.raises(SchedulingError):
            make_solver().solve([])

    def test_counters(self):
        solver = make_solver()
        solver.solve(paper_statuses())
        assert solver.solve_calls == 1
        assert solver.evaluations > 100  # exhaustive enumeration happened


class TestGreedyPath:
    def _many_statuses(self, n=5):
        statuses = []
        for i in range(n):
            statuses.append(
                ClassStatus(olap("c{}".format(i), 0.5, 1 + (i % 3)), 6_000, 0.3 + 0.1 * i)
            )
        return statuses

    def test_greedy_used_above_three_classes(self):
        solver = make_solver()
        plan = solver.solve(self._many_statuses(5))
        assert plan.total_allocated <= 30_000.0 + 1e-6
        assert len(plan) == 5
        for name in plan:
            assert plan.limit(name) >= 1_000.0

    def test_greedy_matches_exhaustive_on_three_classes(self):
        """The greedy climber should land on (or near) the exhaustive
        optimum for a small instance."""
        solver = make_solver()
        statuses = paper_statuses(v1=0.2, v2=0.7, t3=0.35)
        exhaustive_plan, _ = solver._solve_exhaustive(statuses, 30, 1)
        greedy_plan, _ = solver._solve_greedy(statuses, 30, 1)
        exhaustive_score = solver.objective(
            statuses, [u * 1_000.0 for u in exhaustive_plan]
        )
        greedy_score = solver.objective(statuses, [u * 1_000.0 for u in greedy_plan])
        assert greedy_score >= exhaustive_score - 1e-6


class _NaNUtility:
    """A pathological utility: every achievement scores NaN."""

    def value(self, achievement, importance):
        return float("nan")


class TestNaNResilience:
    """Regression: an all-NaN objective used to make ``_solve_exhaustive``
    return an empty tuple (``max`` over no finite candidates), crashing
    plan construction downstream."""

    def _nan_solver(self):
        return PerformanceSolver(
            utility=_NaNUtility(),
            oltp_model=OLTPResponseTimeModel(prior_slope=-4.2e-6),
            system_cost_limit=30_000.0,
            grid_timerons=1_000.0,
            min_class_limit=1_000.0,
        )

    def test_exhaustive_all_nan_returns_full_fallback(self):
        solver = self._nan_solver()
        units, score = solver._solve_exhaustive(paper_statuses(), 30, 1)
        assert len(units) == 3
        assert sum(units) == 30
        assert all(u >= 1 for u in units)
        import math
        assert math.isnan(score)

    def test_solve_all_nan_yields_feasible_plan(self):
        solver = self._nan_solver()
        plan = solver.solve(paper_statuses())
        assert len(plan) == 3
        assert plan.total_allocated == pytest.approx(30_000.0)
        for name in plan:
            assert plan.limit(name) >= 1_000.0
        assert solver.last_score is None

    def test_greedy_all_nan_yields_feasible_plan(self):
        solver = self._nan_solver()
        statuses = [
            ClassStatus(olap("c{}".format(i), 0.5, 1), 6_000, 0.4)
            for i in range(5)
        ]
        plan = solver.solve(statuses)
        assert len(plan) == 5
        assert plan.total_allocated <= 30_000.0 + 1e-6
        assert solver.last_score is None

    def test_nan_measurement_still_produces_plan(self):
        """A NaN creeping in through a measurement must not break solve."""
        solver = make_solver()
        plan = solver.solve(paper_statuses(v1=float("nan")))
        assert len(plan) == 3
        assert plan.total_allocated <= 30_000.0 + 1e-6

    def test_last_score_and_evaluations_track_solves(self):
        solver = make_solver()
        solver.solve(paper_statuses())
        assert solver.last_score is not None
        first_evals = solver.last_evaluations
        assert first_evals > 100  # exhaustive enumeration
        solver.solve(paper_statuses(t3=0.4))
        assert solver.last_evaluations == first_evals
        assert solver.evaluations == 2 * first_evals


def test_solver_validation():
    with pytest.raises(SchedulingError):
        make_solver(grid=0.0)
    with pytest.raises(SchedulingError):
        make_solver(system=-1.0)
    with pytest.raises(SchedulingError):
        make_solver(margin=0.0)
    with pytest.raises(SchedulingError):
        PerformanceSolver(
            utility=PiecewiseLinearUtility(),
            oltp_model=OLTPResponseTimeModel(),
            system_cost_limit=1000.0,
            min_class_limit=-5.0,
        )
