"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main

FAST_RUN = ["--periods", "2", "--period-seconds", "20",
            "--control-interval", "10"]


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_command_prints_tables(capsys):
    code = main(["run", "--controller", "none"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "Per-period goal metrics" in out
    assert "Attainment" in out
    assert "class3" in out


def test_run_qs_prints_plan_table(capsys):
    code = main(["run", "--controller", "qs"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "Class cost limits" in out
    assert "Query Scheduler" in out


def test_run_rejects_unknown_controller():
    with pytest.raises(SystemExit):
        main(["run", "--controller", "chaos"])


def test_trace_command_stdout_jsonl(capsys):
    import json

    code = main(["trace"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    lines = [line for line in out.splitlines() if line.strip()]
    assert lines, "trace produced no JSONL records"
    for line in lines:
        record = json.loads(line)
        assert {"time", "interval_index", "trigger", "solver",
                "dispatcher"} <= set(record)


def test_trace_command_writes_file(tmp_path, capsys):
    import json

    path = str(tmp_path / "trace.jsonl")
    code = main(["trace", "--output", path, "--summary"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "wrote" in out
    assert "One-step prediction error" in out
    assert "Dispatcher balance" in out
    with open(path) as handle:
        rows = [json.loads(line) for line in handle if line.strip()]
    assert rows
    assert rows[0]["interval_index"] == 0


def test_trace_rejects_non_qs_controller():
    with pytest.raises(SystemExit):
        main(["trace", "--controller", "none"] + FAST_RUN)


def test_check_command_clean_run(capsys):
    code = main(["check"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "Invariants" in out
    assert "no violations" in out
    assert "mode=strict" in out


def test_check_command_list(capsys):
    code = main(["check", "--list"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "dispatcher_in_flight_consistent" in out
    assert "oltp_slope_in_clamp_band" in out
    assert "CRITICAL" in out


def test_run_with_invariants_prints_summary(capsys):
    code = main(["run", "--controller", "qs", "--invariants", "strict"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "Invariants" in out
    assert "no violations" in out


def test_trace_embeds_violations_field(capsys):
    import json

    code = main(["trace", "--invariants", "warn"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    lines = [line for line in out.splitlines() if line.strip()]
    records = [json.loads(line) for line in lines if line.startswith("{")]
    assert records
    assert all("violations" in record for record in records)
    assert all(record["violations"] == [] for record in records)


def test_calibrate_command(capsys):
    code = main([
        "calibrate", "--limits", "10000", "30000",
        "--clients", "8", "--period-seconds", "30",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "queries/sec" in out
    assert "suggested system cost limit" in out


def test_figure3_command(capsys):
    code = main(["figure", "3"])
    out = capsys.readouterr().out
    assert code == 0
    assert "Figure 3" in out
    assert out.count("\n") >= 20  # 18 period rows plus header


def test_figure4_command(capsys):
    code = main(["figure", "4"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "controller=none" in out


def test_figure_unknown_number(capsys):
    code = main(["figure", "12"] + FAST_RUN)
    assert code == 2
    assert "unknown figure" in capsys.readouterr().err


def test_seed_changes_results(capsys):
    main(["run", "--controller", "none", "--seed", "1"] + FAST_RUN)
    first = capsys.readouterr().out
    main(["run", "--controller", "none", "--seed", "1"] + FAST_RUN)
    second = capsys.readouterr().out
    assert first == second  # deterministic
    main(["run", "--controller", "none", "--seed", "2"] + FAST_RUN)
    third = capsys.readouterr().out
    assert third != first


def test_run_output_json(tmp_path, capsys):
    path = str(tmp_path / "out.json")
    code = main(["run", "--controller", "none", "--output", path] + FAST_RUN)
    assert code == 0
    import json
    with open(path) as handle:
        data = json.load(handle)
    assert data["controller"] == "none"
    assert "wrote" in capsys.readouterr().out


def test_run_output_csv(tmp_path, capsys):
    path = str(tmp_path / "out.csv")
    code = main(["run", "--controller", "none", "--output", path] + FAST_RUN)
    assert code == 0
    with open(path) as handle:
        assert handle.readline().startswith("period,")


def test_report_command(tmp_path, capsys, monkeypatch):
    """`repro report` writes a Markdown comparison (patched to a tiny
    config so the test stays fast)."""
    from repro.config import (
        MonitorConfig,
        PlannerConfig,
        WorkloadScaleConfig,
        default_config,
    )
    import repro.cli as cli_module
    import repro.experiments.reportgen as reportgen

    tiny = default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=1),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )
    monkeypatch.setattr(reportgen, "quick_report_config", lambda: tiny)
    path = str(tmp_path / "report.md")
    code = main(["report", "--output", path])
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    with open(path) as handle:
        text = handle.read()
    assert "Generated experiment report" in text


def test_replicate_command_serial(capsys):
    code = main([
        "replicate", "--controllers", "none", "--seeds", "1", "2",
    ] + FAST_RUN)
    captured = capsys.readouterr()
    assert code == 0
    assert "controller" in captured.out
    assert "none" in captured.out
    # Progress lines land on stderr, one per run.
    assert "[1/2]" in captured.err
    assert "[2/2]" in captured.err


def test_replicate_command_parallel_matches_serial(capsys):
    serial_code = main([
        "replicate", "--controllers", "none", "--seeds", "1", "2", "--quiet",
    ] + FAST_RUN)
    serial_out = capsys.readouterr().out
    parallel_code = main([
        "replicate", "--controllers", "none", "--seeds", "1", "2",
        "--jobs", "2", "--quiet",
    ] + FAST_RUN)
    parallel_out = capsys.readouterr().out
    assert serial_code == parallel_code == 0
    assert serial_out == parallel_out


def test_replicate_rejects_unknown_controller():
    with pytest.raises(SystemExit):
        main(["replicate", "--controllers", "chaos"] + FAST_RUN)


def test_sweep_command(capsys):
    code = main([
        "sweep", "optimizer.noise_sigma", "--values", "0.0", "0.2",
        "--controller", "none", "--jobs", "2", "--quiet",
    ] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "optimizer.noise_sigma" in out
    assert "class3" in out


def test_sweep_rejects_unknown_field(capsys):
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        main([
            "sweep", "planner.warp_speed", "--values", "1", "--quiet",
        ] + FAST_RUN)


def test_run_trace_events_writes_chrome_trace(tmp_path, capsys):
    import json

    path = str(tmp_path / "trace.json")
    code = main(["run", "--trace-events", path] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "balanced=True" in out
    with open(path) as handle:
        document = json.load(handle)
    events = document["traceEvents"]
    assert isinstance(events, list) and events
    assert any(event.get("ph") == "X" for event in events)


def test_spans_command_fresh_run(capsys):
    code = main(["spans"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "balanced" in out
    assert "Per-class phase breakdown" in out
    assert "queue_wait" in out
    assert "execute" in out
    assert "slowest queue waits" in out


def test_spans_command_from_saved_trace(tmp_path, capsys):
    path = str(tmp_path / "trace.json")
    main(["run", "--trace-events", path] + FAST_RUN)
    capsys.readouterr()
    code = main(["spans", path])
    out = capsys.readouterr().out
    assert code == 0
    assert "loaded" in out
    assert "Per-class phase breakdown" in out


def test_spans_command_writes_jsonl(tmp_path, capsys):
    import json

    path = str(tmp_path / "spans.jsonl")
    code = main(["spans", "--output", path] + FAST_RUN)
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    with open(path) as handle:
        rows = [json.loads(line) for line in handle if line.strip()]
    assert rows
    assert {"query_id", "class", "phase", "begin", "end"} <= set(rows[0])


def test_trace_summary_prints_controller_overhead(capsys):
    code = main(["trace", "--summary"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "Controller overhead (wall-clock per control interval):" in out
    assert "total_s" in out
    assert "mean=" in out and "max=" in out


def test_run_sharded_smoke(capsys, tmp_path):
    import json

    path = str(tmp_path / "sharded.json")
    code = main(
        ["run", "--shards", "2", "--router", "least-loaded",
         "--invariants", "strict", "--jobs", "2", "--output", path] + FAST_RUN
    )
    out = capsys.readouterr().out
    assert code == 0
    assert "sharded run" in out
    assert "2 shards" in out
    assert "global invariants: ok" in out
    payload = json.loads(open(path).read())
    assert payload["shards"] == 2
    assert payload["ok"] is True


def test_run_shards_one_uses_unsharded_path(capsys):
    code = main(["run", "--shards", "1", "--controller", "qs"] + FAST_RUN)
    out = capsys.readouterr().out
    assert code == 0
    assert "sharded run" not in out


def test_run_router_without_shards_is_an_error(capsys):
    code = main(["run", "--router", "hash"] + FAST_RUN)
    err = capsys.readouterr().err
    assert code == 2
    assert "--shards" in err


def test_run_sharded_rejects_trace_events(capsys):
    code = main(
        ["run", "--shards", "2", "--trace-events", "x.jsonl"] + FAST_RUN
    )
    assert code == 2


def test_run_sharded_underprovisioned_limit_exits_2(capsys):
    # 16 shards x 3 classes x 1000-timeron floor exceeds the default
    # 30k global budget; must fail fast with a config error, not crash.
    code = main(["run", "--shards", "16"] + FAST_RUN)
    err = capsys.readouterr().err
    assert code == 2
    assert "cost limit" in err
