"""Tests for cross-run aggregation helpers (the aggregation-bug fixes)."""

import pytest

from repro.metrics.aggregate import (
    merge_histogram_states,
    merge_histograms,
    weighted_attainment,
)
from repro.sim.stats import Histogram


class TestWeightedAttainment:
    def test_pools_by_completions_not_run_count(self):
        # The headline regression: a 10-completion run at 1.0 and a
        # 990-completion run at 0.0 must pool to 0.01, not average to 0.5.
        assert weighted_attainment([(1.0, 10), (0.0, 990)]) == pytest.approx(0.01)

    def test_equal_weights_match_plain_mean(self):
        assert weighted_attainment([(0.2, 5), (0.8, 5)]) == pytest.approx(0.5)

    def test_zero_total_completions_falls_back_to_mean(self):
        assert weighted_attainment([(0.25, 0), (0.75, 0)]) == pytest.approx(0.5)

    def test_empty_input(self):
        assert weighted_attainment([]) == 0.0

    def test_single_entry_is_identity(self):
        assert weighted_attainment([(0.42, 17)]) == pytest.approx(0.42)


class TestMergeHistograms:
    def _hist(self, values):
        hist = Histogram(0.0, 10.0, bins=10)
        for value in values:
            hist.add(value)
        return hist

    def test_merged_equals_concatenated_stream(self):
        merged = merge_histograms([self._hist([1.0, 2.0]), self._hist([8.0])])
        expected = self._hist([1.0, 2.0, 8.0])
        assert merged.to_dict() == expected.to_dict()

    def test_inputs_are_not_mutated(self):
        left = self._hist([1.0])
        right = self._hist([9.0])
        merge_histograms([left, right])
        assert left.count == 1
        assert right.count == 1

    def test_empty_input_returns_none(self):
        assert merge_histograms([]) is None

    def test_states_round_trip_through_serialization(self):
        states = [
            self._hist([1.0, 1.5]).to_dict(),
            self._hist([9.0]).to_dict(),
        ]
        merged = merge_histogram_states(states)
        expected = self._hist([1.0, 1.5, 9.0])
        assert merged.to_dict() == expected.to_dict()

    def test_states_empty_returns_none(self):
        assert merge_histogram_states([]) is None
