"""Tests for the per-period metrics collector."""

import pytest

from repro.config import default_config
from repro.core.plan import SchedulingPlan
from repro.core.planner import PlanRecord
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, Phase, Query
from repro.metrics.collector import MetricsCollector
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.schedule import constant_schedule


def make_collector(period=10.0, periods=3):
    sim = Simulator()
    engine = DatabaseEngine(sim, default_config(), RandomStreams(31))
    classes = list(paper_classes())
    schedule = constant_schedule(period, periods, {c.name: 1 for c in classes})
    collector = MetricsCollector(engine, schedule, classes)
    return sim, engine, classes, collector


_qid = [5000]


def completed_query(class_name, kind, submit, release, finish):
    _qid[0] += 1
    query = Query(
        query_id=_qid[0],
        class_name=class_name,
        client_id="c",
        template="t",
        kind=kind,
        phases=(Phase(CPU, 0.1),),
        true_cost=10.0,
        estimated_cost=10.0,
    )
    query.submit_time = submit
    query.release_time = release
    query.finish_time = finish
    return query


def test_completions_bucketed_by_finish_period():
    sim, engine, classes, collector = make_collector(period=10.0, periods=3)
    collector.on_completion(completed_query("class1", "olap", 0.0, 2.0, 4.0))
    collector.on_completion(completed_query("class1", "olap", 0.0, 5.0, 15.0))
    assert collector.cell(0, "class1").completions == 1
    assert collector.cell(1, "class1").completions == 1
    assert collector.cell(2, "class1") is None
    assert collector.total_completions == 2


def test_velocity_series():
    sim, engine, classes, collector = make_collector()
    # velocity = (4-2)/(4-0) = 0.5 in period 0
    collector.on_completion(completed_query("class1", "olap", 0.0, 2.0, 4.0))
    series = collector.metric_series("class1", "velocity")
    assert series[0] == pytest.approx(0.5)
    assert series[1] is None


def test_response_time_series_and_throughput():
    sim, engine, classes, collector = make_collector(period=10.0)
    for finish in (1.0, 2.0, 3.0, 4.0):
        collector.on_completion(
            completed_query("class3", "oltp", finish - 0.5, finish - 0.5, finish)
        )
    series = collector.metric_series("class3", "response_time")
    assert series[0] == pytest.approx(0.5)
    throughput = collector.metric_series("class3", "throughput")
    assert throughput[0] == pytest.approx(0.4)


def test_performance_series_picks_goal_metric():
    sim, engine, classes, collector = make_collector()
    collector.on_completion(completed_query("class1", "olap", 0.0, 2.5, 5.0))
    collector.on_completion(completed_query("class3", "oltp", 0.0, 0.0, 0.2))
    class1 = next(c for c in classes if c.name == "class1")
    class3 = next(c for c in classes if c.name == "class3")
    assert collector.performance_series(class1)[0] == pytest.approx(0.5)
    assert collector.performance_series(class3)[0] == pytest.approx(0.2)


def test_goal_attainment_ignores_empty_periods():
    sim, engine, classes, collector = make_collector(period=10.0, periods=3)
    class3 = next(c for c in classes if c.name == "class3")
    # Period 0 meets (0.2 <= 0.25), period 2 misses (0.4); period 1 empty.
    collector.on_completion(completed_query("class3", "oltp", 0.0, 0.0, 0.2))
    collector.on_completion(completed_query("class3", "oltp", 25.0, 25.0, 25.4))
    assert collector.goal_attainment(class3) == pytest.approx(0.5)


def test_goal_attainment_zero_when_no_data():
    sim, engine, classes, collector = make_collector()
    assert collector.goal_attainment(classes[0]) == 0.0


def test_plan_series_and_period_means():
    sim, engine, classes, collector = make_collector(period=10.0, periods=3)
    for time, limit in ((1.0, 10_000.0), (6.0, 14_000.0), (11.0, 20_000.0)):
        plan = SchedulingPlan(
            {"class1": limit, "class2": 1_000.0, "class3": 1_000.0}, 30_000.0,
            created_at=time,
        )
        collector.on_plan(PlanRecord(time=time, plan=plan, measurements={}))
    series = collector.plan_series("class1")
    assert [limit for _, limit in series] == [10_000.0, 14_000.0, 20_000.0]
    means = collector.plan_period_means("class1")
    assert means[0] == pytest.approx(12_000.0)
    assert means[1] == pytest.approx(20_000.0)
    assert means[2] is None


def test_engine_completions_flow_in_automatically():
    sim, engine, classes, collector = make_collector()
    query = completed_query("class1", "olap", 0.0, 0.0, 0.0)
    query.finish_time = None
    query.state = query.state  # untouched; execute for real:
    fresh = Query(
        query_id=99999,
        class_name="class1",
        client_id="c",
        template="t",
        kind="olap",
        phases=(Phase(CPU, 1.0),),
        true_cost=10.0,
        estimated_cost=10.0,
    )
    fresh.submit_time = 0.0
    engine.execute(fresh)
    sim.run()
    assert collector.total_completions == 1


class TestTailLatency:
    def _collector_with_rts(self, rts):
        sim, engine, classes, collector = make_collector(period=100.0, periods=1)
        for rt in rts:
            collector.on_completion(
                completed_query("class3", "oltp", 0.0, 0.0, rt)
            )
        return collector

    def test_p95_above_mean_for_skewed_latencies(self):
        rts = [0.1] * 95 + [2.0] * 5
        collector = self._collector_with_rts(rts)
        mean = collector.metric_series("class3", "response_time")[0]
        p95 = collector.metric_series("class3", "response_p95")[0]
        p99 = collector.metric_series("class3", "response_p99")[0]
        assert mean == pytest.approx(0.195, abs=0.01)
        assert p95 > mean
        assert p99 >= p95

    def test_percentiles_none_for_empty_period(self):
        collector = self._collector_with_rts([])
        assert collector.metric_series("class3", "response_p95") == [None]

    def test_cell_percentile_direct(self):
        collector = self._collector_with_rts([1.0] * 10)
        cell = collector.cell(0, "class3")
        assert cell.response_percentile(50.0) == pytest.approx(1.0, abs=0.5)


def test_metric_series_unknown_metric_is_a_clear_error():
    from repro.errors import MetricsError
    from repro.metrics.collector import METRIC_NAMES

    sim, engine, classes, collector = make_collector()
    with pytest.raises(MetricsError) as err:
        collector.metric_series("class1", "latency")
    message = str(err.value)
    assert "latency" in message
    for name in METRIC_NAMES:
        assert name in message


def test_metric_names_constant_matches_dispatch():
    from repro.metrics.collector import METRIC_NAMES

    sim, engine, classes, collector = make_collector()
    collector.on_completion(completed_query("class1", "olap", 0.0, 2.0, 4.0))
    for name in METRIC_NAMES:
        series = collector.metric_series("class1", name)
        assert len(series) == 3  # one slot per period, no exceptions
