"""Tests for the controller telemetry subsystem."""

import json
import math

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import run_experiment
from repro.metrics.report import format_prediction_summary
from repro.metrics.telemetry import (
    ControlIntervalRecord,
    DispatcherClassTelemetry,
    MeasurementTelemetry,
    PredictionTelemetry,
    SolverTelemetry,
    TelemetryStore,
)


def _record(time=0.0, index=0, trigger="scheduled", predictions=None):
    return ControlIntervalRecord(
        time=time,
        interval_index=index,
        trigger=trigger,
        measurements={
            "class1": MeasurementTelemetry(
                metric="velocity", value=0.4, sample_count=3, staleness=0.0
            )
        },
        predictions=predictions
        or {
            "class1": PredictionTelemetry(predicted=0.5, realized=0.4, error=-0.1)
        },
        solver=SolverTelemetry(
            allocation={"class1": 10_000.0},
            objective=1.5,
            evaluations=42,
            solve_calls=index + 1,
            oltp_slope=-4.2e-6,
            oltp_observations=0,
        ),
        dispatcher={
            "class1": DispatcherClassTelemetry(
                queue_length=2,
                in_flight_cost=900.0,
                in_flight_count=1,
                released_total=5,
                completed_total=3,
                cancelled_total=1,
                released_this_interval=2,
            )
        },
    )


class TestTelemetryStore:
    def test_append_len_last(self):
        store = TelemetryStore()
        assert len(store) == 0
        assert store.last is None
        store.append(_record(time=10.0))
        store.append(_record(time=20.0, index=1))
        assert len(store) == 2
        assert store.last.time == 20.0
        assert [r.interval_index for r in store] == [0, 1]

    def test_between(self):
        store = TelemetryStore()
        for index, time in enumerate([10.0, 20.0, 30.0]):
            store.append(_record(time=time, index=index))
        assert [r.time for r in store.between(15.0, 30.0)] == [20.0, 30.0]

    def test_allocation_series(self):
        store = TelemetryStore()
        store.append(_record())
        store.append(_record(index=1))
        assert store.allocation_series("class1") == [10_000.0, 10_000.0]
        assert store.allocation_series("unknown") == []

    def test_jsonl_roundtrip(self, tmp_path):
        store = TelemetryStore()
        store.append(_record(time=10.0))
        store.append(_record(time=20.0, index=1, trigger="early"))
        path = str(tmp_path / "trace.jsonl")
        store.save_jsonl(path)
        rows = TelemetryStore.load_jsonl(path)
        assert len(rows) == 2
        assert rows[0]["time"] == 10.0
        assert rows[1]["trigger"] == "early"
        assert rows[0]["solver"]["allocation"]["class1"] == 10_000.0
        assert rows[0]["dispatcher"]["class1"]["released_total"] == 5

    def test_to_dict_sanitises_non_finite(self):
        record = _record(
            predictions={
                "class1": PredictionTelemetry(
                    predicted=float("nan"),
                    realized=float("inf"),
                    error=None,
                )
            }
        )
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["predictions"]["class1"]["predicted"] is None
        assert payload["predictions"]["class1"]["realized"] is None
        assert payload["predictions"]["class1"]["error"] is None

    def test_prediction_error_summary(self):
        store = TelemetryStore()
        store.append(_record())
        store.append(
            _record(
                index=1,
                predictions={
                    "class1": PredictionTelemetry(
                        predicted=0.5, realized=0.6, error=0.3
                    )
                },
            )
        )
        summary = store.prediction_error_summary()["class1"]
        assert summary.count == 2
        assert summary.mean_abs_error == pytest.approx(0.2)
        assert summary.mean_error == pytest.approx(0.1)
        assert summary.to_dict()["count"] == 2

    def test_prediction_errors_skips_none(self):
        store = TelemetryStore()
        store.append(
            _record(
                predictions={
                    "class1": PredictionTelemetry(
                        predicted=0.5, realized=None, error=None
                    )
                }
            )
        )
        store.append(_record(index=1))
        assert store.prediction_errors("class1") == [-0.1]

    def test_dispatcher_balance(self):
        store = TelemetryStore()
        assert store.dispatcher_balance() == {}
        store.append(_record())
        balance = store.dispatcher_balance()["class1"]
        assert balance == {
            "released": 5,
            "completed": 3,
            "cancelled": 1,
            "in_flight": 1,
            "queue_cancelled": 0,
        }


def test_format_prediction_summary():
    store = TelemetryStore()
    store.append(_record())
    text = format_prediction_summary(
        store.prediction_error_summary(), title="Prediction error"
    )
    assert "Prediction error" in text
    assert "class1" in text
    assert "mean_|err|" in text


def test_format_prediction_summary_empty():
    assert "(no prediction telemetry)" in format_prediction_summary({})


@pytest.fixture(scope="module")
def qs_run():
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=30.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=10.0),
    )
    return run_experiment(controller="qs", config=config)


class TestLiveTelemetry:
    def test_exactly_one_record_per_control_interval(self, qs_run):
        scheduler = qs_run.bundle.controller
        store = qs_run.extras["telemetry"]
        assert len(store) == scheduler.planner.intervals_run
        assert len(store) == len(scheduler.planner.history)
        assert [r.interval_index for r in store] == list(range(len(store)))
        assert all(r.trigger == "scheduled" for r in store)

    def test_records_cover_all_classes(self, qs_run):
        store = qs_run.extras["telemetry"]
        names = {c.name for c in qs_run.classes}
        for record in store:
            assert set(record.dispatcher) == names
            assert set(record.solver.allocation) == names

    def test_allocation_matches_plan_history(self, qs_run):
        scheduler = qs_run.bundle.controller
        store = qs_run.extras["telemetry"]
        for record, plan_record in zip(store, scheduler.planner.history):
            assert record.solver.allocation == plan_record.plan.as_dict()
            assert record.time == plan_record.time

    def test_dispatcher_balance_invariant_every_interval(self, qs_run):
        """released == completed + cancelled + in-flight at every snapshot."""
        store = qs_run.extras["telemetry"]
        for record in store:
            for name, snapshot in record.dispatcher.items():
                assert snapshot.released_total == (
                    snapshot.completed_total
                    + snapshot.cancelled_total
                    + snapshot.in_flight_count
                ), name

    def test_solver_state_recorded(self, qs_run):
        store = qs_run.extras["telemetry"]
        last = store.last
        assert last.solver.evaluations > 0
        assert last.solver.solve_calls == len(store)
        assert last.solver.objective is not None
        assert last.solver.oltp_slope < 0

    def test_predictions_and_errors_populated(self, qs_run):
        store = qs_run.extras["telemetry"]
        errors = [
            p.error
            for record in store.records[1:]
            for p in record.predictions.values()
            if p.error is not None
        ]
        assert errors, "no prediction errors recorded across intervals"
        assert all(math.isfinite(e) for e in errors)

    def test_export_includes_telemetry_block(self, qs_run):
        from repro.metrics.export import result_to_dict

        payload = result_to_dict(qs_run)
        assert payload["telemetry"]["intervals"] == len(
            qs_run.extras["telemetry"]
        )
        assert "dispatcher_balance" in payload["telemetry"]
        json.dumps(payload)  # JSON-serialisable end to end

    def test_jsonl_export_of_live_run(self, qs_run, tmp_path):
        store = qs_run.extras["telemetry"]
        path = str(tmp_path / "live.jsonl")
        store.save_jsonl(path)
        rows = TelemetryStore.load_jsonl(path)
        assert len(rows) == len(store)
        for row in rows:
            assert {"time", "interval_index", "trigger", "measurements",
                    "predictions", "solver", "dispatcher"} <= set(row)


def test_deficit_allocator_yields_records_without_model_data():
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=30.0, num_periods=1),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=10.0, allocator="deficit"),
    )
    result = run_experiment(controller="qs", config=config)
    store = result.extras["telemetry"]
    assert len(store) > 0
    for record in store:
        assert record.predictions == {} or all(
            p.predicted is None for p in record.predictions.values()
        )
        assert record.solver.objective is None
        assert record.solver.oltp_slope is None


class TestOverheadTelemetry:
    def test_record_carries_overhead_dict(self):
        record = _record()
        assert record.overhead == {}
        payload = record.to_dict()
        assert payload["overhead"] == {}

    def test_to_dict_sanitises_overhead_values(self):
        record = _record()
        record.overhead.update({"solver_s": float("nan"), "total_s": 1.5})
        payload = json.loads(json.dumps(record.to_dict()))
        assert payload["overhead"]["solver_s"] is None
        assert payload["overhead"]["total_s"] == 1.5

    def test_overhead_summary_aggregates_records(self):
        store = TelemetryStore()
        first = _record()
        first.overhead.update({"solver_s": 1.0, "total_s": 2.0})
        second = _record(index=1)
        second.overhead.update({"solver_s": 3.0, "total_s": 4.0})
        store.append(first)
        store.append(second)
        summary = store.overhead_summary()
        assert summary["solver_s"]["mean_s"] == pytest.approx(2.0)
        assert summary["solver_s"]["max_s"] == pytest.approx(3.0)
        assert summary["total_s"]["count"] == 2

    def test_live_run_records_wall_clock_overhead(self, qs_run):
        store = qs_run.extras["telemetry"]
        assert len(store) > 0
        for record in store:
            for key in ("monitor_s", "solver_s", "dispatcher_s", "total_s"):
                assert key in record.overhead
                assert record.overhead[key] >= 0.0
            assert record.overhead["total_s"] >= record.overhead["solver_s"]
            assert "overhead" in record.to_dict()
        summary = store.overhead_summary()
        assert summary["total_s"]["count"] == len(store)


class TestSaveJsonlOverwriteGuard:
    def test_refuses_existing_file_by_default(self, tmp_path):
        from repro.errors import ExportError

        store = TelemetryStore()
        store.append(_record(time=10.0))
        path = tmp_path / "trace.jsonl"
        path.write_text("precious\n")
        with pytest.raises(ExportError, match="overwrite"):
            store.save_jsonl(str(path))
        assert path.read_text() == "precious\n"

    def test_overwrite_flag_replaces_file(self, tmp_path):
        store = TelemetryStore()
        store.append(_record(time=10.0))
        path = tmp_path / "trace.jsonl"
        path.write_text("precious\n")
        store.save_jsonl(str(path), overwrite=True)
        rows = TelemetryStore.load_jsonl(str(path))
        assert len(rows) == 1 and rows[0]["time"] == 10.0
