"""Tests for ASCII report formatting."""

from repro.config import default_config
from repro.core.plan import SchedulingPlan
from repro.core.planner import PlanRecord
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, Phase, Query
from repro.metrics.collector import MetricsCollector
from repro.metrics.report import (
    format_figure_series,
    format_period_table,
    format_plan_table,
    format_summary,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.schedule import constant_schedule


def make_populated_collector():
    sim = Simulator()
    engine = DatabaseEngine(sim, default_config(), RandomStreams(37))
    classes = list(paper_classes())
    schedule = constant_schedule(10.0, 2, {c.name: 1 for c in classes})
    collector = MetricsCollector(engine, schedule, classes)
    query = Query(
        query_id=1, class_name="class1", client_id="c", template="t", kind="olap",
        phases=(Phase(CPU, 0.1),), true_cost=1.0, estimated_cost=1.0,
    )
    query.submit_time, query.release_time, query.finish_time = 0.0, 2.0, 4.0
    collector.on_completion(query)
    oltp = Query(
        query_id=2, class_name="class3", client_id="c", template="t", kind="oltp",
        phases=(Phase(CPU, 0.1),), true_cost=1.0, estimated_cost=1.0,
    )
    oltp.submit_time, oltp.release_time, oltp.finish_time = 0.0, 0.0, 0.2
    collector.on_completion(oltp)
    plan = SchedulingPlan(
        {"class1": 9_000.0, "class2": 9_000.0, "class3": 12_000.0}, 30_000.0
    )
    collector.on_plan(PlanRecord(time=1.0, plan=plan, measurements={}))
    return collector, classes


def test_period_table_shape_and_markers():
    collector, classes = make_populated_collector()
    table = format_period_table(collector, classes, title="Perf")
    lines = table.splitlines()
    assert lines[0] == "Perf"
    assert "class1" in lines[1] and "class3" in lines[1]
    assert len(lines) == 2 + 1 + 2  # title + header + rule + 2 periods
    assert "ok" in table  # both observed values meet their goals
    assert "0.500" in table  # class1 velocity
    assert "0.200" in table  # class3 response time


def test_summary_contains_attainment():
    collector, classes = make_populated_collector()
    summary = format_summary(collector, classes, title="Summary")
    assert "class1" in summary
    assert "100%" in summary
    assert "attainment" in summary


def test_plan_table_reports_means():
    collector, classes = make_populated_collector()
    table = format_plan_table(collector, ["class1", "class2", "class3"])
    assert "12000" in table.replace(" ", "")


def test_figure_series_handles_ragged_and_missing():
    text = format_figure_series(
        {"a": [1.0, None, 3.0], "b": [2.0]},
        x_label="step",
        title="Fig",
        digits=1,
    )
    lines = text.splitlines()
    assert lines[0] == "Fig"
    assert "step" in lines[1]
    assert len(lines) == 3 + 3  # title + header + rule + 3 rows
    assert lines[4].count("-") >= 2  # None slots in row 2 for both series


class TestSeriesChart:
    def _chart(self, **kwargs):
        from repro.metrics.report import render_series_chart
        return render_series_chart(**kwargs)

    def test_chart_has_height_rows_plus_axis_and_legend(self):
        text = self._chart(series={"one": [0.1, 0.5, 0.9]}, height=6, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 1 + 6 + 2  # title + rows + axis + legend
        assert "A=one" in lines[-1]

    def test_extremes_hit_top_and_bottom_rows(self):
        text = self._chart(series={"s": [0.0, 1.0]}, height=5)
        lines = text.splitlines()
        assert "A" in lines[0]   # max lands on the top row
        assert "A" in lines[4]   # min lands on the bottom row

    def test_goal_line_drawn(self):
        text = self._chart(
            series={"s": [0.2, 0.8]}, height=8, goal_lines={"s": 0.5}
        )
        assert "-" in text

    def test_none_values_leave_gaps(self):
        text = self._chart(series={"s": [0.5, None, 0.5]}, height=4)
        marked_rows = [l for l in text.splitlines() if "A" in l]
        assert all("A A" in row or row.count("A") <= 2 for row in marked_rows)

    def test_empty_series(self):
        text = self._chart(series={"s": [None, None]}, height=4)
        assert "(no data)" in text

    def test_invalid_height(self):
        import pytest
        with pytest.raises(ValueError):
            self._chart(series={"s": [1.0]}, height=2)

    def test_multiple_series_distinct_markers(self):
        text = self._chart(series={"x": [0.1], "y": [0.9]}, height=5)
        assert "A=x" in text and "B=y" in text
