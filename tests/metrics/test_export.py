"""Tests for result export (JSON / CSV)."""

import csv
import io
import json

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import run_experiment
from repro.metrics.export import (
    load_result_dict,
    result_to_csv,
    result_to_dict,
    result_to_json,
    save_result,
)
from repro.workloads.schedule import constant_schedule


@pytest.fixture(scope="module")
def small_result():
    config = default_config(
        scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
        planner=PlannerConfig(control_interval=10.0),
    )
    schedule = constant_schedule(20.0, 2, {"class1": 2, "class2": 2, "class3": 5})
    return run_experiment(controller="qs", config=config, schedule=schedule)


def test_dict_structure(small_result):
    data = result_to_dict(small_result)
    assert data["controller"] == "qs"
    assert data["num_periods"] == 2
    assert data["total_completions"] > 0
    names = [c["name"] for c in data["classes"]]
    assert names == ["class1", "class2", "class3"]
    class3 = data["classes"][2]
    assert class3["metric"] == "response_time"
    assert class3["goal"] == 0.25
    assert len(class3["per_period"]) == 2
    assert set(data["plan_period_means"]) == {"class1", "class2", "class3"}


def test_json_roundtrips(small_result):
    text = result_to_json(small_result)
    parsed = json.loads(text)
    assert parsed == result_to_dict(small_result)


def test_csv_rows(small_result):
    text = result_to_csv(small_result)
    rows = list(csv.reader(io.StringIO(text)))
    header, body = rows[0], rows[1:]
    assert header[0] == "period"
    assert len(body) == 2 * 3  # periods x classes
    class_column = {row[1] for row in body}
    assert class_column == {"class1", "class2", "class3"}
    # meets_goal column is True/False/empty text.
    assert all(row[5] in ("True", "False", "") for row in body)


def test_save_and_load(tmp_path, small_result):
    json_path = str(tmp_path / "result.json")
    save_result(small_result, json_path)
    data = load_result_dict(json_path)
    assert data["controller"] == "qs"
    csv_path = str(tmp_path / "result.csv")
    save_result(small_result, csv_path)
    with open(csv_path) as handle:
        assert handle.readline().startswith("period,")


def test_dict_per_period_timing_series(small_result):
    data = result_to_dict(small_result)
    for block in data["classes"]:
        for key in ("wait_time_per_period", "execution_time_per_period",
                    "response_p95_per_period"):
            series = block[key]
            assert len(series) == 2
            assert all(v is None or v >= 0.0 for v in series)
    # The OLAP classes completed work, so the series carry real numbers.
    class1 = data["classes"][0]
    assert any(v is not None for v in class1["execution_time_per_period"])


def test_dict_telemetry_overhead_summary(small_result):
    data = result_to_dict(small_result)
    overhead = data["telemetry"]["overhead"]
    assert "total_s" in overhead
    assert overhead["total_s"]["count"] == data["telemetry"]["intervals"]
    assert overhead["total_s"]["max_s"] >= overhead["total_s"]["mean_s"] >= 0.0


def test_csv_timing_columns_ride_at_the_end(small_result):
    text = result_to_csv(small_result)
    rows = list(csv.reader(io.StringIO(text)))
    header, body = rows[0], rows[1:]
    assert header[-3:] == ["wait_time", "execution_time", "response_p95"]
    for row in body:
        for cell in row[-3:]:
            if cell:
                assert float(cell) >= 0.0
    # Rows with completions have an execution time.
    populated = [row for row in body if row[-2]]
    assert populated


def test_csv_timing_columns_roundtrip_dict_values(small_result):
    data = result_to_dict(small_result)
    text = result_to_csv(small_result)
    rows = list(csv.reader(io.StringIO(text)))
    header = rows[0]
    wait_col = header.index("wait_time")
    by_key = {(row[0], row[1]): row for row in rows[1:]}
    for block in data["classes"]:
        for period, value in enumerate(block["wait_time_per_period"]):
            cell = by_key[(str(period + 1), block["name"])][wait_col]
            if value is None:
                assert cell == ""
            else:
                assert float(cell) == pytest.approx(value, abs=1e-6)
