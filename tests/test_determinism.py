"""Determinism guarantees.

Every experiment must be exactly reproducible from its seed — the property
the whole evaluation leans on.  These tests pin it for every controller and
for the trace-replay path.
"""

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import CONTROLLER_NAMES, run_experiment
from repro.workloads.schedule import constant_schedule


def tiny_config(seed=13):
    return default_config(
        seed=seed,
        scale=WorkloadScaleConfig(period_seconds=25.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=12.0),
        planner=PlannerConfig(control_interval=12.0),
    )


def tiny_schedule():
    return constant_schedule(25.0, 2, {"class1": 2, "class2": 2, "class3": 6})


def fingerprint(result):
    """Everything observable about a run, as comparable structures."""
    series = {
        c.name: result.collector.performance_series(c) for c in result.classes
    }
    throughput = {
        c.name: result.collector.metric_series(c.name, "throughput")
        for c in result.classes
    }
    plans = [
        (time, tuple(sorted(limits.items())))
        for time, limits in result.collector._plan_points
    ]
    return (
        result.collector.total_completions,
        series,
        throughput,
        plans,
        result.bundle.sim.fired_events,
    )


@pytest.mark.parametrize("controller", CONTROLLER_NAMES)
def test_every_controller_is_seed_deterministic(controller):
    first = run_experiment(controller=controller, config=tiny_config(),
                           schedule=tiny_schedule())
    second = run_experiment(controller=controller, config=tiny_config(),
                            schedule=tiny_schedule())
    assert fingerprint(first) == fingerprint(second)


def test_seed_changes_every_controllers_outcome():
    for controller in ("none", "qs"):
        a = run_experiment(controller=controller, config=tiny_config(seed=1),
                           schedule=tiny_schedule())
        b = run_experiment(controller=controller, config=tiny_config(seed=2),
                           schedule=tiny_schedule())
        assert fingerprint(a) != fingerprint(b)


def test_trace_replay_is_deterministic():
    from repro.experiments.runner import build_bundle, make_controller
    from repro.workloads.trace import TraceRecorder, TraceReplayer

    def record():
        bundle = build_bundle(config=tiny_config(), schedule=tiny_schedule())
        recorder = TraceRecorder(bundle.sim, bundle.patroller)
        make_controller(bundle, "none").start()
        bundle.manager.start()
        bundle.run()
        return recorder.trace

    def replay(trace):
        bundle = build_bundle(config=tiny_config(), schedule=tiny_schedule())
        make_controller(bundle, "none").start()
        TraceReplayer(bundle.sim, bundle.patroller, bundle.factory, trace).start()
        bundle.run()
        return bundle.engine.completed_queries

    trace = record()
    assert trace.to_json() == record().to_json()
    assert replay(trace) == replay(trace)
