"""Scenario schema validation, round-trips, and compilation to ExperimentSpec."""

import dataclasses

import pytest

from repro.errors import ScenarioError
from repro.faults import ScheduledFault
from repro.scenarios import (
    SCENARIO_FORMAT_VERSION,
    SMOKE_PERIOD_SECONDS,
    ClientCurve,
    ScenarioClass,
    ScenarioFault,
    ScenarioSpec,
    loads_scenario,
    scenario_from_mapping,
    scenario_to_mapping,
    scenario_to_yaml,
    to_experiment_spec,
    to_sharded_experiment_spec,
)

yaml = pytest.importorskip("yaml")


def minimal_mapping(**overrides):
    """The smallest valid scenario document, as a plain mapping."""
    mapping = {
        "scenario": SCENARIO_FORMAT_VERSION,
        "name": "mini",
        "schedule": {"period_seconds": 20.0, "num_periods": 2},
        "classes": [
            {
                "name": "class1",
                "kind": "olap",
                "goal": {"velocity": 0.4},
                "importance": 1,
                "clients": [2, 3],
            },
            {
                "name": "class3",
                "kind": "oltp",
                "goal": {"response_time": 0.25},
                "importance": 3,
                "clients": 5,
            },
        ],
    }
    mapping.update(overrides)
    return mapping


class TestSchemaValidation:
    def test_minimal_document_parses(self):
        spec = scenario_from_mapping(minimal_mapping())
        assert spec.name == "mini"
        assert spec.num_periods == 2
        assert spec.seed == 7  # default
        assert spec.controller == "qs"
        assert spec.resolved_counts() == {"class1": (2, 3), "class3": (5, 5)}

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown keys \\['schdule'\\]"):
            scenario_from_mapping(minimal_mapping(schdule={}))

    def test_version_must_be_integer(self):
        with pytest.raises(ScenarioError, match="integer format version"):
            scenario_from_mapping(minimal_mapping(scenario="1"))

    def test_future_version_rejected(self):
        with pytest.raises(ScenarioError, match="unsupported scenario format"):
            scenario_from_mapping(minimal_mapping(scenario=99))

    def test_missing_name_rejected(self):
        mapping = minimal_mapping()
        del mapping["name"]
        with pytest.raises(ScenarioError, match="missing required key 'name'"):
            scenario_from_mapping(mapping)

    def test_non_mapping_document_rejected(self):
        with pytest.raises(ScenarioError, match="must be a mapping"):
            scenario_from_mapping(["not", "a", "scenario"])

    def test_unknown_controller_rejected(self):
        with pytest.raises(ScenarioError, match="unknown controller 'chaos'"):
            scenario_from_mapping(minimal_mapping(controller="chaos"))

    def test_unknown_backend_rejected(self):
        with pytest.raises(ScenarioError, match="unknown backend"):
            scenario_from_mapping(minimal_mapping(backend="oracle"))

    def test_unknown_invariant_mode_rejected(self):
        with pytest.raises(ScenarioError, match="unknown invariant mode"):
            scenario_from_mapping(minimal_mapping(invariants="pedantic"))

    def test_duplicate_class_names_rejected(self):
        mapping = minimal_mapping()
        mapping["classes"][1]["name"] = "class1"
        with pytest.raises(ScenarioError, match="duplicate class names"):
            scenario_from_mapping(mapping)

    def test_goal_must_be_single_entry_mapping(self):
        mapping = minimal_mapping()
        mapping["classes"][0]["goal"] = {"velocity": 0.4, "response_time": 1.0}
        with pytest.raises(ScenarioError, match="one-entry mapping"):
            scenario_from_mapping(mapping)

    def test_goal_kind_pairing_validated_eagerly(self):
        mapping = minimal_mapping()
        mapping["classes"][0]["goal"] = {"response_time": 0.5}  # olap class
        with pytest.raises(ScenarioError, match="class 'class1'"):
            scenario_from_mapping(mapping)

    def test_explicit_curve_must_match_num_periods(self):
        mapping = minimal_mapping()
        mapping["classes"][0]["clients"] = [2, 3, 4]
        with pytest.raises(ScenarioError, match="has 3 periods, schedule has 2"):
            scenario_from_mapping(mapping)

    def test_num_periods_inferred_from_explicit_lists(self):
        mapping = minimal_mapping()
        del mapping["schedule"]["num_periods"]
        spec = scenario_from_mapping(mapping)
        assert spec.num_periods == 2

    def test_num_periods_required_when_all_curves_generated(self):
        mapping = minimal_mapping()
        del mapping["schedule"]["num_periods"]
        mapping["classes"][0]["clients"] = {"generator": "constant", "value": 2}
        with pytest.raises(ScenarioError, match="num_periods is required"):
            scenario_from_mapping(mapping)

    def test_reserved_control_paths_rejected(self):
        mapping = minimal_mapping(control={"scale.num_periods": 9})
        with pytest.raises(ScenarioError, match="owned by the scenario"):
            scenario_from_mapping(mapping)

    def test_bad_control_path_rejected(self):
        mapping = minimal_mapping(control={"planner.warp_speed": 1})
        with pytest.raises(ScenarioError, match="control override"):
            scenario_from_mapping(mapping)

    def test_control_overrides_reach_the_config(self):
        mapping = minimal_mapping(control={"optimizer.noise_sigma": 0.42})
        config = scenario_from_mapping(mapping).build_config()
        assert config.optimizer.noise_sigma == 0.42
        # The schedule section still owns the scale.
        assert config.scale.period_seconds == 20.0
        assert config.scale.num_periods == 2


class TestFaultParsing:
    def test_fault_compiles_with_class_translated(self):
        mapping = minimal_mapping(
            faults=[{"kind": "cancel_storm", "at_period": 1.5, "class": "class1"}]
        )
        spec = scenario_from_mapping(mapping)
        fault = spec.faults[0]
        assert fault.params == {"class_name": "class1"}
        assert fault.seconds(spec.period_seconds) == pytest.approx(30.0)
        scheduled = fault.scheduled(spec.period_seconds)
        assert isinstance(scheduled, ScheduledFault)
        assert scheduled.at == pytest.approx(30.0)

    def test_unknown_fault_kind_rejected(self):
        mapping = minimal_mapping(faults=[{"kind": "meteor", "at": 1.0}])
        with pytest.raises(ScenarioError, match="unknown fault kind 'meteor'"):
            scenario_from_mapping(mapping)

    def test_unknown_fault_param_rejected(self):
        mapping = minimal_mapping(
            faults=[{"kind": "cancel_storm", "at": 1.0, "count": 4}]
        )
        with pytest.raises(ScenarioError, match="unknown keys"):
            scenario_from_mapping(mapping)

    def test_at_and_at_period_are_exclusive(self):
        mapping = minimal_mapping(
            faults=[{"kind": "cancel_storm", "at": 1.0, "at_period": 0.5}]
        )
        with pytest.raises(ScenarioError, match="exactly one of"):
            scenario_from_mapping(mapping)

    def test_fault_outside_horizon_rejected(self):
        mapping = minimal_mapping(faults=[{"kind": "cancel_storm", "at": 40.0}])
        with pytest.raises(ScenarioError, match="outside the\\s+schedule horizon"):
            scenario_from_mapping(mapping)

    def test_fault_on_unknown_class_rejected(self):
        mapping = minimal_mapping(
            faults=[{"kind": "arrival_burst", "at": 1.0, "class": "ghost", "count": 2}]
        )
        with pytest.raises(ScenarioError, match="unknown class 'ghost'"):
            scenario_from_mapping(mapping)


class TestClientCurveForms:
    def test_integer_shorthand_becomes_constant_generator(self):
        curve = ClientCurve.from_value(4, "test")
        assert curve.generator == "constant"
        assert curve.resolve(3) == (4, 4, 4)

    def test_generator_mapping_keeps_symbolic_form(self):
        curve = ClientCurve.from_value(
            {"generator": "ramp", "start": 1, "end": 5}, "test"
        )
        assert curve.to_value() == {"generator": "ramp", "start": 1, "end": 5}
        assert curve.resolve(5) == (1, 2, 3, 4, 5)

    def test_hyphenated_generator_name_canonicalized(self):
        curve = ClientCurve.from_value(
            {"generator": "flash-crowd", "base": 1, "peak": 3, "at": 0}, "test"
        )
        assert curve.generator == "flash_crowd"

    def test_boolean_rejected(self):
        with pytest.raises(ScenarioError, match="cannot be a boolean"):
            ClientCurve.from_value(True, "test")

    def test_negative_count_rejected(self):
        with pytest.raises(ScenarioError, match="negative client count"):
            ClientCurve.from_value([2, -1], "test")


class TestRoundTrip:
    def _rich_spec(self):
        return scenario_from_mapping(
            minimal_mapping(
                description="a rich scenario",
                seed=21,
                invariants="warn",
                horizon=30.0,
                control={"optimizer.noise_sigma": 0.3},
                faults=[
                    {"kind": "cancel_storm", "at_period": 0.5, "class": "class1",
                     "fraction": 0.5},
                    {"kind": "release_latency_jitter", "at": 12.0,
                     "release_latency": 0.4},
                ],
            )
        )

    def test_mapping_round_trip_is_identity(self):
        spec = self._rich_spec()
        assert scenario_from_mapping(scenario_to_mapping(spec)) == spec

    def test_yaml_round_trip_is_identity(self):
        spec = self._rich_spec()
        assert loads_scenario(scenario_to_yaml(spec)) == spec

    def test_defaults_are_omitted_from_the_document(self):
        mapping = scenario_to_mapping(scenario_from_mapping(minimal_mapping()))
        assert "backend" not in mapping  # sim is the default
        assert "faults" not in mapping
        assert "control" not in mapping
        assert "horizon" not in mapping

    def test_generator_curves_survive_serialization_symbolically(self):
        mapping = minimal_mapping()
        mapping["classes"][0]["clients"] = {
            "generator": "diurnal", "base": 5, "amplitude": 2, "period": 2,
        }
        spec = scenario_from_mapping(mapping)
        again = loads_scenario(scenario_to_yaml(spec))
        assert again == spec
        assert again.classes[0].clients.generator == "diurnal"


class TestToExperimentSpec:
    def test_compiles_schedule_classes_and_config(self):
        spec = scenario_from_mapping(minimal_mapping(seed=11))
        experiment = to_experiment_spec(spec)
        assert experiment.controller == "qs"
        assert experiment.config.seed == 11
        assert experiment.schedule.num_periods == 2
        assert experiment.schedule.counts["class1"] == (2, 3)
        assert [c.name for c in experiment.classes] == ["class1", "class3"]
        assert experiment.faults == ()

    def test_smoke_compresses_time_but_not_shape(self):
        spec = scenario_from_mapping(
            minimal_mapping(
                schedule={"period_seconds": 120.0, "num_periods": 2},
                faults=[{"kind": "cancel_storm", "at": 60.0}],
            )
        )
        experiment = to_experiment_spec(spec, smoke=True)
        assert experiment.schedule.period_seconds == SMOKE_PERIOD_SECONDS
        assert experiment.schedule.counts["class1"] == (2, 3)
        # Fault stays at the same *schedule position* (mid period 1).
        assert experiment.faults[0].at == pytest.approx(SMOKE_PERIOD_SECONDS / 2)
        # Control interval fits at least twice per compressed period.
        assert experiment.config.planner.control_interval <= SMOKE_PERIOD_SECONDS / 2

    def test_smoke_never_stretches_short_scenarios(self):
        spec = scenario_from_mapping(
            minimal_mapping(schedule={"period_seconds": 5.0, "num_periods": 2})
        )
        experiment = to_experiment_spec(spec, smoke=True)
        assert experiment.schedule.period_seconds == 5.0

    def test_at_period_faults_are_scale_independent(self):
        spec = scenario_from_mapping(
            minimal_mapping(
                schedule={"period_seconds": 120.0, "num_periods": 2},
                faults=[{"kind": "cancel_storm", "at_period": 1.5}],
            )
        )
        full = to_experiment_spec(spec, smoke=False)
        smoke = to_experiment_spec(spec, smoke=True)
        assert full.faults[0].at == pytest.approx(180.0)
        assert smoke.faults[0].at == pytest.approx(1.5 * SMOKE_PERIOD_SECONDS)

    def test_cli_overrides_beat_the_document(self):
        spec = scenario_from_mapping(minimal_mapping(seed=11, invariants="off"))
        experiment = to_experiment_spec(spec, invariants="strict", seed=42)
        assert experiment.invariants == "strict"
        assert experiment.config.seed == 42

    def test_explicit_horizon_scales_with_smoke(self):
        spec = scenario_from_mapping(
            minimal_mapping(
                schedule={"period_seconds": 80.0, "num_periods": 2},
                horizon=120.0,
            )
        )
        experiment = to_experiment_spec(spec, smoke=True)
        assert experiment.horizon == pytest.approx(120.0 * (8.0 / 80.0))

    def test_spec_is_frozen(self):
        spec = scenario_from_mapping(minimal_mapping())
        with pytest.raises(dataclasses.FrozenInstanceError):
            spec.seed = 1

    def test_validate_returns_self_for_chaining(self):
        spec = scenario_from_mapping(minimal_mapping())
        assert spec.validate() is spec

    def test_invalid_hand_built_spec_caught_by_validate(self):
        spec = ScenarioSpec(
            name="",
            period_seconds=10.0,
            num_periods=1,
            classes=(
                ScenarioClass(
                    name="c", kind="olap", goal_metric="velocity",
                    goal_value=0.4, importance=1.0,
                    clients=ClientCurve(counts=(1,)),
                ),
            ),
        )
        with pytest.raises(ScenarioError, match="non-empty name"):
            spec.validate()

    def test_hand_built_fault_validates(self):
        fault = ScenarioFault(kind="cancel_storm", at=1.0, at_period=None)
        fault.validate()
        with pytest.raises(ScenarioError, match="exactly one"):
            ScenarioFault(kind="cancel_storm").validate()


class TestShardPlan:
    def _sharded_mapping(self, shards):
        return minimal_mapping(shards=shards)

    def test_full_block_parses(self):
        spec = scenario_from_mapping(
            self._sharded_mapping(
                {"count": 4, "router": "cost-aware", "rebalance": "interval",
                 "seed_stride": 50}
            )
        )
        assert spec.shards.count == 4
        assert spec.shards.router == "cost-aware"
        assert spec.shards.rebalance == "interval"
        assert spec.shards.seed_stride == 50

    def test_bare_int_shorthand(self):
        spec = scenario_from_mapping(self._sharded_mapping(3))
        assert spec.shards.count == 3
        assert spec.shards.router == "hash"
        assert spec.shards.rebalance == "static"

    def test_round_trip_is_identity(self):
        spec = scenario_from_mapping(
            self._sharded_mapping({"count": 6, "router": "least-loaded"})
        )
        assert scenario_from_mapping(scenario_to_mapping(spec)) == spec
        assert loads_scenario(scenario_to_yaml(spec)) == spec

    def test_defaults_omitted_from_document(self):
        spec = scenario_from_mapping(self._sharded_mapping({"count": 2}))
        mapping = scenario_to_mapping(spec)
        assert mapping["shards"] == {"count": 2}

    def test_unsharded_document_has_no_shards_key(self):
        mapping = scenario_to_mapping(scenario_from_mapping(minimal_mapping()))
        assert "shards" not in mapping

    def test_bad_router_rejected(self):
        with pytest.raises(ScenarioError, match="router"):
            scenario_from_mapping(
                self._sharded_mapping({"count": 2, "router": "roulette"})
            )

    def test_bad_rebalance_rejected(self):
        with pytest.raises(ScenarioError, match="rebalance"):
            scenario_from_mapping(
                self._sharded_mapping({"count": 2, "rebalance": "never"})
            )

    def test_boolean_count_rejected(self):
        with pytest.raises(ScenarioError):
            scenario_from_mapping(self._sharded_mapping(True))

    def test_non_positive_count_rejected(self):
        with pytest.raises(ScenarioError, match="count"):
            scenario_from_mapping(self._sharded_mapping(0))

    def test_unknown_key_rejected(self):
        with pytest.raises(ScenarioError, match="unknown"):
            scenario_from_mapping(
                self._sharded_mapping({"count": 2, "policy": "hash"})
            )


class TestToShardedExperimentSpec:
    def test_document_plan_carries_through(self):
        spec = scenario_from_mapping(
            minimal_mapping(shards={"count": 2, "router": "least-loaded"})
        )
        sharded = to_sharded_experiment_spec(spec)
        assert sharded.shards == 2
        assert sharded.router == "least-loaded"
        assert sharded.rebalance == "static"
        assert sharded.base.controller == "qs"

    def test_unsharded_document_defaults_to_one_shard(self):
        sharded = to_sharded_experiment_spec(scenario_from_mapping(minimal_mapping()))
        assert sharded.shards == 1

    def test_cli_overrides_beat_the_document(self):
        spec = scenario_from_mapping(minimal_mapping(shards={"count": 2}))
        sharded = to_sharded_experiment_spec(
            spec, shards=3, router="cost-aware", rebalance="interval", seed=42
        )
        assert sharded.shards == 3
        assert sharded.router == "cost-aware"
        assert sharded.rebalance == "interval"
        assert sharded.base.config.seed == 42

    def test_smoke_compresses_base_spec(self):
        spec = scenario_from_mapping(
            minimal_mapping(
                shards={"count": 2},
                schedule={"period_seconds": 120.0, "num_periods": 2},
            )
        )
        sharded = to_sharded_experiment_spec(spec, smoke=True)
        assert sharded.base.schedule.period_seconds == SMOKE_PERIOD_SECONDS
