"""The shipped scenario library: every file loads, validates, round-trips,
and survives a strict-invariant smoke run on the simulator backend."""

import pytest

from repro.experiments.runner import run_spec
from repro.scenarios import (
    find_scenario,
    library_names,
    library_paths,
    load_library_scenario,
    load_scenario,
    loads_scenario,
    scenario_to_yaml,
    to_experiment_spec,
    validate_library,
)
from repro.errors import ScenarioError

pytest.importorskip("yaml")

EXPECTED_NAMES = {
    "adversarial-cost-noise",
    "cancel-storm-under-load",
    "diurnal",
    "flash-crowd",
    "oltp-burst-storm",
    "paper-figure3",
}


def test_library_ships_the_named_scenarios():
    assert EXPECTED_NAMES <= set(library_names())
    assert len(library_names()) >= 6


def test_validate_library_is_clean():
    assert validate_library() == []


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_library_scenario_round_trips(name):
    spec = load_library_scenario(name)
    assert spec.name == name
    assert loads_scenario(scenario_to_yaml(spec)) == spec


@pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
def test_library_scenario_smoke_runs_strict_clean(name):
    spec = load_library_scenario(name)
    assert spec.invariants == "strict"
    assert spec.backend == "sim"
    result = run_spec(to_experiment_spec(spec, smoke=True))
    harness = result.extras["validation"]
    assert harness.violations == []
    assert result.collector.total_completions > 0


def test_paper_figure3_matches_the_reconstructed_schedule():
    from repro.workloads.schedule import paper_schedule

    spec = load_library_scenario("paper-figure3")
    assert spec.resolved_counts() == dict(paper_schedule().counts)


def test_scheduled_faults_actually_inject():
    spec = load_library_scenario("cancel-storm-under-load")
    result = run_spec(to_experiment_spec(spec, smoke=True))
    injector = result.extras["faults"]
    kinds = [entry["fault"] for entry in injector.injected]
    assert kinds.count("cancel_storm") == 2
    assert kinds.count("release_latency_jitter") == 2


def test_find_scenario_accepts_names_and_paths(tmp_path):
    by_name = find_scenario("flash-crowd")
    by_path = find_scenario(str(library_paths()["flash-crowd"]))
    assert by_name == by_path

    with pytest.raises(ScenarioError, match="not one of the library"):
        find_scenario("no-such-scenario")


def test_load_scenario_names_the_file_in_errors(tmp_path):
    bad = tmp_path / "broken.yaml"
    bad.write_text("scenario: 1\nname: broken\n")
    with pytest.raises(ScenarioError, match="broken.yaml"):
        load_scenario(bad)
