"""CLI surface of the scenario subsystem: run/scenarios/sweep."""

import pytest

from repro.cli import main

pytest.importorskip("yaml")


class TestRunScenario:
    def test_run_library_scenario_smoke(self, capsys):
        code = main(["run", "--scenario", "flash-crowd", "--smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "scenario flash-crowd" in out
        assert "invariants=strict" in out
        assert "no violations" in out
        assert "Attainment" in out

    def test_run_scenario_with_faults_reports_injections(self, capsys):
        code = main(["run", "--scenario", "cancel-storm-under-load", "--smoke"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Injected faults (4):" in out
        assert "cancel_storm" in out

    def test_run_scenario_from_a_path(self, tmp_path, capsys):
        from repro.scenarios import find_scenario, save_scenario

        path = tmp_path / "copy.yaml"
        save_scenario(find_scenario("flash-crowd"), path)
        code = main(["run", "--scenario", str(path), "--smoke"])
        assert code == 0
        assert "scenario flash-crowd" in capsys.readouterr().out

    def test_unknown_scenario_is_a_clear_error(self, capsys):
        code = main(["run", "--scenario", "atlantis"])
        err = capsys.readouterr().err
        assert code == 2
        assert "scenario error" in err
        assert "flash-crowd" in err  # lists what IS available

    def test_smoke_without_scenario_rejected(self, capsys):
        code = main(["run", "--smoke"])
        assert code == 2
        assert "--smoke" in capsys.readouterr().err

    def test_scale_flags_conflict_with_scenario(self, capsys):
        code = main(["run", "--scenario", "flash-crowd", "--periods", "3"])
        assert code == 2
        assert "own" in capsys.readouterr().err

    def test_cli_seed_overrides_the_document(self, capsys):
        code = main(
            ["run", "--scenario", "flash-crowd", "--smoke", "--seed", "21"]
        )
        assert code == 0


class TestScenariosCommand:
    def test_lists_the_library(self, capsys):
        code = main(["scenarios"])
        out = capsys.readouterr().out
        assert code == 0
        for name in ("paper-figure3", "flash-crowd", "diurnal",
                     "oltp-burst-storm", "cancel-storm-under-load",
                     "adversarial-cost-noise"):
            assert name in out

    def test_validate_all_reports_clean_library(self, capsys):
        code = main(["scenarios", "--validate-all"])
        out = capsys.readouterr().out
        assert code == 0
        assert "7 of 7 scenarios valid" in out

    def test_validate_all_fails_on_a_broken_file(self, tmp_path, capsys):
        bad = tmp_path / "bad.yaml"
        bad.write_text("scenario: 1\nname: bad\n")
        code = main(["scenarios", "--validate-all", str(bad)])
        captured = capsys.readouterr()
        assert code == 1
        assert "INVALID" in captured.err

    def test_show_one_scenario_with_resolved_counts(self, capsys):
        code = main(["scenarios", "flash-crowd"])
        out = capsys.readouterr().out
        assert code == 0
        assert "clients per period" in out
        assert "class3" in out
        assert "30" in out  # the spike is visible

    def test_show_unknown_scenario_errors(self, capsys):
        code = main(["scenarios", "atlantis"])
        assert code == 2
        assert "scenario error" in capsys.readouterr().err


class TestSweepScenario:
    def test_sweep_over_a_scenario(self, capsys):
        code = main([
            "sweep", "optimizer.noise_sigma", "--values", "0.1", "0.3",
            "--scenario", "flash-crowd", "--smoke", "--quiet",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "over scenario 'flash-crowd'" in out
        assert "optimizer.noise_sigma" in out
        assert "class3" in out

    def test_sweep_smoke_without_scenario_rejected(self, capsys):
        code = main([
            "sweep", "optimizer.noise_sigma", "--values", "0.1", "--smoke",
        ])
        assert code == 2
        assert "--smoke requires --scenario" in capsys.readouterr().err
