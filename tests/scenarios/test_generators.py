"""Client-curve generator tests: shapes, clamping, and parameter checks."""

import pytest

from repro.errors import ScenarioError
from repro.scenarios.generators import (
    GENERATORS,
    constant,
    diurnal,
    flash_crowd,
    ramp,
    resolve_generator,
    step,
)


class TestConstant:
    def test_flat_line(self):
        assert constant({"value": 4}, 5) == [4, 4, 4, 4, 4]

    def test_rounds_and_clamps(self):
        assert constant({"value": 2.6}, 2) == [3, 3]
        assert constant({"value": -1}, 2) == [0, 0]

    def test_missing_value_named_in_error(self):
        with pytest.raises(ScenarioError, match="'constant' needs parameter 'value'"):
            constant({}, 3)

    def test_unknown_param_rejected(self):
        with pytest.raises(ScenarioError, match="unknown parameters"):
            constant({"value": 1, "vale": 2}, 3)


class TestStep:
    def test_strict_alternation_by_default(self):
        assert step({"low": 2, "high": 5}, 6) == [2, 5, 2, 5, 2, 5]

    def test_every_widens_the_plateau(self):
        assert step({"low": 1, "high": 3, "every": 2}, 6) == [1, 1, 3, 3, 1, 1]

    def test_every_must_be_positive(self):
        with pytest.raises(ScenarioError, match="every must be >= 1"):
            step({"low": 1, "high": 2, "every": 0}, 4)


class TestDiurnal:
    def test_full_cycle_returns_to_base(self):
        counts = diurnal({"base": 10, "amplitude": 4, "period": 4}, 8)
        # sin at p=0 is 0 -> base; quarter cycle -> base+amp; half -> base...
        assert counts == [10, 14, 10, 6, 10, 14, 10, 6]

    def test_phase_shifts_the_wave(self):
        shifted = diurnal({"base": 10, "amplitude": 4, "period": 4, "phase": 1}, 4)
        assert shifted == [14, 10, 6, 10]

    def test_never_negative(self):
        counts = diurnal({"base": 1, "amplitude": 10, "period": 4}, 4)
        assert all(c >= 0 for c in counts)

    def test_zero_cycle_rejected(self):
        with pytest.raises(ScenarioError, match="period must be positive"):
            diurnal({"base": 5, "amplitude": 1, "period": 0}, 4)


class TestFlashCrowd:
    def test_spike_holds_then_recovers_instantly(self):
        counts = flash_crowd({"base": 5, "peak": 20, "at": 2, "duration": 2}, 6)
        assert counts == [5, 5, 20, 20, 5, 5]

    def test_ramp_down_decays_linearly(self):
        counts = flash_crowd(
            {"base": 4, "peak": 16, "at": 1, "duration": 1, "ramp_down": 2}, 6
        )
        assert counts[0] == 4
        assert counts[1] == 16
        assert counts[2:4] == [12, 8]  # peak -> base across ramp_down+1 slots
        assert counts[4:] == [4, 4]

    def test_spike_beyond_schedule_rejected(self):
        with pytest.raises(ScenarioError, match="outside 0..3"):
            flash_crowd({"base": 1, "peak": 2, "at": 4}, 4)

    def test_bad_duration_rejected(self):
        with pytest.raises(ScenarioError, match="duration must be >= 1"):
            flash_crowd({"base": 1, "peak": 2, "at": 0, "duration": 0}, 4)


class TestRamp:
    def test_endpoints_are_exact(self):
        counts = ramp({"start": 2, "end": 10}, 5)
        assert counts[0] == 2
        assert counts[-1] == 10
        assert counts == sorted(counts)

    def test_single_period_takes_the_end_value(self):
        assert ramp({"start": 3, "end": 9}, 1) == [9]

    def test_downward_ramp(self):
        assert ramp({"start": 6, "end": 2}, 5) == [6, 5, 4, 3, 2]


class TestResolveGenerator:
    def test_dispatches_by_name(self):
        assert resolve_generator("constant", {"value": 2}, 3) == [2, 2, 2]

    def test_hyphen_alias_for_flash_crowd(self):
        assert GENERATORS["flash-crowd"] is GENERATORS["flash_crowd"]

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ScenarioError, match="unknown client-curve generator"):
            resolve_generator("sawtooth", {}, 3)

    def test_zero_periods_rejected(self):
        with pytest.raises(ScenarioError, match="at least one period"):
            resolve_generator("constant", {"value": 1}, 0)
