"""Tests for the configuration tree."""

import dataclasses

import pytest

from repro.config import (
    AgentConfig,
    MonitorConfig,
    OptimizerConfig,
    OverloadConfig,
    PatrollerConfig,
    PlannerConfig,
    ResourceConfig,
    SimulationConfig,
    WorkloadScaleConfig,
    PAPER_CLASSES,
    default_config,
)
from repro.errors import ConfigurationError


def test_default_config_validates():
    config = default_config()
    assert config.system_cost_limit == 30_000.0
    assert config.resources.cpu_servers == 2
    assert config.resources.disk_servers == 17


def test_defaults_match_paper_testbed_and_goals():
    """xSeries 240: 2 CPUs, 17 disks; 30K timeron system limit; the three
    Section 4 classes."""
    config = default_config()
    assert config.resources.cpu_servers == 2
    assert config.resources.disk_servers == 17
    assert config.system_cost_limit == 30_000.0
    assert PAPER_CLASSES == (
        ("class1", "olap", 0.40, 1),
        ("class2", "olap", 0.60, 2),
        ("class3", "oltp", 0.25, 3),
    )


def test_config_is_frozen():
    config = default_config()
    with pytest.raises(dataclasses.FrozenInstanceError):
        config.seed = 99


def test_with_updates_returns_validated_copy():
    config = default_config()
    updated = config.with_updates(system_cost_limit=40_000.0)
    assert updated.system_cost_limit == 40_000.0
    assert config.system_cost_limit == 30_000.0
    with pytest.raises(ConfigurationError):
        config.with_updates(system_cost_limit=-1.0)


def test_scale_horizon():
    scale = WorkloadScaleConfig(period_seconds=100.0, num_periods=18)
    assert scale.horizon == 1800.0


def test_overload_efficiency_shape():
    overload = OverloadConfig(knee_cost=10_000.0, beta=1.0)
    assert overload.efficiency(5_000.0) == 1.0
    assert overload.efficiency(20_000.0) == pytest.approx(0.5)


def test_optimizer_true_cost():
    optimizer = OptimizerConfig(
        cpu_timerons_per_second=10.0, io_timerons_per_second=5.0, base_cost=2.0
    )
    assert optimizer.true_cost(1.0, 2.0) == pytest.approx(2.0 + 10.0 + 10.0)


@pytest.mark.parametrize(
    "section,kwargs",
    [
        (ResourceConfig, dict(cpu_servers=0)),
        (ResourceConfig, dict(cpu_speed=0.0)),
        (OverloadConfig, dict(knee_cost=0.0)),
        (OverloadConfig, dict(beta=-1.0)),
        (OptimizerConfig, dict(noise_sigma=-1.0)),
        (AgentConfig, dict(max_agents=0)),
        (PatrollerConfig, dict(interception_latency=-1.0)),
        (MonitorConfig, dict(snapshot_interval=0.0)),
        (MonitorConfig, dict(velocity_window=0.0)),
        (MonitorConfig, dict(response_time_window=0.0)),
        (PlannerConfig, dict(control_interval=0.0)),
        (PlannerConfig, dict(grid_timerons=0.0)),
        (PlannerConfig, dict(min_class_limit=-1.0)),
        (PlannerConfig, dict(utility="quadratic")),
        (PlannerConfig, dict(importance_base=0.5)),
        (PlannerConfig, dict(oltp_target_margin=0.0)),
        (PlannerConfig, dict(regression_forgetting=1.5)),
        (WorkloadScaleConfig, dict(period_seconds=0.0)),
        (WorkloadScaleConfig, dict(num_periods=0)),
        (WorkloadScaleConfig, dict(think_time=-1.0)),
    ],
)
def test_invalid_sections_rejected(section, kwargs):
    with pytest.raises(ConfigurationError):
        section(**kwargs).validate()


def test_invalid_section_rejected_through_tree():
    config = SimulationConfig(planner=PlannerConfig(control_interval=-5.0))
    with pytest.raises(ConfigurationError):
        config.validate()


def test_nonpositive_system_limit_rejected():
    with pytest.raises(ConfigurationError):
        SimulationConfig(system_cost_limit=0.0).validate()
