"""Tests for query cancellation (QP cancel command) and client abandonment."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.core.dispatcher import Dispatcher
from repro.core.plan import SchedulingPlan
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, Phase, Query, QueryState
from repro.errors import PatrollerError
from repro.patroller.patroller import QueryPatroller
from repro.patroller.policy import QPStaticPolicy
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.client import ClosedLoopClient
from repro.workloads.spec import QueryFactory, QueryTemplate, WorkloadMix


def make_stack():
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(interception_latency=0.0, release_latency=0.0,
                                  overhead_cpu_demand=0.0)
    )
    engine = DatabaseEngine(sim, config, RandomStreams(51))
    patroller = QueryPatroller(sim, engine, config.patroller)
    patroller.enable_for_class("class1")
    return sim, engine, patroller


_qid = [30000]


def make_query(cost=1_000.0, demand=5.0, class_name="class1"):
    _qid[0] += 1
    return Query(
        query_id=_qid[0],
        class_name=class_name,
        client_id="c",
        template="t",
        kind="olap",
        phases=(Phase(CPU, demand),),
        true_cost=cost,
        estimated_cost=cost,
    )


class TestPatrollerCancel:
    def test_cancel_held_query(self):
        sim, engine, patroller = make_stack()
        patroller.set_release_handler(lambda q: None)
        query = make_query()
        patroller.submit(query)
        sim.run_until(0.1)
        assert patroller.cancel(query)
        assert query.state == QueryState.CANCELLED
        assert patroller.held_queries == 0
        assert patroller.tables.get(query.query_id).status == "cancelled"

    def test_cancel_released_query_refused(self):
        sim, engine, patroller = make_stack()
        patroller.set_release_handler(patroller.release)
        query = make_query()
        patroller.submit(query)
        sim.run_until(0.1)
        assert not patroller.cancel(query)

    def test_cancelled_query_cannot_be_released(self):
        sim, engine, patroller = make_stack()
        patroller.set_release_handler(lambda q: None)
        query = make_query()
        patroller.submit(query)
        sim.run_until(0.1)
        patroller.cancel(query)
        with pytest.raises(PatrollerError):
            patroller.release(query)

    def test_cancelled_query_never_executes(self):
        sim, engine, patroller = make_stack()
        patroller.set_release_handler(lambda q: None)
        query = make_query()
        patroller.submit(query)
        sim.run_until(0.1)
        patroller.cancel(query)
        sim.run_until(60.0)
        assert engine.completed_queries == 0


class TestCancelDuringReleaseWindow:
    """Regression: a query cancelled after release but before its unblock
    event fires must free its dispatcher slot, or the class limit shrinks
    permanently (in_flight_cost/in_flight_count leak)."""

    def make_windowed_stack(self, release_latency=1.0):
        sim = Simulator()
        config = default_config(
            patroller=PatrollerConfig(
                interception_latency=0.0,
                release_latency=release_latency,
                overhead_cpu_demand=0.0,
            )
        )
        engine = DatabaseEngine(sim, config, RandomStreams(55))
        patroller = QueryPatroller(sim, engine, config.patroller)
        patroller.enable_for_class("class1")
        classes = list(paper_classes())
        plan = SchedulingPlan(
            {"class1": 1_000.0, "class2": 1_000.0, "class3": 1_000.0}, 30_000.0
        )
        dispatcher = Dispatcher(patroller, engine, classes, plan)
        patroller.set_release_handler(dispatcher.enqueue)
        return sim, engine, patroller, dispatcher

    def test_cancel_in_window_frees_dispatcher_slot(self):
        sim, engine, patroller, dispatcher = self.make_windowed_stack()
        doomed = make_query(cost=900.0, demand=1.0)
        patroller.submit(doomed)
        sim.run_until(0.1)
        # Released (slot charged) but the unblock event fires at t=1.0.
        assert doomed.state == QueryState.RELEASED
        assert dispatcher.in_flight_count("class1") == 1
        assert dispatcher.in_flight_cost("class1") == pytest.approx(900.0)
        assert patroller.cancel(doomed)
        assert doomed.state == QueryState.CANCELLED
        assert dispatcher.in_flight_count("class1") == 0
        assert dispatcher.in_flight_cost("class1") == 0.0
        assert dispatcher.cancelled_count("class1") == 1
        sim.run_until(10.0)
        assert engine.completed_queries == 0  # never reached the engine

    def test_cancel_in_window_unblocks_successor(self):
        """Without the slot release the class would be wedged: the next
        query's cost no longer fits under the limit."""
        sim, engine, patroller, dispatcher = self.make_windowed_stack()
        doomed = make_query(cost=900.0, demand=1.0)
        successor = make_query(cost=900.0, demand=1.0)
        patroller.submit(doomed)
        sim.run_until(0.1)
        patroller.submit(successor)
        sim.run_until(0.3)
        assert dispatcher.queue_length("class1") == 1  # successor waits
        patroller.cancel(doomed)
        sim.run_until(30.0)
        assert successor.state == QueryState.COMPLETED
        assert engine.completed_queries == 1
        assert dispatcher.released_count("class1") == 2
        assert dispatcher.completed_count("class1") == 1
        assert dispatcher.cancelled_count("class1") == 1
        assert dispatcher.in_flight_count("class1") == 0
        assert dispatcher.in_flight_cost("class1") == 0.0

    def test_cancel_after_execution_starts_refused(self):
        sim, engine, patroller, dispatcher = self.make_windowed_stack()
        query = make_query(cost=900.0, demand=5.0)
        patroller.submit(query)
        sim.run_until(2.0)  # unblock event fired; query is executing
        assert query.state == QueryState.EXECUTING
        assert not patroller.cancel(query)
        assert dispatcher.in_flight_count("class1") == 1

    def test_cancelled_in_window_query_purged_from_monitor(self):
        """The monitor's open-query table must not retain cancelled
        queries (regression: unbounded growth with no OLAP class)."""
        from repro.config import MonitorConfig
        from repro.core.monitor import Monitor

        sim, engine, patroller, dispatcher = self.make_windowed_stack()
        monitor = Monitor(
            sim, engine, list(paper_classes()), MonitorConfig()
        )
        monitor.set_forward(lambda q: None)
        patroller.add_cancel_listener(monitor.on_cancelled)
        doomed = make_query(cost=900.0, demand=1.0)
        patroller.submit(doomed)
        sim.run_until(0.1)
        monitor.on_intercepted(doomed)
        assert monitor.open_queries == 1
        patroller.cancel(doomed)
        assert monitor.open_queries == 0


class TestQueueSkipping:
    def test_dispatcher_skips_cancelled_head(self):
        sim, engine, patroller = make_stack()
        classes = list(paper_classes())
        plan = SchedulingPlan(
            {"class1": 1_000.0, "class2": 1_000.0, "class3": 1_000.0}, 30_000.0
        )
        dispatcher = Dispatcher(patroller, engine, classes, plan)
        patroller.set_release_handler(dispatcher.enqueue)
        blocker = make_query(cost=900.0, demand=1.0)
        doomed = make_query(cost=900.0, demand=1.0)
        survivor = make_query(cost=900.0, demand=1.0)
        for q in (blocker, doomed, survivor):
            patroller.submit(q)
        sim.run_until(0.1)
        assert dispatcher.queue_length("class1") == 2
        patroller.cancel(doomed)
        sim.run_until(30.0)
        # blocker and survivor ran; doomed never did.
        assert engine.completed_queries == 2
        assert survivor.state == QueryState.COMPLETED
        assert doomed.state == QueryState.CANCELLED

    def test_qp_policy_skips_cancelled(self):
        sim, engine, patroller = make_stack()
        policy = QPStaticPolicy(patroller, engine, global_cost_limit=1_000.0)
        blocker = make_query(cost=900.0, demand=1.0)
        doomed = make_query(cost=900.0, demand=1.0)
        patroller.submit(blocker)
        patroller.submit(doomed)
        sim.run_until(0.1)
        patroller.cancel(doomed)
        sim.run_until(30.0)
        assert engine.completed_queries == 1
        assert policy.queued == 0


class TestClientPatience:
    def _client(self, patience):
        sim, engine, patroller = make_stack()
        factory = QueryFactory(engine.estimator, RandomStreams(52))
        mix = WorkloadMix(
            "m", [QueryTemplate("t", "olap", cpu_demand=1.0, io_demand=0.5,
                                variability=0.0)]
        )
        client = ClosedLoopClient(
            sim, patroller, factory, mix, "class1", "c0",
            think_time=0.0, patience=patience,
        )
        return sim, engine, patroller, client

    def test_impatient_client_abandons_held_queries(self):
        sim, engine, patroller, client = self._client(patience=2.0)
        patroller.set_release_handler(lambda q: None)  # nothing ever releases
        client.activate()
        sim.run_until(10.0)
        assert client.queries_abandoned >= 4
        assert client.queries_completed == 0
        # The client keeps resubmitting after each abandonment.
        assert client.queries_submitted == client.queries_abandoned + 1

    def test_patient_enough_client_completes(self):
        sim, engine, patroller, client = self._client(patience=60.0)
        patroller.set_release_handler(patroller.release)
        client.activate()
        sim.run_until(10.0)
        assert client.queries_abandoned == 0
        assert client.queries_completed > 0

    def test_patience_ignores_released_queries(self):
        """A query that got released before the patience timer is left to
        finish normally."""
        sim, engine, patroller, client = self._client(patience=0.5)
        patroller.set_release_handler(patroller.release)  # instant release
        client.activate()
        sim.run_until(5.0)
        assert client.queries_abandoned == 0
        assert client.queries_completed >= 3

    def test_invalid_patience(self):
        with pytest.raises(ValueError):
            self._client(patience=0.0)


def test_abandonment_under_query_scheduler_end_to_end():
    """Full-stack: impatient clients + QS; the system keeps functioning and
    cancelled queries never corrupt the dispatcher accounting."""
    from repro.core.scheduler import QueryScheduler
    from repro.config import MonitorConfig, PlannerConfig

    sim = Simulator()
    config = default_config(
        planner=PlannerConfig(control_interval=10.0),
        monitor=MonitorConfig(snapshot_interval=5.0),
    )
    engine = DatabaseEngine(sim, config, RandomStreams(53))
    patroller = QueryPatroller(sim, engine, config.patroller)
    classes = list(paper_classes())
    scheduler = QueryScheduler(sim, engine, patroller, classes, config)
    factory = QueryFactory(engine.estimator, RandomStreams(54))
    from repro.workloads.tpch import tpch_mix

    clients = [
        ClosedLoopClient(sim, patroller, factory, tpch_mix(), "class1",
                         "c{}".format(i), patience=15.0)
        for i in range(6)
    ]
    scheduler.start()
    for client in clients:
        client.activate()
    sim.run_until(120.0)
    abandoned = sum(c.queries_abandoned for c in clients)
    completed = sum(c.queries_completed for c in clients)
    assert completed > 0
    # Accounting stayed consistent despite any abandonments.
    assert scheduler.dispatcher.in_flight_count("class1") >= 0
    assert scheduler.dispatcher.in_flight_cost("class1") >= 0.0
    assert engine.completed_queries == completed
    assert abandoned + completed <= sum(c.queries_submitted for c in clients)
