"""Public-API integrity checks.

Guards the package surface a downstream user sees: every ``__all__`` name
resolves, carries a docstring, and the headline entry points accept their
documented signatures.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.sim",
    "repro.dbms",
    "repro.patroller",
    "repro.workloads",
    "repro.core",
    "repro.metrics",
    "repro.experiments",
    "repro.validation",
    "repro.obs",
    "repro.scenarios",
    "repro.shard",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_names_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), "{}.{} missing".format(package_name, name)


@pytest.mark.parametrize("package_name", PACKAGES)
def test_public_objects_have_docstrings(package_name):
    package = importlib.import_module(package_name)
    undocumented = []
    for name in package.__all__:
        obj = getattr(package, name)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not (obj.__doc__ or "").strip():
                undocumented.append(name)
    assert undocumented == [], "undocumented public API: {}".format(undocumented)


def test_package_docstrings_reference_the_paper():
    import repro

    assert "Autonomic DBMSs" in repro.__doc__
    assert repro.__version__


def test_public_classes_expose_documented_methods():
    """Spot-check the objects the README shows."""
    from repro import run_experiment, default_config, paper_classes

    signature = inspect.signature(run_experiment)
    assert list(signature.parameters)[:2] == ["controller", "config"]
    config = default_config()
    assert config.system_cost_limit == 30_000.0
    classes = paper_classes()
    assert [c.name for c in classes] == ["class1", "class2", "class3"]


def test_error_hierarchy_rooted_at_repro_error():
    from repro.errors import (
        ConfigurationError,
        InvariantViolation,
        PatrollerError,
        ReproError,
        SchedulingError,
        SimulationError,
        WorkloadError,
    )

    for error in (
        ConfigurationError,
        InvariantViolation,
        PatrollerError,
        SchedulingError,
        SimulationError,
        WorkloadError,
    ):
        assert issubclass(error, ReproError)
        assert issubclass(error, Exception)


def test_controller_names_match_runner():
    from repro.experiments.runner import CONTROLLER_NAMES, make_controller, build_bundle
    from repro.config import WorkloadScaleConfig, default_config
    from repro.workloads.schedule import constant_schedule

    config = default_config(scale=WorkloadScaleConfig(period_seconds=10.0, num_periods=1))
    for name in CONTROLLER_NAMES:
        bundle = build_bundle(
            config=config,
            schedule=constant_schedule(10.0, 1, {"class1": 1, "class2": 1, "class3": 1}),
        )
        controller = make_controller(bundle, name)
        assert hasattr(controller, "start")
        assert hasattr(controller, "describe")
        assert controller.describe()
