"""Tests for closed-loop clients."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.dbms.engine import DatabaseEngine
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.client import ClosedLoopClient
from repro.workloads.spec import QueryFactory, QueryTemplate, WorkloadMix


def make_world(think_time=0.0):
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(
            interception_latency=0.0, release_latency=0.0, overhead_cpu_demand=0.0
        )
    )
    engine = DatabaseEngine(sim, config, RandomStreams(4))
    patroller = QueryPatroller(sim, engine, config.patroller)
    factory = QueryFactory(engine.estimator, RandomStreams(4))
    mix = WorkloadMix(
        "simple",
        [QueryTemplate("one", "oltp", cpu_demand=0.5, io_demand=0.5, variability=0.0)],
    )
    client = ClosedLoopClient(
        sim, patroller, factory, mix, "class3", "c0", think_time=think_time
    )
    return sim, engine, client


def test_inactive_client_submits_nothing():
    sim, engine, client = make_world()
    sim.run_until(10.0)
    assert client.queries_submitted == 0


def test_closed_loop_one_in_flight():
    sim, engine, client = make_world()
    client.activate()
    sim.run_until(10.0)
    # Each query takes 1.0s (0.5 cpu + 0.5 io), zero think time.
    assert client.queries_completed == 10
    assert client.queries_submitted == client.queries_completed + (1 if client.busy else 0)
    assert engine.executing_queries <= 1


def test_zero_think_time_back_to_back():
    sim, engine, client = make_world(think_time=0.0)
    client.activate()
    sim.run_until(5.0)
    assert client.queries_completed == 5


def test_think_time_spaces_submissions():
    sim, engine, client = make_world(think_time=1.0)
    client.activate()
    sim.run_until(10.0)
    # Cycle = 1.0 execution + 1.0 think = 2.0s.
    assert client.queries_completed == 5


def test_deactivate_finishes_current_query_then_stops():
    sim, engine, client = make_world()
    client.activate()
    sim.run_until(0.5)
    client.deactivate()
    sim.run_until(10.0)
    assert client.queries_completed == 1
    assert not client.busy


def test_reactivate_resumes():
    sim, engine, client = make_world()
    client.activate()
    sim.run_until(2.0)
    client.deactivate()
    sim.run_until(5.0)
    completed_while_paused = client.queries_completed
    client.activate()
    sim.run_until(8.0)
    assert client.queries_completed > completed_while_paused


def test_double_activate_does_not_double_submit():
    sim, engine, client = make_world()
    client.activate()
    client.activate()
    sim.run_until(3.0)
    assert client.queries_completed == 3


def test_completion_hook_fires():
    sim, engine, client = make_world()
    seen = []
    client.on_query_complete = lambda q: seen.append(q.query_id)
    client.activate()
    sim.run_until(3.0)
    assert len(seen) == 3


def test_client_tags_queries_with_its_class():
    sim, engine, client = make_world()
    seen = []
    client.on_query_complete = lambda q: seen.append((q.class_name, q.client_id))
    client.activate()
    sim.run_until(2.0)
    assert all(entry == ("class3", "c0") for entry in seen)


def make_pooled_world():
    """A real patroller/engine world driven by a ClientPoolManager whose
    schedule has a zero-client middle period (each query takes 1.0s)."""
    from repro.workloads.schedule import ClientPoolManager, PeriodSchedule

    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(
            interception_latency=0.0, release_latency=0.0, overhead_cpu_demand=0.0
        )
    )
    engine = DatabaseEngine(sim, config, RandomStreams(4))
    patroller = QueryPatroller(sim, engine, config.patroller)
    factory = QueryFactory(engine.estimator, RandomStreams(4))
    mix = WorkloadMix(
        "simple",
        [QueryTemplate("one", "oltp", cpu_demand=0.5, io_demand=0.5, variability=0.0)],
    )

    def build(class_name, client_id):
        return ClosedLoopClient(
            sim, patroller, factory, mix, class_name, client_id
        )

    schedule = PeriodSchedule(4.5, {"class3": [1, 0, 1]})
    manager = ClientPoolManager(sim, schedule, build)
    return sim, engine, manager


def test_pool_deactivation_mid_query_finishes_in_flight_only():
    """Regression: a client deactivated mid-statement finishes that one
    statement and submits nothing more until reactivated."""
    sim, engine, manager = make_pooled_world()
    manager.start()
    # Period boundary at t=4.5 lands mid-way through the client's 5th
    # 1.0s statement (submitted at t=4.0).
    sim.run_until(4.5)
    (client,) = manager.pool("class3")
    assert not client.active
    assert client.busy  # the in-flight statement is still running
    submitted_at_deactivation = client.queries_submitted

    sim.run_until(8.999)  # the idle period elapses (next starts at 9.0)
    assert client.queries_submitted == submitted_at_deactivation
    assert client.queries_completed == submitted_at_deactivation  # it finished
    assert not client.busy
    assert not client.active


def test_pool_reactivation_reuses_the_same_client():
    sim, engine, manager = make_pooled_world()
    manager.start()
    sim.run_until(4.5)
    (paused,) = manager.pool("class3")
    completed_while_paused = None

    sim.run_until(9.0)  # third period begins: count back to 1
    (resumed,) = manager.pool("class3")
    assert resumed is paused  # same object -> same client id
    assert resumed.client_id == "class3-c0"
    assert resumed.active
    completed_while_paused = resumed.queries_completed

    sim.run_until(12.0)
    assert resumed.queries_completed > completed_while_paused
