"""Tests for the period schedule and client pool manager."""

import pytest

from repro.errors import WorkloadError
from repro.sim.engine import Simulator
from repro.workloads.schedule import (
    ClientPoolManager,
    PeriodSchedule,
    constant_schedule,
    paper_schedule,
)


class FakeClient:
    """Minimal stand-in implementing the activate/deactivate protocol."""

    def __init__(self, class_name, client_id):
        self.class_name = class_name
        self.client_id = client_id
        self.active = False
        self.activations = 0

    def activate(self):
        if not self.active:
            self.activations += 1
        self.active = True

    def deactivate(self):
        self.active = False


class TestPeriodSchedule:
    def test_period_lookup(self):
        schedule = PeriodSchedule(10.0, {"a": [1, 2, 3]})
        assert schedule.period_at(0.0) == 0
        assert schedule.period_at(9.999) == 0
        assert schedule.period_at(10.0) == 1
        assert schedule.period_at(25.0) == 2
        assert schedule.period_at(1e6) == 2  # clamped

    def test_count_at(self):
        schedule = PeriodSchedule(10.0, {"a": [1, 2, 3]})
        assert schedule.count_at("a", 5.0) == 1
        assert schedule.count_at("a", 15.0) == 2

    def test_exact_boundaries_belong_to_the_starting_period(self):
        """Regression: t == k * period_seconds maps to period k, never k-1."""
        schedule = PeriodSchedule(10.0, {"a": [1, 2, 3, 4]})
        for k in range(4):
            assert schedule.period_at(k * 10.0) == k

    def test_boundaries_survive_non_binary_period_lengths(self):
        """Regression: boundary lookups when period_seconds has no exact
        float representation, so t / period_seconds can land a hair below
        (or above) the integer boundary."""
        for period_seconds in (0.1, 1.0 / 3.0, 0.7, 8.0 / 3.0, 119.99):
            schedule = PeriodSchedule(period_seconds, {"a": list(range(50))})
            for k in range(50):
                t = k * period_seconds
                assert schedule.period_at(t) == k, (period_seconds, k)
                # A hair into the period still maps to k.
                assert schedule.period_at(t + period_seconds * 1e-9) == k

    def test_horizon_clamps_to_last_period(self):
        schedule = PeriodSchedule(10.0, {"a": [1, 2, 3]})
        assert schedule.period_at(schedule.horizon) == 2
        assert schedule.count_at("a", schedule.horizon + 5.0) == 3

    def test_within_horizon_guard(self):
        schedule = PeriodSchedule(10.0, {"a": [1, 2, 3]})
        assert schedule.within_horizon(0.0)
        assert schedule.within_horizon(29.999)
        assert not schedule.within_horizon(30.0)  # horizon is exclusive
        assert not schedule.within_horizon(31.0)
        assert not schedule.within_horizon(-0.001)

    def test_horizon_and_peak(self):
        schedule = PeriodSchedule(10.0, {"a": [1, 5, 3]})
        assert schedule.horizon == 30.0
        assert schedule.peak_count("a") == 5

    def test_scaled_preserves_shape(self):
        schedule = PeriodSchedule(10.0, {"a": [1, 2]})
        scaled = schedule.scaled(100.0)
        assert scaled.counts == schedule.counts
        assert scaled.horizon == 200.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            PeriodSchedule(0.0, {"a": [1]})
        with pytest.raises(WorkloadError):
            PeriodSchedule(1.0, {})
        with pytest.raises(WorkloadError):
            PeriodSchedule(1.0, {"a": [1, 2], "b": [1]})
        with pytest.raises(WorkloadError):
            PeriodSchedule(1.0, {"a": [-1]})
        with pytest.raises(WorkloadError):
            PeriodSchedule(1.0, {"a": [1]}).period_at(-1.0)


class TestPaperSchedule:
    def test_eighteen_periods_three_classes(self):
        schedule = paper_schedule()
        assert schedule.num_periods == 18
        assert set(schedule.counts) == {"class1", "class2", "class3"}

    def test_oltp_low_medium_high_cycle(self):
        """Highs at 3,6,...,18; lows at 1,4,...,16 (Section 4.3)."""
        counts = paper_schedule().counts["class3"]
        for period in (3, 6, 9, 12, 15, 18):
            assert counts[period - 1] == 25
        for period in (1, 4, 7, 10, 13, 16):
            assert counts[period - 1] == 15
        for period in (2, 5, 8, 11, 14, 17):
            assert counts[period - 1] == 20

    def test_olap_counts_within_2_to_6(self):
        schedule = paper_schedule()
        for name in ("class1", "class2"):
            assert all(2 <= c <= 6 for c in schedule.counts[name])

    def test_period_18_is_heaviest(self):
        """Two Class 1 + six Class 2 + twenty-five Class 3 clients."""
        schedule = paper_schedule()
        assert schedule.counts["class1"][17] == 2
        assert schedule.counts["class2"][17] == 6
        assert schedule.counts["class3"][17] == 25
        totals = [
            schedule.counts["class1"][i]
            + schedule.counts["class2"][i]
            + schedule.counts["class3"][i]
            for i in range(18)
        ]
        assert totals[17] == max(totals)

    def test_period_17_pairs_medium_oltp_with_high_olap(self):
        schedule = paper_schedule()
        assert schedule.counts["class3"][16] == 20
        olap_totals = [
            schedule.counts["class1"][i] + schedule.counts["class2"][i]
            for i in range(18)
        ]
        assert olap_totals[16] == max(olap_totals)


class TestClientPoolManager:
    def _manager(self, counts):
        sim = Simulator()
        schedule = PeriodSchedule(10.0, counts)
        manager = ClientPoolManager(sim, schedule, FakeClient)
        return sim, manager

    def test_initial_period_activates_clients(self):
        sim, manager = self._manager({"a": [3, 1]})
        manager.start()
        sim.run_until(0.0)
        assert manager.active_count("a") == 3

    def test_shrinking_deactivates_extras(self):
        sim, manager = self._manager({"a": [3, 1]})
        manager.start()
        sim.run_until(10.0)
        assert manager.active_count("a") == 1
        assert len(manager.pool("a")) == 3  # clients kept, just idle

    def test_growing_reuses_then_creates(self):
        sim, manager = self._manager({"a": [2, 4]})
        manager.start()
        sim.run_until(0.0)
        first_pool = manager.pool("a")
        sim.run_until(10.0)
        assert manager.active_count("a") == 4
        # The original clients were reused (same objects, stable ids).
        assert manager.pool("a")[:2] == first_pool

    def test_client_ids_stable_and_unique(self):
        sim, manager = self._manager({"a": [2, 3]})
        manager.start()
        sim.run_until(10.0)
        ids = [c.client_id for c in manager.pool("a")]
        assert ids == ["a-c0", "a-c1", "a-c2"]

    def test_double_start_rejected(self):
        sim, manager = self._manager({"a": [1]})
        manager.start()
        with pytest.raises(WorkloadError):
            manager.start()

    def test_zero_count_middle_period_idles_then_reuses_clients(self):
        """Regression: a 0-client middle period deactivates every client;
        the next period reactivates the *same* objects (stable ids, no
        churn), not replacements."""
        sim, manager = self._manager({"a": [2, 0, 2]})
        manager.start()
        sim.run_until(0.0)
        first_pool = manager.pool("a")
        assert manager.active_count("a") == 2

        sim.run_until(10.0)
        assert manager.active_count("a") == 0
        assert len(manager.pool("a")) == 2  # kept, just idle

        sim.run_until(20.0)
        assert manager.active_count("a") == 2
        assert manager.pool("a") == first_pool
        assert [c.client_id for c in manager.pool("a")] == ["a-c0", "a-c1"]
        # Each client was activated exactly twice (once per active period).
        assert [c.activations for c in manager.pool("a")] == [2, 2]

    def test_constant_schedule_helper(self):
        schedule = constant_schedule(5.0, 4, {"x": 7})
        assert schedule.num_periods == 4
        assert all(c == 7 for c in schedule.counts["x"])
