"""Tests for workload trace recording and replay."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.dbms.engine import DatabaseEngine
from repro.errors import WorkloadError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.client import ClosedLoopClient
from repro.workloads.spec import QueryFactory, QueryTemplate, WorkloadMix
from repro.workloads.trace import (
    TraceEntry,
    TraceRecorder,
    TraceReplayer,
    WorkloadTrace,
)


def make_world(seed=71):
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(interception_latency=0.0, release_latency=0.0,
                                  overhead_cpu_demand=0.0)
    )
    engine = DatabaseEngine(sim, config, RandomStreams(seed))
    patroller = QueryPatroller(sim, engine, config.patroller)
    factory = QueryFactory(engine.estimator, RandomStreams(seed))
    mix = WorkloadMix(
        "m",
        [QueryTemplate("fast", "oltp", cpu_demand=0.05, io_demand=0.05,
                       variability=0.3)],
    )
    return sim, engine, patroller, factory, mix


class TestWorkloadTrace:
    def _entry(self, time=1.0):
        return TraceEntry(
            time=time, class_name="c", client_id="cl", template="t", kind="oltp",
            cpu_demand=0.1, io_demand=0.1, rounds=1, parallelism=1,
        )

    def test_append_ordered(self):
        trace = WorkloadTrace()
        trace.append(self._entry(1.0))
        trace.append(self._entry(2.0))
        assert len(trace) == 2
        assert trace.duration == 2.0

    def test_out_of_order_rejected(self):
        trace = WorkloadTrace()
        trace.append(self._entry(5.0))
        with pytest.raises(WorkloadError):
            trace.append(self._entry(4.0))

    def test_json_roundtrip(self):
        trace = WorkloadTrace([self._entry(1.0), self._entry(3.0)])
        restored = WorkloadTrace.from_json(trace.to_json())
        assert restored.entries == trace.entries

    def test_file_roundtrip(self, tmp_path):
        trace = WorkloadTrace([self._entry(1.0)])
        path = str(tmp_path / "trace.json")
        trace.save(path)
        assert WorkloadTrace.load(path).entries == trace.entries

    def test_classes(self):
        trace = WorkloadTrace()
        trace.append(self._entry(1.0))
        trace.append(self._entry(2.0)._replace(class_name="other"))
        assert trace.classes() == ["c", "other"]


class TestRecorder:
    def test_records_closed_loop_submissions(self):
        sim, engine, patroller, factory, mix = make_world()
        recorder = TraceRecorder(sim, patroller)
        client = ClosedLoopClient(sim, patroller, factory, mix, "class3", "c0")
        client.activate()
        sim.run_until(2.0)
        assert len(recorder.trace) == client.queries_submitted
        first = recorder.trace.entries[0]
        assert first.class_name == "class3"
        assert first.template == "fast"
        assert first.cpu_demand > 0


class TestReplayer:
    def test_replay_reproduces_arrival_times_and_demands(self):
        # Record a run...
        sim, engine, patroller, factory, mix = make_world(seed=71)
        recorder = TraceRecorder(sim, patroller)
        client = ClosedLoopClient(sim, patroller, factory, mix, "class3", "c0")
        client.activate()
        sim.run_until(3.0)
        trace = recorder.trace
        original = len(trace)
        assert original > 5

        # ...and replay it against a fresh system with a different seed.
        sim2, engine2, patroller2, factory2, _ = make_world(seed=999)
        recorder2 = TraceRecorder(sim2, patroller2)
        replayer = TraceReplayer(sim2, patroller2, factory2, trace)
        replayer.start()
        sim2.run_until(3.0)
        assert replayer.replayed == original
        times_a = [e.time for e in trace.entries]
        times_b = [e.time for e in recorder2.trace.entries]
        assert times_b == pytest.approx(times_a)
        demands_a = [e.cpu_demand for e in trace.entries]
        demands_b = [e.cpu_demand for e in recorder2.trace.entries]
        assert demands_b == pytest.approx(demands_a)

    def test_time_scale_stretches_replay(self):
        trace = WorkloadTrace([
            TraceEntry(1.0, "class3", "c", "t", "oltp", 0.01, 0.01, 1, 1),
            TraceEntry(2.0, "class3", "c", "t", "oltp", 0.01, 0.01, 1, 1),
        ])
        sim, engine, patroller, factory, _ = make_world()
        replayer = TraceReplayer(sim, patroller, factory, trace, time_scale=2.0)
        replayer.start()
        sim.run_until(3.0)
        assert replayer.replayed == 1  # only the t=2.0 arrival fired
        sim.run_until(4.0)
        assert replayer.replayed == 2

    def test_invalid_time_scale(self):
        sim, engine, patroller, factory, _ = make_world()
        with pytest.raises(WorkloadError):
            TraceReplayer(sim, patroller, factory, WorkloadTrace(), time_scale=0.0)

    def test_double_start_rejected(self):
        sim, engine, patroller, factory, _ = make_world()
        replayer = TraceReplayer(sim, patroller, factory, WorkloadTrace())
        replayer.start()
        with pytest.raises(WorkloadError):
            replayer.start()
