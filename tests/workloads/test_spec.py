"""Tests for workload templates and the query factory."""

import pytest

from repro.config import OptimizerConfig
from repro.dbms.optimizer import CostEstimator
from repro.errors import WorkloadError
from repro.sim.rng import RandomStreams
from repro.workloads.spec import QueryFactory, QueryTemplate, WorkloadMix


def template(name="t1", **kwargs):
    defaults = dict(kind="olap", cpu_demand=2.0, io_demand=4.0, rounds=2,
                    weight=1.0, variability=0.0)
    defaults.update(kwargs)
    return QueryTemplate(name=name, **defaults)


def make_factory(noise=0.0):
    estimator = CostEstimator(OptimizerConfig(noise_sigma=noise), RandomStreams(7))
    return QueryFactory(estimator, RandomStreams(7)), estimator


class TestTemplateValidation:
    def test_valid_template(self):
        template().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="weird"),
            dict(cpu_demand=-1.0),
            dict(cpu_demand=0.0, io_demand=0.0),
            dict(rounds=0),
            dict(weight=0.0),
            dict(variability=-0.5),
            dict(parallelism=0),
        ],
    )
    def test_invalid_templates(self, kwargs):
        with pytest.raises(WorkloadError):
            template(**kwargs).validate()


class TestWorkloadMix:
    def test_lookup_by_name(self):
        mix = WorkloadMix("m", [template("a"), template("b")])
        assert mix.template("a").name == "a"
        assert len(mix) == 2

    def test_unknown_template_rejected(self):
        mix = WorkloadMix("m", [template("a")])
        with pytest.raises(WorkloadError):
            mix.template("zzz")

    def test_empty_mix_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadMix("m", [])

    def test_duplicate_names_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadMix("m", [template("a"), template("a")])

    def test_mean_true_cost_weighted(self):
        _, estimator = make_factory()
        cheap = template("cheap", cpu_demand=1.0, io_demand=1.0, weight=3.0)
        costly = template("costly", cpu_demand=10.0, io_demand=10.0, weight=1.0)
        mix = WorkloadMix("m", [cheap, costly])
        expected = (
            3 * estimator.true_cost(1.0, 1.0) + estimator.true_cost(10.0, 10.0)
        ) / 4
        assert mix.mean_true_cost(estimator) == pytest.approx(expected)


class TestQueryFactory:
    def test_creates_query_with_correct_shape(self):
        factory, estimator = make_factory()
        mix = WorkloadMix("m", [template("t1", rounds=2)])
        query = factory.create(mix, "class1", "client-0")
        assert query.class_name == "class1"
        assert query.client_id == "client-0"
        assert query.template == "t1"
        assert query.kind == "olap"
        assert len(query.phases) == 4  # 2 rounds x (cpu, io)
        assert query.cpu_demand == pytest.approx(2.0)
        assert query.io_demand == pytest.approx(4.0)
        assert query.true_cost == pytest.approx(estimator.true_cost(2.0, 4.0))

    def test_zero_noise_estimate_equals_true_cost(self):
        factory, _ = make_factory(noise=0.0)
        mix = WorkloadMix("m", [template()])
        query = factory.create(mix, "c", "cl")
        assert query.estimated_cost == pytest.approx(query.true_cost)

    def test_ids_are_unique_and_monotone(self):
        factory, _ = make_factory()
        mix = WorkloadMix("m", [template()])
        ids = [factory.create(mix, "c", "cl").query_id for _ in range(10)]
        assert ids == sorted(ids)
        assert len(set(ids)) == 10
        assert factory.queries_created == 10

    def test_explicit_template_selection(self):
        factory, _ = make_factory()
        mix = WorkloadMix("m", [template("a"), template("b")])
        query = factory.create(mix, "c", "cl", template_name="b")
        assert query.template == "b"

    def test_weighted_selection(self):
        factory, _ = make_factory()
        heavy = template("heavy", weight=9.0)
        rare = template("rare", weight=1.0)
        mix = WorkloadMix("m", [heavy, rare])
        names = [factory.create(mix, "c", "cl").template for _ in range(800)]
        share = names.count("heavy") / len(names)
        assert 0.85 < share < 0.95

    def test_variability_perturbs_demands(self):
        factory, _ = make_factory()
        mix = WorkloadMix("m", [template("v", variability=0.5)])
        demands = {factory.create(mix, "c", "cl").cpu_demand for _ in range(20)}
        assert len(demands) == 20

    def test_parallelism_propagates(self):
        factory, _ = make_factory()
        mix = WorkloadMix("m", [template("p", parallelism=3)])
        assert factory.create(mix, "c", "cl").parallelism == 3
