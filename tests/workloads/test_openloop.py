"""Tests for the open-loop Poisson workload source."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.dbms.engine import DatabaseEngine
from repro.errors import WorkloadError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.openloop import OpenLoopSource
from repro.workloads.spec import QueryFactory, QueryTemplate, WorkloadMix


def make_source(rate=5.0):
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(interception_latency=0.0, release_latency=0.0,
                                  overhead_cpu_demand=0.0)
    )
    engine = DatabaseEngine(sim, config, RandomStreams(61))
    patroller = QueryPatroller(sim, engine, config.patroller)
    factory = QueryFactory(engine.estimator, RandomStreams(61))
    mix = WorkloadMix(
        "m", [QueryTemplate("t", "oltp", cpu_demand=0.001, io_demand=0.001,
                            variability=0.0)]
    )
    source = OpenLoopSource(sim, patroller, factory, mix, "class3",
                            RandomStreams(62), rate=rate)
    return sim, engine, source


def test_poisson_rate_approximately_honoured():
    sim, engine, source = make_source(rate=10.0)
    source.start()
    sim.run_until(100.0)
    # ~1000 arrivals expected; allow generous tolerance.
    assert 850 <= source.queries_submitted <= 1150


def test_zero_rate_produces_nothing():
    sim, engine, source = make_source(rate=0.0)
    source.start()
    sim.run_until(20.0)
    assert source.queries_submitted == 0


def test_rate_change_takes_effect():
    sim, engine, source = make_source(rate=2.0)
    source.start()
    sim.run_until(50.0)
    before = source.queries_submitted
    source.set_rate(20.0)
    sim.run_until(100.0)
    later = source.queries_submitted - before
    assert later > before * 3


def test_resume_from_pause():
    sim, engine, source = make_source(rate=5.0)
    source.start()
    sim.run_until(10.0)
    source.set_rate(0.0)
    sim.run_until(30.0)
    paused_count = source.queries_submitted
    source.set_rate(5.0)
    sim.run_until(50.0)
    assert source.queries_submitted > paused_count


def test_stop_halts_arrivals():
    sim, engine, source = make_source(rate=10.0)
    source.start()
    sim.run_until(10.0)
    source.stop()
    count = source.queries_submitted
    sim.run_until(30.0)
    assert source.queries_submitted <= count + 1  # at most one in-flight event


def test_open_loop_does_not_slow_with_server():
    """Open-loop semantics: arrivals keep coming while the server drowns."""
    sim, engine, source = make_source(rate=50.0)
    source.start()
    sim.run_until(30.0)
    assert source.queries_submitted > 1200
    # The engine cannot possibly have kept up... but arrivals continued.
    assert engine.agents.waiting >= 0


def test_invalid_rates():
    with pytest.raises(WorkloadError):
        make_source(rate=-1.0)
    sim, engine, source = make_source(rate=1.0)
    with pytest.raises(WorkloadError):
        source.set_rate(-2.0)


def test_double_start_rejected():
    sim, engine, source = make_source()
    source.start()
    with pytest.raises(WorkloadError):
        source.start()
