"""Tests for the TPC-C-like OLTP workload definition."""

import pytest

from repro.workloads.tpcc import mean_transaction_demand, tpcc_mix, tpcc_template


def test_five_standard_transactions():
    mix = tpcc_mix()
    names = {t.name for t in mix.templates}
    assert names == {"new_order", "payment", "order_status", "delivery", "stock_level"}


def test_standard_mix_percentages():
    mix = tpcc_mix()
    weights = {t.name: t.weight for t in mix.templates}
    assert weights["new_order"] == pytest.approx(45.0)
    assert weights["payment"] == pytest.approx(43.0)
    assert weights["order_status"] == pytest.approx(4.0)
    assert weights["delivery"] == pytest.approx(4.0)
    assert weights["stock_level"] == pytest.approx(4.0)


def test_transactions_are_cpu_leaning_and_serial():
    """Section 3.2: 'OLTP queries are CPU intensive.'"""
    for t in tpcc_mix().templates:
        assert t.kind == "oltp"
        assert t.cpu_demand > t.io_demand
        assert t.parallelism == 1
        assert t.rounds == 1


def test_transactions_are_sub_second():
    """Section 3: OLTP queries have sub-second execution time."""
    for t in tpcc_mix().templates:
        assert t.cpu_demand + t.io_demand < 0.1


def test_mean_demand_helper():
    cpu, io = mean_transaction_demand()
    assert 0.01 < cpu < 0.025
    assert 0.003 < io < 0.01


def test_template_lookup():
    assert tpcc_template("delivery").name == "delivery"
    with pytest.raises(KeyError):
        tpcc_template("refund")
