"""Tests for the TPC-H-like OLAP workload definition."""

import pytest

from repro.config import OptimizerConfig
from repro.dbms.optimizer import CostEstimator
from repro.sim.rng import RandomStreams
from repro.workloads.tpch import (
    TPCH_EXCLUDED,
    OLAP_PARALLELISM,
    tpch_mix,
    tpch_template,
)


def estimator():
    return CostEstimator(OptimizerConfig(noise_sigma=0.0), RandomStreams(1))


def test_default_mix_excludes_the_four_monsters():
    mix = tpch_mix()
    names = {t.name for t in mix.templates}
    assert len(mix) == 18
    for excluded in TPCH_EXCLUDED:
        assert excluded not in names


def test_full_mix_has_all_22():
    mix = tpch_mix(include_excluded=True)
    assert len(mix) == 22


def test_excluded_queries_are_the_most_expensive():
    est = estimator()
    mix = tpch_mix(include_excluded=True)
    costs = {
        t.name: est.true_cost(t.cpu_demand, t.io_demand) for t in mix.templates
    }
    cheapest_excluded = min(costs[name] for name in TPCH_EXCLUDED)
    dearest_included = max(
        cost for name, cost in costs.items() if name not in TPCH_EXCLUDED
    )
    assert cheapest_excluded > dearest_included


def test_templates_are_olap_and_io_leaning():
    for t in tpch_mix().templates:
        assert t.kind == "olap"
        assert t.io_demand > t.cpu_demand
        assert t.parallelism == OLAP_PARALLELISM
        assert t.rounds > 1


def test_costs_span_an_order_of_magnitude():
    """The spread is what gives QP's large/medium/small split meaning."""
    est = estimator()
    costs = [est.true_cost(t.cpu_demand, t.io_demand) for t in tpch_mix().templates]
    assert max(costs) / min(costs) > 5


def test_mean_cost_scale_matches_system_limit():
    """Several concurrent queries must fit under the 30K system limit,
    but a heavy class (6+ clients) must be able to exceed its share."""
    est = estimator()
    mean = tpch_mix().mean_true_cost(est)
    assert 2_000 < mean < 6_000


def test_template_lookup():
    assert tpch_template("q9").name == "q9"
    with pytest.raises(KeyError):
        tpch_template("q99")
