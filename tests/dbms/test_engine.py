"""Tests for the database engine's execution semantics."""

import pytest

from repro.config import default_config, AgentConfig
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, IO, Phase, Query
from repro.errors import SimulationError
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_engine(sim=None, **config_overrides):
    sim = sim or Simulator()
    config = default_config(**config_overrides)
    return sim, DatabaseEngine(sim, config, RandomStreams(seed=1))


def make_query(query_id, phases, cost=100.0, parallelism=1, kind="olap"):
    query = Query(
        query_id=query_id,
        class_name="class1",
        client_id="client-{}".format(query_id),
        template="t",
        kind=kind,
        phases=phases,
        true_cost=cost,
        estimated_cost=cost,
    )
    query.parallelism = parallelism
    return query


def test_single_query_executes_phases_sequentially():
    sim, engine = make_engine()
    query = make_query(1, (Phase(CPU, 2.0), Phase(IO, 3.0)))
    query.submit_time = 0.0
    engine.execute(query)
    sim.run()
    # 2 CPUs and 17 disks idle: phases at full speed, serial.
    assert query.finish_time == pytest.approx(5.0)
    assert query.execution_time == pytest.approx(5.0)
    assert engine.completed_queries == 1


def test_release_time_defaults_to_execute_instant():
    sim, engine = make_engine()
    query = make_query(1, (Phase(CPU, 1.0),))
    query.submit_time = 0.0
    sim.schedule(4.0, lambda: engine.execute(query))
    sim.run()
    assert query.release_time == pytest.approx(4.0)
    assert query.execution_time == pytest.approx(1.0)
    assert query.response_time == pytest.approx(5.0)


def test_cpu_contention_stretches_execution():
    sim, engine = make_engine()
    # 4 CPU-only queries on 2 CPUs: each takes twice its demand.
    queries = [make_query(i, (Phase(CPU, 2.0),)) for i in range(4)]
    for q in queries:
        q.submit_time = 0.0
        engine.execute(q)
    sim.run()
    for q in queries:
        assert q.finish_time == pytest.approx(4.0)


def test_parallel_phase_uses_multiple_servers():
    sim, engine = make_engine()
    query = make_query(1, (Phase(CPU, 2.0),), parallelism=2)
    query.submit_time = 0.0
    engine.execute(query)
    sim.run()
    # 2 sub-jobs of demand 1.0 on 2 idle CPUs: wall clock halves.
    assert query.finish_time == pytest.approx(1.0)


def test_parallel_phase_barrier_before_next_phase():
    sim, engine = make_engine()
    query = make_query(1, (Phase(CPU, 2.0), Phase(IO, 1.0)), parallelism=2)
    query.submit_time = 0.0
    engine.execute(query)
    sim.run()
    # CPU fan-out finishes at 1.0; IO (2 sub-jobs of 0.5) adds 0.5.
    assert query.finish_time == pytest.approx(1.5)


def test_double_execute_rejected():
    sim, engine = make_engine()
    query = make_query(1, (Phase(CPU, 1.0),))
    query.submit_time = 0.0
    engine.execute(query)
    sim.run()
    with pytest.raises(SimulationError):
        engine.execute(query)


def test_completion_listener_and_per_query_callback_order():
    sim, engine = make_engine()
    calls = []
    engine.add_completion_listener(lambda q: calls.append("listener"))
    query = make_query(1, (Phase(CPU, 1.0),))
    query.submit_time = 0.0
    query.on_complete = lambda q: calls.append("query")
    engine.execute(query)
    sim.run()
    assert calls == ["query", "listener"]


def test_executing_cost_by_class():
    sim, engine = make_engine()
    q1 = make_query(1, (Phase(CPU, 5.0),), cost=100.0)
    q2 = make_query(2, (Phase(CPU, 5.0),), cost=50.0)
    q2.class_name = "other"
    for q in (q1, q2):
        q.submit_time = 0.0
        engine.execute(q)
    sim.run_until(1.0)
    assert engine.executing_queries == 2
    assert engine.executing_cost() == pytest.approx(150.0)
    assert engine.executing_cost("class1") == pytest.approx(100.0)
    sim.run()
    assert engine.executing_cost() == 0.0


def test_overload_admission_accounting():
    sim, engine = make_engine()
    query = make_query(1, (Phase(CPU, 1.0),), cost=40000.0)
    query.submit_time = 0.0
    engine.execute(query)
    sim.run_until(0.5)
    assert engine.overload.total_cost == pytest.approx(40000.0)
    assert engine.cpu.efficiency < 1.0  # past the knee
    sim.run()
    assert engine.overload.total_cost == 0.0
    assert engine.cpu.efficiency == 1.0


def test_agent_pool_limits_concurrency():
    sim, engine = make_engine(agents=AgentConfig(max_agents=1))
    first = make_query(1, (Phase(CPU, 2.0),))
    second = make_query(2, (Phase(CPU, 2.0),))
    for q in (first, second):
        q.submit_time = 0.0
        engine.execute(q)
    sim.run()
    # Serialized by the single agent: 2s then 2s.
    assert first.finish_time == pytest.approx(2.0)
    assert second.finish_time == pytest.approx(4.0)


def test_snapshot_monitor_sees_completions():
    sim, engine = make_engine()
    query = make_query(1, (Phase(CPU, 1.0),), kind="oltp")
    query.class_name = "class3"
    query.submit_time = 0.0
    engine.execute(query)
    sim.run()
    samples = engine.snapshot_monitor.snapshot(class_name="class3")
    assert len(samples) == 1
    assert samples[0].response_time == pytest.approx(1.0)
