"""Tests for the snapshot monitor."""

import pytest

from repro.dbms.query import CPU, Phase, Query
from repro.dbms.snapshot import SnapshotMonitor


def completed_query(query_id, client_id, class_name="class3", submit=0.0, finish=1.0):
    query = Query(
        query_id=query_id,
        class_name=class_name,
        client_id=client_id,
        template="t",
        kind="oltp",
        phases=(Phase(CPU, 0.1),),
        true_cost=10.0,
        estimated_cost=10.0,
    )
    query.submit_time = submit
    query.release_time = submit
    query.finish_time = finish
    return query


def test_records_last_statement_per_connection():
    monitor = SnapshotMonitor()
    monitor.record_completion(completed_query(1, "a", finish=1.0))
    monitor.record_completion(completed_query(2, "a", submit=1.0, finish=3.0))
    samples = monitor.snapshot()
    assert len(samples) == 1
    assert samples[0].response_time == pytest.approx(2.0)
    assert monitor.completions_seen == 2
    assert monitor.connections == 1


def test_snapshot_filters_by_class():
    monitor = SnapshotMonitor()
    monitor.record_completion(completed_query(1, "a", class_name="class3"))
    monitor.record_completion(completed_query(2, "b", class_name="class1"))
    assert len(monitor.snapshot(class_name="class3")) == 1
    assert len(monitor.snapshot(class_name="class1")) == 1
    assert len(monitor.snapshot(class_name="nope")) == 0


def test_snapshot_filters_stale_connections():
    monitor = SnapshotMonitor()
    monitor.record_completion(completed_query(1, "a", finish=1.0))
    monitor.record_completion(completed_query(2, "b", finish=50.0))
    fresh = monitor.snapshot(since=10.0)
    assert [s.client_id for s in fresh] == ["b"]


def test_average_response_time():
    monitor = SnapshotMonitor()
    monitor.record_completion(completed_query(1, "a", submit=0.0, finish=1.0))
    monitor.record_completion(completed_query(2, "b", submit=0.0, finish=3.0))
    assert monitor.average_response_time() == pytest.approx(2.0)


def test_average_response_time_none_when_empty():
    monitor = SnapshotMonitor()
    assert monitor.average_response_time() is None
    monitor.record_completion(completed_query(1, "a", class_name="other"))
    assert monitor.average_response_time(class_name="class3") is None


def test_average_reflects_only_most_recent_per_client():
    monitor = SnapshotMonitor()
    monitor.record_completion(completed_query(1, "a", submit=0.0, finish=10.0))
    monitor.record_completion(completed_query(2, "a", submit=10.0, finish=10.5))
    assert monitor.average_response_time() == pytest.approx(0.5)
