"""Tests for the cost estimator."""

import numpy as np
import pytest

from repro.config import OptimizerConfig
from repro.dbms.optimizer import CostEstimator
from repro.errors import ConfigurationError
from repro.sim.rng import RandomStreams


def make_estimator(noise=0.0, **kwargs):
    config = OptimizerConfig(noise_sigma=noise, **kwargs)
    return CostEstimator(config, RandomStreams(seed=5))


def test_true_cost_formula():
    estimator = make_estimator(
        cpu_timerons_per_second=100.0, io_timerons_per_second=40.0, base_cost=25.0
    )
    assert estimator.true_cost(2.0, 3.0) == pytest.approx(25 + 200 + 120)


def test_zero_noise_estimate_is_exact():
    estimator = make_estimator(noise=0.0)
    assert estimator.estimate(1.0, 1.0) == pytest.approx(estimator.true_cost(1.0, 1.0))


def test_noisy_estimates_vary_but_center_on_truth():
    estimator = make_estimator(noise=0.3)
    exact = estimator.true_cost(2.0, 4.0)
    estimates = [estimator.estimate(2.0, 4.0) for _ in range(3000)]
    assert len(set(estimates)) > 2900  # actually noisy
    assert all(e > 0 for e in estimates)
    # Lognormal with median 1: median of estimates near the exact cost.
    assert np.median(estimates) == pytest.approx(exact, rel=0.05)


def test_estimates_counter():
    estimator = make_estimator()
    for _ in range(7):
        estimator.estimate(1.0, 1.0)
    assert estimator.estimates_made == 7


def test_invalid_config_rejected():
    with pytest.raises(ConfigurationError):
        OptimizerConfig(cpu_timerons_per_second=0).validate()
    with pytest.raises(ConfigurationError):
        OptimizerConfig(io_timerons_per_second=-1).validate()
    with pytest.raises(ConfigurationError):
        OptimizerConfig(base_cost=-1).validate()
    with pytest.raises(ConfigurationError):
        OptimizerConfig(noise_sigma=-0.1).validate()
