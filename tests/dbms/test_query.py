"""Tests for query objects, phases and timing metrics."""

import pytest

from repro.dbms.query import CPU, IO, Phase, Query, QueryState, make_phases
from repro.errors import SimulationError


def make_query(phases=None, **kwargs):
    if phases is None:
        phases = (Phase(CPU, 1.0), Phase(IO, 2.0))
    defaults = dict(
        query_id=1,
        class_name="class1",
        client_id="c0",
        template="q1",
        kind="olap",
        phases=phases,
        true_cost=100.0,
        estimated_cost=110.0,
    )
    defaults.update(kwargs)
    return Query(**defaults)


class TestMakePhases:
    def test_single_round(self):
        phases = make_phases(1.0, 2.0, rounds=1)
        assert phases == (Phase(CPU, 1.0), Phase(IO, 2.0))

    def test_multiple_rounds_alternate_and_conserve_demand(self):
        phases = make_phases(4.0, 8.0, rounds=4)
        assert len(phases) == 8
        assert [p.kind for p in phases] == [CPU, IO] * 4
        assert sum(p.demand for p in phases if p.kind == CPU) == pytest.approx(4.0)
        assert sum(p.demand for p in phases if p.kind == IO) == pytest.approx(8.0)

    def test_zero_cpu_omits_cpu_phases(self):
        phases = make_phases(0.0, 6.0, rounds=3)
        assert all(p.kind == IO for p in phases)
        assert len(phases) == 3

    def test_zero_both_yields_single_empty_phase(self):
        phases = make_phases(0.0, 0.0, rounds=2)
        assert len(phases) == 1
        assert phases[0].demand == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(SimulationError):
            make_phases(1.0, 1.0, rounds=0)
        with pytest.raises(SimulationError):
            make_phases(-1.0, 1.0, rounds=1)


class TestQueryLifecycle:
    def test_initial_state(self):
        query = make_query()
        assert query.state == QueryState.CREATED
        assert query.phases_remaining == 2

    def test_next_phase_consumes_in_order(self):
        query = make_query()
        first = query.next_phase()
        second = query.next_phase()
        assert first.kind == CPU
        assert second.kind == IO
        assert query.next_phase() is None

    def test_demand_decomposition(self):
        query = make_query()
        assert query.cpu_demand == pytest.approx(1.0)
        assert query.io_demand == pytest.approx(2.0)

    def test_empty_phases_rejected(self):
        with pytest.raises(SimulationError):
            make_query(phases=())


class TestQueryMetrics:
    def _completed_query(self, submit=0.0, release=10.0, finish=30.0):
        query = make_query()
        query.submit_time = submit
        query.release_time = release
        query.finish_time = finish
        return query

    def test_response_time(self):
        assert self._completed_query().response_time == pytest.approx(30.0)

    def test_execution_time_measured_from_release(self):
        assert self._completed_query().execution_time == pytest.approx(20.0)

    def test_velocity_definition(self):
        # Section 3.1: velocity = execution / response.
        query = self._completed_query(submit=0.0, release=10.0, finish=30.0)
        assert query.velocity == pytest.approx(20.0 / 30.0)

    def test_velocity_is_one_without_hold_time(self):
        query = self._completed_query(submit=5.0, release=5.0, finish=25.0)
        assert query.velocity == pytest.approx(1.0)

    def test_velocity_capped_at_one(self):
        # Degenerate rounding can make execution "exceed" response.
        query = self._completed_query(submit=10.0, release=9.0, finish=30.0)
        assert query.velocity == 1.0

    def test_wait_time(self):
        query = self._completed_query()
        assert query.wait_time == pytest.approx(10.0)

    def test_bypassed_query_uses_submit_as_release(self):
        query = make_query()
        query.submit_time = 2.0
        query.release_time = None
        query.finish_time = 7.0
        assert query.execution_time == pytest.approx(5.0)
        assert query.velocity == 1.0

    def test_metrics_before_completion_raise(self):
        query = make_query()
        query.submit_time = 0.0
        with pytest.raises(SimulationError):
            _ = query.response_time
        with pytest.raises(SimulationError):
            _ = query.execution_time
