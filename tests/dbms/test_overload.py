"""Tests for the thrashing model."""

import pytest

from repro.config import OverloadConfig
from repro.dbms.overload import OverloadModel
from repro.errors import ConfigurationError
from repro.sim.engine import Simulator
from repro.sim.resources import ProcessorSharingResource


def make_model(knee=1000.0, beta=2.0):
    sim = Simulator()
    pools = [
        ProcessorSharingResource(sim, "cpu", 2),
        ProcessorSharingResource(sim, "disk", 4),
    ]
    return OverloadModel(OverloadConfig(knee_cost=knee, beta=beta), pools), pools


def test_efficiency_is_one_below_knee():
    config = OverloadConfig(knee_cost=1000.0, beta=2.0)
    assert config.efficiency(0.0) == 1.0
    assert config.efficiency(999.0) == 1.0
    assert config.efficiency(1000.0) == 1.0


def test_efficiency_degrades_hyperbolically_past_knee():
    config = OverloadConfig(knee_cost=1000.0, beta=2.0)
    # 50% past the knee with beta=2: 1 / (1 + 2*0.5) = 0.5
    assert config.efficiency(1500.0) == pytest.approx(0.5)
    assert config.efficiency(2000.0) == pytest.approx(1.0 / 3.0)


def test_efficiency_monotone_decreasing():
    config = OverloadConfig(knee_cost=1000.0, beta=1.5)
    values = [config.efficiency(c) for c in range(0, 5000, 100)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_admit_retire_tracks_total_and_applies_to_pools():
    model, pools = make_model(knee=1000.0, beta=2.0)
    model.admit(600.0)
    model.admit(600.0)
    assert model.total_cost == pytest.approx(1200.0)
    expected = OverloadConfig(knee_cost=1000.0, beta=2.0).efficiency(1200.0)
    for pool in pools:
        assert pool.efficiency == pytest.approx(expected)
    model.retire(600.0)
    for pool in pools:
        assert pool.efficiency == 1.0


def test_peak_cost_tracked():
    model, _ = make_model()
    model.admit(300.0)
    model.admit(500.0)
    model.retire(300.0)
    assert model.peak_cost == pytest.approx(800.0)


def test_retire_clamps_float_drift():
    model, _ = make_model()
    model.admit(100.0)
    model.retire(100.0 + 1e-9)
    assert model.total_cost == 0.0


def test_invalid_config():
    with pytest.raises(ConfigurationError):
        OverloadConfig(knee_cost=0.0).validate()
    with pytest.raises(ConfigurationError):
        OverloadConfig(beta=-1.0).validate()
