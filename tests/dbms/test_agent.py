"""Tests for the agent pool."""

import pytest

from repro.config import AgentConfig
from repro.dbms.agent import AgentPool
from repro.dbms.query import CPU, Phase, Query
from repro.errors import ConfigurationError, SimulationError


def make_query(query_id):
    return Query(
        query_id=query_id,
        class_name="c",
        client_id="cl",
        template="t",
        kind="oltp",
        phases=(Phase(CPU, 0.1),),
        true_cost=10.0,
        estimated_cost=10.0,
    )


def test_grant_below_capacity_is_synchronous():
    pool = AgentPool(AgentConfig(max_agents=2))
    granted = []
    assert pool.acquire(make_query(1), lambda q: granted.append(q.query_id))
    assert granted == [1]
    assert pool.active == 1


def test_overflow_queues_fifo():
    pool = AgentPool(AgentConfig(max_agents=1))
    granted = []
    pool.acquire(make_query(1), lambda q: granted.append(q.query_id))
    assert not pool.acquire(make_query(2), lambda q: granted.append(q.query_id))
    assert not pool.acquire(make_query(3), lambda q: granted.append(q.query_id))
    assert pool.waiting == 2
    pool.release()
    assert granted == [1, 2]
    pool.release()
    assert granted == [1, 2, 3]
    assert pool.total_waits == 2


def test_release_without_waiters_frees_agent():
    pool = AgentPool(AgentConfig(max_agents=1))
    pool.acquire(make_query(1), lambda q: None)
    assert pool.release() is None
    assert pool.active == 0


def test_release_hands_agent_directly_to_waiter():
    pool = AgentPool(AgentConfig(max_agents=1))
    pool.acquire(make_query(1), lambda q: None)
    pool.acquire(make_query(2), lambda q: None)
    granted = pool.release()
    assert granted is not None and granted.query_id == 2
    assert pool.active == 1  # unchanged: agent moved to the waiter


def test_release_with_no_active_agents_raises():
    pool = AgentPool(AgentConfig(max_agents=1))
    with pytest.raises(SimulationError):
        pool.release()


def test_peak_active_high_water_mark():
    pool = AgentPool(AgentConfig(max_agents=5))
    for i in range(4):
        pool.acquire(make_query(i), lambda q: None)
    for _ in range(4):
        pool.release()
    assert pool.peak_active == 4
    assert pool.active == 0


def test_invalid_config():
    with pytest.raises(ConfigurationError):
        AgentPool(AgentConfig(max_agents=0))
