"""run_until horizon semantics of the real-time timer service.

A late-waking loop thread may observe a wall clock already past the
``run_until`` horizon.  Timers scheduled beyond the horizon must stay
pending for the next ``run_until`` call — firing them early would hand a
later control interval's work to the current one.
"""

from repro.runtime import RealTimeTimerService


class SteppedClock:
    """Manually advanced clock for deterministic timer-service tests."""

    def __init__(self, t=0.0):
        self.t = t

    @property
    def now(self):
        return self.t


def test_timer_beyond_horizon_does_not_fire_when_clock_overshoots():
    # The loop thread wakes with the clock already at t=10 (e.g. a long
    # callback stalled it), but this run_until call's horizon is t=2: the
    # timer due at t=5 belongs to a later call.
    clock = SteppedClock(t=10.0)
    service = RealTimeTimerService(clock)
    fired = []
    service.schedule_at(5.0, lambda: fired.append("late"), "late")
    service.run_until(2.0)
    assert fired == []
    assert service.pending_events == 1
    assert service.fired_events == 0
    # The next call whose horizon covers it fires it normally.
    service.run_until(10.0)
    assert fired == ["late"]
    assert service.pending_events == 0


def test_overdue_timers_within_horizon_fire_in_schedule_order():
    clock = SteppedClock(t=10.0)
    service = RealTimeTimerService(clock)
    fired = []
    service.schedule_at(6.0, lambda: fired.append("b"), "b")
    service.schedule_at(3.0, lambda: fired.append("a"), "a")
    service.schedule_at(12.0, lambda: fired.append("future"), "future")
    service.run_until(10.0)
    # Both overdue timers fire, earliest due time first; the t=12 timer
    # is past the horizon (and the clock) so it stays pending.
    assert fired == ["a", "b"]
    assert service.pending_events == 1


def test_timer_exactly_at_horizon_fires():
    clock = SteppedClock(t=10.0)
    service = RealTimeTimerService(clock)
    fired = []
    service.schedule_at(2.0, lambda: fired.append("edge"), "edge")
    service.run_until(2.0)
    assert fired == ["edge"]


def test_cancelled_timer_beyond_horizon_is_not_resurrected():
    clock = SteppedClock(t=10.0)
    service = RealTimeTimerService(clock)
    fired = []
    handle = service.schedule_at(5.0, lambda: fired.append("x"), "x")
    service.run_until(2.0)
    assert handle.active
    handle.cancel()
    service.run_until(10.0)
    assert fired == []
    assert service.pending_events == 0
