"""Fixed-seed regression pin: the backend refactor must not move the sim.

The golden values below were captured from a seeded run of the
quality-of-service controller *before* the execution-backend abstraction
was introduced.  Routing the same experiment through
``SimulationBackend`` must reproduce every per-period performance value,
the attainment summary, and each of the eight planner decisions exactly
(plans to the timeron; performance bit-for-bit).  Any drift means the
refactor changed construction order, RNG stream consumption, or event
scheduling — all of which are supposed to be frozen.
"""

from __future__ import annotations

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.runner import ExperimentSpec, run_spec

GOLDEN_SERIES = {
    "class1": [
        0.8189156687404642,
        0.8028275232882622,
        0.9926235876932769,
        0.8271969992774236,
    ],
    "class2": [
        0.9863158377018575,
        0.9308861785479271,
        0.8857358290065854,
        0.9223383901311384,
    ],
    "class3": [
        0.15654974726244833,
        0.2237474263066036,
        0.2598878320343518,
        0.1811418679260822,
    ],
}

GOLDEN_ATTAINMENT = {"class1": 1.0, "class2": 1.0, "class3": 0.75}

#: Planner cost-limit decisions, in decision order, rounded to the timeron.
GOLDEN_PLANS = [
    {"class1": 14000, "class2": 15000, "class3": 1000},
    {"class1": 13000, "class2": 16000, "class3": 1000},
    {"class1": 14000, "class2": 15000, "class3": 1000},
    {"class1": 13000, "class2": 16000, "class3": 1000},
    {"class1": 7000, "class2": 11000, "class3": 12000},
    {"class1": 8000, "class2": 13000, "class3": 9000},
    {"class1": 8000, "class2": 15000, "class3": 7000},
    {"class1": 8000, "class2": 17000, "class3": 5000},
]


def _golden_spec() -> ExperimentSpec:
    config = default_config(
        seed=11,
        scale=WorkloadScaleConfig(period_seconds=60.0, num_periods=4),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=30.0),
    )
    return ExperimentSpec(controller="qs", config=config, backend="sim")


def test_seeded_sim_run_matches_pre_refactor_golden_data():
    result = run_spec(_golden_spec())

    series = result.performance_series()
    assert set(series) == set(GOLDEN_SERIES)
    for class_name, golden in GOLDEN_SERIES.items():
        assert series[class_name] == golden, class_name

    assert result.goal_attainment() == GOLDEN_ATTAINMENT

    plans = [
        {name: round(limit) for name, limit in limits.items()}
        for _, limits in result.collector._plan_points
    ]
    assert plans == GOLDEN_PLANS


def test_seeded_sim_run_is_reproducible_across_invocations():
    first = run_spec(_golden_spec())
    second = run_spec(_golden_spec())
    assert first.performance_series() == second.performance_series()
    assert first.collector._plan_points == second.collector._plan_points
    assert (
        first.bundle.engine.completed_queries
        == second.bundle.engine.completed_queries
    )


def test_backend_object_is_attached_to_bundle():
    result = run_spec(_golden_spec())
    backend = result.bundle.backend
    assert backend is not None and backend.name == "sim"
    # The bundle's sim and engine are the backend's own.
    assert result.bundle.sim is backend.timers
    assert result.bundle.engine is backend.engine
    assert backend.clock.now == pytest.approx(result.bundle.sim.now)
