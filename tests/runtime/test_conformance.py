"""The backend-conformance suite, run against both shipped backends."""

from __future__ import annotations

import pytest

from repro.config import SimulationConfig, default_config
from repro.runtime import make_backend, run_conformance
from repro.runtime.conformance import CONFORMANCE_CHECKS
from repro.sim.rng import RandomStreams

#: Noise-free optimizer so estimated costs are exactly checkable.
def _config() -> SimulationConfig:
    config = default_config(seed=5)
    return config


def _factory(name):
    def build():
        options = {}
        if name == "sqlite":
            # Small data + few workers keep each check sub-second.
            options = dict(workers=4, lineitem_rows=300, stock_rows=100)
        return make_backend(name, _config(), RandomStreams(5), **options)

    return build


@pytest.mark.parametrize("backend_name", ["sim", "sqlite"])
@pytest.mark.parametrize("check_name", sorted(CONFORMANCE_CHECKS))
def test_conformance_check_passes(backend_name, check_name):
    backend = _factory(backend_name)()
    try:
        problems = CONFORMANCE_CHECKS[check_name](backend)
    finally:
        backend.close()
    assert problems == []


@pytest.mark.parametrize("backend_name", ["sim", "sqlite"])
def test_full_suite_via_runner(backend_name):
    results = run_conformance(_factory(backend_name))
    assert set(results) == set(CONFORMANCE_CHECKS)
    assert all(problems == [] for problems in results.values()), results


def test_backend_names_match_protocol():
    sim = _factory("sim")()
    sqlite = _factory("sqlite")()
    try:
        assert sim.name == "sim"
        assert sqlite.name == "sqlite"
        # clock/timers/engine are live on both.
        for backend in (sim, sqlite):
            assert backend.clock.now >= 0.0
            assert backend.timers.now >= 0.0
            assert backend.engine.executing_queries == 0
    finally:
        sim.close()
        sqlite.close()


def test_unknown_backend_rejected():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        make_backend("oracle", _config(), RandomStreams(5))
