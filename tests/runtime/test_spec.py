"""ExperimentSpec and the backward-compatible ``run_experiment`` shim."""

from __future__ import annotations

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.errors import ConfigurationError
from repro.experiments.runner import ExperimentSpec, run_experiment, run_spec


def _cheap_config(seed=13):
    return default_config(
        seed=seed,
        scale=WorkloadScaleConfig(period_seconds=40.0, num_periods=2),
        monitor=MonitorConfig(snapshot_interval=10.0, response_time_window=15.0),
        planner=PlannerConfig(control_interval=20.0),
    )


def test_spec_defaults():
    spec = ExperimentSpec()
    assert spec.controller == "qs"
    assert spec.backend == "sim"
    assert spec.backend_options == {}
    assert spec.invariants == "off"
    assert spec.horizon is None


def test_with_overrides_returns_new_spec():
    spec = ExperimentSpec(controller="none", invariants="warn")
    other = spec.with_overrides(controller="qs")
    assert other.controller == "qs"
    assert other.invariants == "warn"  # untouched fields carried over
    assert spec.controller == "none"  # original unchanged


def test_old_kwargs_and_spec_produce_identical_runs():
    old = run_experiment(controller="qs", config=_cheap_config())
    new = run_spec(ExperimentSpec(controller="qs", config=_cheap_config()))
    assert old.goal_attainment() == new.goal_attainment()
    assert old.performance_series() == new.performance_series()
    assert (
        old.bundle.engine.completed_queries == new.bundle.engine.completed_queries
    )


def test_run_experiment_spec_kwarg_wins():
    spec = ExperimentSpec(controller="mpl", config=_cheap_config())
    via_spec = run_experiment(spec=spec)
    direct = run_spec(ExperimentSpec(controller="mpl", config=_cheap_config()))
    assert via_spec.goal_attainment() == direct.goal_attainment()


def test_unknown_backend_in_spec_rejected():
    with pytest.raises(ConfigurationError):
        run_spec(ExperimentSpec(config=_cheap_config(), backend="postgres"))
