"""Real-time timer service semantics and an end-to-end SQLite run."""

from __future__ import annotations

import threading

import pytest

from repro.config import (
    MonitorConfig,
    PatrollerConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.errors import SimulationError
from repro.experiments.runner import ExperimentSpec, run_spec
from repro.runtime import RealTimeTimerService, WallClock
from repro.runtime.clock import CallableClock, as_clock


class SteppedClock:
    """Manually advanced clock for deterministic timer-service tests."""

    def __init__(self):
        self.t = 0.0

    @property
    def now(self):
        return self.t


def test_wall_clock_starts_near_zero_and_advances():
    clock = WallClock()
    first = clock.now
    assert 0.0 <= first < 1.0
    assert clock.now >= first


def test_as_clock_coercions():
    wall = WallClock()
    assert as_clock(wall) is wall
    wrapped = as_clock(lambda: 4.5)
    assert isinstance(wrapped, CallableClock)
    assert wrapped.now == 4.5
    assert as_clock(None).now >= 0.0


def test_timer_service_fires_in_order_with_fake_clock():
    clock = SteppedClock()
    timers = RealTimeTimerService(clock)
    fired = []
    timers.schedule_at(0.2, lambda: fired.append("b"))
    timers.schedule_at(0.1, lambda: fired.append("a"))
    timers.schedule_at(0.2, lambda: fired.append("c"))
    # With the clock pinned at 0, run_until(0) fires nothing.
    timers.run_until(0.0)
    assert fired == []
    clock.t = 0.3
    timers.run_until(0.3)
    assert fired == ["a", "b", "c"]
    assert timers.fired_events == 3
    assert timers.pending_events == 0


def test_timer_service_negative_delay_rejected():
    timers = RealTimeTimerService(SteppedClock())
    with pytest.raises(SimulationError):
        timers.schedule(-0.1, lambda: None)


def test_timer_service_past_due_time_clamps_to_immediate():
    clock = SteppedClock()
    clock.t = 5.0
    timers = RealTimeTimerService(clock)
    fired = []
    timers.schedule_at(1.0, lambda: fired.append("late"))
    timers.run_until(5.0)
    assert fired == ["late"]


def test_timer_service_cancellation():
    clock = SteppedClock()
    timers = RealTimeTimerService(clock)
    fired = []
    handle = timers.schedule_at(0.1, lambda: fired.append("x"))
    assert handle.active
    assert handle.cancel() is True
    assert handle.cancel() is False
    assert not handle.active
    clock.t = 1.0
    timers.run_until(1.0)
    assert fired == []


def test_timer_service_cross_thread_schedule_wakes_loop():
    timers = RealTimeTimerService()  # real wall clock
    fired_at = []

    def poke():
        timers.schedule(0.0, lambda: fired_at.append(timers.now), label="x-thread")

    threading.Timer(0.05, poke).start()
    # The loop is sleeping with nothing scheduled; the cross-thread
    # schedule must wake it and fire well before the 0.5s horizon.
    timers.run_until(timers.now + 0.5)
    assert fired_at and fired_at[0] < 0.4


def test_run_until_is_not_reentrant():
    clock = SteppedClock()
    timers = RealTimeTimerService(clock)
    errors = []

    def reenter():
        try:
            timers.run_until(clock.now)
        except SimulationError as exc:
            errors.append(str(exc))

    timers.schedule_at(0.0, reenter)
    clock.t = 0.1
    timers.run_until(0.1)
    assert len(errors) == 1


def _sqlite_spec(controller="qs", invariants="strict"):
    config = default_config(
        seed=3,
        scale=WorkloadScaleConfig(period_seconds=1.0, num_periods=2, think_time=0.0),
        monitor=MonitorConfig(snapshot_interval=0.25, response_time_window=1.0),
        planner=PlannerConfig(control_interval=0.5),
        patroller=PatrollerConfig(interception_latency=0.02, release_latency=0.01),
    )
    return ExperimentSpec(
        controller=controller,
        config=config,
        invariants=invariants,
        backend="sqlite",
        backend_options=dict(workers=4, lineitem_rows=300, stock_rows=100),
    )


def test_sqlite_experiment_end_to_end():
    result = run_spec(_sqlite_spec())
    engine = result.bundle.engine
    # Real statements ran and every started query was retired.
    assert engine.completed_queries > 0
    assert engine.statements_issued > 0
    assert engine.execution_errors == 0, engine.last_error
    # Queries still in flight at the horizon are allowed; the live
    # accounting must agree with the per-query snapshot either way.
    snapshot = engine.executing_snapshot()
    assert len(snapshot) == engine.executing_queries
    assert engine.executing_cost() == pytest.approx(
        sum(entry.estimated_cost for entry in snapshot)
    )
    # Strict invariants rode along without raising.
    harness = result.extras["validation"]
    assert harness.checks_run >= 1
    assert [v for v in harness.violations] == []
    # The goal-attainment report is computable for every class.
    attainment = result.goal_attainment()
    assert set(attainment) == {c.name for c in result.classes}
    # The backend was closed by run_spec (idempotent second close).
    result.bundle.close()


def test_sqlite_oltp_queries_are_fast_and_measured():
    result = run_spec(_sqlite_spec())
    collector = result.collector
    # OLTP completions exist and their measured response times are
    # wall-clock milliseconds, far under the 250 ms goal.
    oltp = [c for c in result.classes if c.kind == "oltp"]
    assert oltp
    attainment = result.goal_attainment()
    for service_class in oltp:
        assert attainment[service_class.name] > 0.0
    assert collector.total_completions == result.bundle.engine.completed_queries
