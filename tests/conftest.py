"""Shared fixtures: small, fast simulation configurations.

Unit tests use hand-built micro-scenarios; integration tests use the
``quick_config`` fixture (short periods, few clients) so the whole suite
stays fast while still exercising the full pipeline.
"""

from __future__ import annotations

import pytest

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    SimulationConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.core.service_class import paper_classes
from repro.dbms.engine import DatabaseEngine
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams
from repro.workloads.schedule import constant_schedule
from repro.workloads.spec import QueryFactory


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def rng() -> RandomStreams:
    return RandomStreams(seed=123)


@pytest.fixture
def quick_config() -> SimulationConfig:
    """A scaled-down configuration for integration tests."""
    return default_config(
        scale=WorkloadScaleConfig(period_seconds=40.0, num_periods=3),
        monitor=MonitorConfig(snapshot_interval=5.0, velocity_window=40.0,
                              response_time_window=20.0),
        planner=PlannerConfig(control_interval=20.0),
    )


@pytest.fixture
def engine(sim, quick_config, rng) -> DatabaseEngine:
    return DatabaseEngine(sim, quick_config, rng)


@pytest.fixture
def patroller(sim, engine, quick_config) -> QueryPatroller:
    return QueryPatroller(sim, engine, quick_config.patroller)


@pytest.fixture
def factory(engine, rng) -> QueryFactory:
    return QueryFactory(engine.estimator, rng)


@pytest.fixture
def three_classes():
    return list(paper_classes())


@pytest.fixture
def tiny_schedule():
    """Three 40-second periods with small client counts."""
    return constant_schedule(
        40.0, 3, {"class1": 2, "class2": 2, "class3": 8}
    )
