"""Tests for the Query Patroller interception layer."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, IO, Phase, Query, QueryState
from repro.errors import PatrollerError
from repro.patroller.patroller import QueryPatroller
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_stack(patroller_config=None):
    sim = Simulator()
    config = default_config()
    if patroller_config is not None:
        config = config.with_updates(patroller=patroller_config)
    engine = DatabaseEngine(sim, config, RandomStreams(seed=2))
    patroller = QueryPatroller(sim, engine, config.patroller)
    return sim, engine, patroller


def make_query(query_id=1, class_name="class1"):
    return Query(
        query_id=query_id,
        class_name=class_name,
        client_id="c0",
        template="q1",
        kind="olap",
        phases=(Phase(CPU, 1.0), Phase(IO, 1.0)),
        true_cost=100.0,
        estimated_cost=100.0,
    )


def test_bypass_goes_straight_to_engine():
    sim, engine, patroller = make_stack()
    query = make_query(class_name="class3")
    patroller.submit(query)
    sim.run()
    assert patroller.bypassed_count == 1
    assert patroller.intercepted_count == 0
    assert query.finish_time == pytest.approx(2.0)
    assert query.velocity == 1.0  # no hold, no overhead


def test_interception_blocks_until_release():
    sim, engine, patroller = make_stack()
    patroller.enable_for_class("class1")
    held = []
    patroller.set_release_handler(held.append)
    query = make_query()
    patroller.submit(query)
    sim.run()
    assert held == [query]
    assert query.state == QueryState.QUEUED
    assert query.finish_time is None
    assert patroller.held_queries == 1
    assert len(patroller.tables) == 1


def test_interception_latency_applied():
    config = PatrollerConfig(interception_latency=0.5, release_latency=0.0,
                             overhead_cpu_demand=0.0)
    sim, engine, patroller = make_stack(config)
    patroller.enable_for_class("class1")
    patroller.set_release_handler(lambda q: None)
    query = make_query()
    patroller.submit(query)
    sim.run()
    assert query.intercept_time == pytest.approx(0.5)


def test_release_executes_and_marks_tables():
    sim, engine, patroller = make_stack()
    patroller.enable_for_class("class1")
    patroller.set_release_handler(lambda q: None)
    query = make_query()
    patroller.submit(query)
    sim.run()
    patroller.release(query)
    sim.run()
    assert query.state == QueryState.COMPLETED
    assert patroller.held_queries == 0
    assert patroller.tables.get(query.query_id).status == "completed"


def test_release_latency_counts_as_execution_time():
    config = PatrollerConfig(interception_latency=0.2, release_latency=0.3,
                             overhead_cpu_demand=0.0)
    sim, engine, patroller = make_stack(config)
    patroller.enable_for_class("class1")
    patroller.set_release_handler(lambda q: None)
    query = make_query()
    patroller.submit(query)
    sim.run()
    release_at = sim.now
    patroller.release(query)
    sim.run()
    assert query.release_time == pytest.approx(release_at)
    # Execution = release latency + 2s of phases.
    assert query.execution_time == pytest.approx(0.3 + 2.0)


def test_interception_overhead_charged_to_statement():
    config = PatrollerConfig(interception_latency=0.0, release_latency=0.0,
                             overhead_cpu_demand=0.25)
    sim, engine, patroller = make_stack(config)
    patroller.enable_for_class("class1")
    patroller.set_release_handler(patroller.release)  # release immediately
    query = make_query()
    patroller.submit(query)
    sim.run()
    # 0.25 overhead + 1.0 CPU + 1.0 IO.
    assert query.execution_time == pytest.approx(2.25)
    assert query.cpu_demand == pytest.approx(1.25)


def test_release_unknown_query_rejected():
    sim, engine, patroller = make_stack()
    with pytest.raises(PatrollerError):
        patroller.release(make_query())


def test_double_release_rejected():
    sim, engine, patroller = make_stack()
    patroller.enable_for_class("class1")
    patroller.set_release_handler(lambda q: None)
    query = make_query()
    patroller.submit(query)
    sim.run()
    patroller.release(query)
    with pytest.raises(PatrollerError):
        patroller.release(query)


def test_interception_without_handler_raises():
    sim, engine, patroller = make_stack()
    patroller.enable_for_class("class1")
    patroller.submit(make_query())
    with pytest.raises(PatrollerError):
        sim.run()


def test_enable_disable_class():
    sim, engine, patroller = make_stack()
    patroller.enable_for_class("class1")
    assert patroller.intercepts("class1")
    patroller.disable_for_class("class1")
    assert not patroller.intercepts("class1")
    query = make_query()
    patroller.submit(query)
    sim.run()
    assert patroller.bypassed_count == 1


def test_oltp_interception_overhead_dominates_sub_second_query():
    """Section 3: interception overhead outweighs OLTP execution time."""
    config = PatrollerConfig()  # defaults: 0.2s latency + 0.05 release + 0.03 cpu
    sim, engine, patroller = make_stack(config)
    patroller.enable_for_class("class3")
    patroller.set_release_handler(patroller.release)
    query = Query(
        query_id=1,
        class_name="class3",
        client_id="c0",
        template="payment",
        kind="oltp",
        phases=(Phase(CPU, 0.012), Phase(IO, 0.004)),
        true_cost=30.0,
        estimated_cost=30.0,
    )
    patroller.submit(query)
    sim.run()
    bare_execution = 0.012 + 0.004
    overhead = query.response_time - bare_execution
    assert overhead > 5 * bare_execution
