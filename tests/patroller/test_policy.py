"""Tests for QP's static control policy (groups, priorities, cost limit)."""

import pytest

from repro.config import PatrollerConfig, default_config
from repro.dbms.engine import DatabaseEngine
from repro.dbms.query import CPU, Phase, Query
from repro.errors import ConfigurationError
from repro.patroller.patroller import QueryPatroller
from repro.patroller.policy import (
    CostGroup,
    QPStaticPolicy,
    percentile_thresholds,
    standard_groups,
)
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


def make_stack():
    sim = Simulator()
    config = default_config(
        patroller=PatrollerConfig(
            interception_latency=0.0, release_latency=0.0, overhead_cpu_demand=0.0
        )
    )
    engine = DatabaseEngine(sim, config, RandomStreams(seed=3))
    patroller = QueryPatroller(sim, engine, config.patroller)
    patroller.enable_for_class("class1")
    patroller.enable_for_class("class2")
    return sim, engine, patroller


def make_query(query_id, cost, class_name="class1", demand=10.0):
    return Query(
        query_id=query_id,
        class_name=class_name,
        client_id="c{}".format(query_id),
        template="t",
        kind="olap",
        phases=(Phase(CPU, demand),),
        true_cost=cost,
        estimated_cost=cost,
    )


class TestThresholds:
    def test_percentile_split(self):
        costs = list(range(1, 101))  # 1..100
        small_upper, medium_upper = percentile_thresholds(costs)
        assert medium_upper == pytest.approx(95.05, abs=0.5)
        assert small_upper == pytest.approx(80.2, abs=0.5)

    def test_standard_groups_cover_all_costs(self):
        groups = standard_groups([10.0, 20.0, 100.0, 1000.0])
        assert [g.name for g in groups] == ["small", "medium", "large"]
        for cost in (1.0, 50.0, 1e6):
            assert any(g.contains(cost) for g in groups)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            percentile_thresholds([])
        with pytest.raises(ConfigurationError):
            percentile_thresholds([1.0], large_fraction=0.6, medium_fraction=0.5)
        with pytest.raises(ConfigurationError):
            CostGroup("bad", 5.0, 5.0, 1).validate()
        with pytest.raises(ConfigurationError):
            CostGroup("bad", 0.0, 5.0, 0).validate()


class TestGlobalCostLimit:
    def test_release_up_to_limit_then_queue(self):
        sim, engine, patroller = make_stack()
        policy = QPStaticPolicy(patroller, engine, global_cost_limit=250.0)
        for query_id in (1, 2, 3):
            patroller.submit(make_query(query_id, 100.0))
        sim.run_until(1.0)
        assert policy.released == 2
        assert policy.queued == 1
        sim.run()  # completions free budget; the third releases
        assert policy.released == 3

    def test_oversized_query_runs_alone(self):
        sim, engine, patroller = make_stack()
        policy = QPStaticPolicy(patroller, engine, global_cost_limit=100.0)
        patroller.submit(make_query(1, 500.0))
        sim.run()
        assert policy.released == 1

    def test_oversized_query_waits_for_empty_system(self):
        sim, engine, patroller = make_stack()
        policy = QPStaticPolicy(patroller, engine, global_cost_limit=100.0)
        patroller.submit(make_query(1, 80.0, demand=5.0))
        patroller.submit(make_query(2, 500.0, demand=5.0))
        sim.run_until(1.0)
        assert policy.released == 1
        sim.run()
        assert policy.released == 2


class TestGroups:
    def test_group_slots_bind(self):
        sim, engine, patroller = make_stack()
        groups = [CostGroup("small", 0.0, 200.0, 1), CostGroup("large", 200.0, float("inf"), 1)]
        policy = QPStaticPolicy(patroller, engine, groups=groups)
        patroller.submit(make_query(1, 100.0))
        patroller.submit(make_query(2, 120.0))  # same group, slot taken
        patroller.submit(make_query(3, 500.0))  # other group, free slot
        sim.run_until(1.0)
        assert policy.released == 2
        assert policy.queued == 1
        assert policy.group_for(100.0).name == "small"
        assert policy.group_for(500.0).name == "large"

    def test_no_head_of_line_blocking_across_groups(self):
        sim, engine, patroller = make_stack()
        groups = [CostGroup("small", 0.0, 200.0, 1), CostGroup("large", 200.0, float("inf"), 1)]
        policy = QPStaticPolicy(patroller, engine, groups=groups)
        patroller.submit(make_query(1, 100.0))
        patroller.submit(make_query(2, 120.0))  # blocked: small slot busy
        patroller.submit(make_query(3, 500.0))  # must pass query 2
        sim.run_until(1.0)
        released_ids = sorted(
            record.query_id
            for record in patroller.tables.fetch_since(0)
            if record.status != "queued"
        )
        assert released_ids == [1, 3]


class TestPriorities:
    def test_higher_priority_class_releases_first(self):
        sim, engine, patroller = make_stack()
        policy = QPStaticPolicy(
            patroller,
            engine,
            priorities={"class1": 1, "class2": 2},
            global_cost_limit=100.0,
        )
        order = []
        original_release = patroller.release

        def tracking_release(query):
            order.append(query.class_name)
            original_release(query)

        patroller.release = tracking_release
        # Fill the system so both queue, then watch release order.
        patroller.submit(make_query(1, 100.0, demand=2.0))
        patroller.submit(make_query(2, 100.0, class_name="class1", demand=1.0))
        patroller.submit(make_query(3, 100.0, class_name="class2", demand=1.0))
        sim.run()
        # Query 1 first (empty system), then class2 beats class1.
        assert order[0] == "class1"
        assert order[1] == "class2"
        assert order[2] == "class1"

    def test_fifo_within_same_priority(self):
        sim, engine, patroller = make_stack()
        policy = QPStaticPolicy(patroller, engine, global_cost_limit=100.0)
        order = []
        original_release = patroller.release
        patroller.release = lambda q: (order.append(q.query_id), original_release(q))
        for query_id in (1, 2, 3):
            patroller.submit(make_query(query_id, 100.0, demand=1.0))
        sim.run()
        assert order == [1, 2, 3]


def test_policy_ignores_bypassed_class_completions():
    sim, engine, patroller = make_stack()
    policy = QPStaticPolicy(patroller, engine, global_cost_limit=100.0)
    bypass = make_query(42, 100.0, class_name="class3")
    patroller.submit(bypass)  # class3 is not intercepted
    sim.run()
    assert policy.released == 0
    assert policy.in_flight_cost == 0.0


class TestMaxCostRejection:
    def test_over_threshold_rejected_never_runs(self):
        sim, engine, patroller = make_stack()
        policy = QPStaticPolicy(patroller, engine, max_query_cost=1_000.0)
        rejected_states = []
        monster = make_query(1001, 5_000.0)
        monster.on_complete = lambda q: rejected_states.append(q.state.value)
        patroller.submit(monster)
        patroller.submit(make_query(1002, 500.0))
        sim.run()
        assert policy.rejected == 1
        assert rejected_states == ["rejected"]
        assert engine.completed_queries == 1
        assert patroller.tables.get(1001).status == "rejected"

    def test_threshold_validation(self):
        sim, engine, patroller = make_stack()
        with pytest.raises(ConfigurationError):
            QPStaticPolicy(patroller, engine, max_query_cost=0.0)

    def test_client_counts_rejections_and_continues(self):
        from repro.sim.rng import RandomStreams
        from repro.workloads.client import ClosedLoopClient
        from repro.workloads.spec import QueryFactory, QueryTemplate, WorkloadMix

        sim, engine, patroller = make_stack()
        # Half the templates are over the threshold.
        mix = WorkloadMix("m", [
            QueryTemplate("small", "olap", cpu_demand=0.1, io_demand=0.1,
                          variability=0.0, weight=1.0),
            QueryTemplate("huge", "olap", cpu_demand=50.0, io_demand=50.0,
                          variability=0.0, weight=1.0),
        ])
        factory = QueryFactory(engine.estimator, RandomStreams(99))
        policy = QPStaticPolicy(patroller, engine, max_query_cost=5_000.0)
        client = ClosedLoopClient(sim, patroller, factory, mix, "class1", "c0")
        client.activate()
        sim.run_until(20.0)
        assert client.queries_rejected > 0
        assert client.queries_completed > 0
        # Rejections do not wedge the loop.
        assert client.queries_submitted == (
            client.queries_completed + client.queries_rejected
            + (1 if client.busy else 0)
        )
