"""Tests for the QP control tables."""

import pytest

from repro.errors import PatrollerError
from repro.patroller.tables import ControlTables


def intercept(tables, query_id, cost=100.0, class_name="class1"):
    return tables.record_interception(
        query_id=query_id,
        class_name=class_name,
        client_id="c0",
        template="q1",
        kind="olap",
        estimated_cost=cost,
        submit_time=0.0,
        intercept_time=0.2,
    )


def test_interception_creates_queued_record():
    tables = ControlTables()
    record = intercept(tables, 1)
    assert record.status == "queued"
    assert record.seq == 0
    assert len(tables) == 1
    assert tables.get(1) is record


def test_duplicate_interception_rejected():
    tables = ControlTables()
    intercept(tables, 1)
    with pytest.raises(PatrollerError):
        intercept(tables, 1)


def test_status_transitions():
    tables = ControlTables()
    intercept(tables, 1)
    tables.mark_released(1, 5.0)
    record = tables.get(1)
    assert record.status == "released"
    assert record.release_time == 5.0
    tables.mark_completed(1, 9.0)
    assert record.status == "completed"
    assert record.finish_time == 9.0


def test_illegal_transitions_rejected():
    tables = ControlTables()
    intercept(tables, 1)
    with pytest.raises(PatrollerError):
        tables.mark_completed(1, 1.0)  # not yet released
    tables.mark_released(1, 1.0)
    with pytest.raises(PatrollerError):
        tables.mark_released(1, 2.0)  # released twice


def test_unknown_query_rejected():
    tables = ControlTables()
    with pytest.raises(PatrollerError):
        tables.get(99)
    with pytest.raises(PatrollerError):
        tables.mark_released(99, 0.0)


def test_fetch_since_cursor():
    tables = ControlTables()
    for query_id in (1, 2, 3):
        intercept(tables, query_id)
    assert [r.query_id for r in tables.fetch_since(0)] == [1, 2, 3]
    assert [r.query_id for r in tables.fetch_since(2)] == [3]
    assert tables.fetch_since(3) == []
    assert [r.query_id for r in tables.fetch_since(-5)] == [1, 2, 3]


def test_queued_listing_and_status_counts():
    tables = ControlTables()
    for query_id in (1, 2, 3):
        intercept(tables, query_id)
    tables.mark_released(2, 1.0)
    tables.mark_completed(2, 2.0)
    tables.mark_released(3, 1.5)
    assert [r.query_id for r in tables.queued()] == [1]
    assert tables.counts_by_status() == {
        "queued": 1,
        "completed": 1,
        "released": 1,
    }
