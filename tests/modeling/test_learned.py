"""Learned residual model: cold-start safety, learning, serialisation."""

import json
import math

import pytest

from repro.core.modeling import (
    ClassMixState,
    IntervalObservation,
    LearnedPerformanceModel,
    MixSnapshot,
    OracleLastValueModel,
    PaperAnalyticModel,
)
from repro.core.service_class import ResponseTimeGoal, ServiceClass, VelocityGoal
from repro.core.solver import ClassStatus
from repro.errors import ConfigurationError


def olap_status(value, limit=10_000.0, name="c1"):
    sc = ServiceClass(name, "olap", VelocityGoal(0.5), 1)
    return ClassStatus(sc, limit, value)


def oltp_status(value, limit=10_000.0, name="c3"):
    sc = ServiceClass(name, "oltp", ResponseTimeGoal(0.25), 3)
    return ClassStatus(sc, limit, value)


def mix_of(time, value, limit=10_000.0, queue=4, in_flight=2, name="c1"):
    state = ClassMixState(name, "olap", limit, value, queue, in_flight, 800.0)
    return MixSnapshot(time=time, classes=(state,))


class TestColdStart:
    """With zero observations the learned model IS the paper model
    (clamped): departures need data."""

    def test_olap_cold_prediction_equals_analytic(self):
        learned = LearnedPerformanceModel()
        paper = PaperAnalyticModel()
        for value, new_limit in ((0.3, 5_000.0), (0.5, 10_000.0), (0.9, 25_000.0)):
            assert learned.predict(olap_status(value), new_limit) == (
                paper.predict(olap_status(value), new_limit)
            )

    def test_oltp_cold_prediction_equals_analytic_base(self):
        learned = LearnedPerformanceModel(prior_slope=-5e-6)
        expected = 0.3 + (-5e-6) * (20_000.0 - 10_000.0)
        assert learned.predict(oltp_status(0.3), 20_000.0) == pytest.approx(expected)


class TestLearning:
    def test_learns_constant_residual_and_beats_analytic(self):
        """Realised values run a constant 0.05 above the analytic
        prediction; the residual learner must pick that up."""
        model = LearnedPerformanceModel()
        value = 0.2
        model.observe(IntervalObservation(0.0, mix_of(0.0, value)))
        for k in range(1, 13):
            value = min(1.0, value + 0.05)  # limits constant -> base = prev
            model.observe(IntervalObservation(60.0 * k, mix_of(60.0 * k, value)))
        assert model.observations == 12
        mix = mix_of(800.0, value)
        predicted = model.predict(olap_status(value), 10_000.0, mix)
        learned_error = abs(predicted - min(1.0, value + 0.05))
        analytic_error = abs(value - min(1.0, value + 0.05))  # paper predicts no change
        assert learned_error < analytic_error
        assert learned_error < 0.03

    def test_correction_is_clamped_against_blowup(self):
        model = LearnedPerformanceModel()
        predictor = model._predictor("c1", "olap")
        predictor.w = [100.0] * len(predictor.w)  # absurd weights
        predictor.observations = 5
        predicted = model.predict(olap_status(0.4), 10_000.0, mix_of(0.0, 0.4))
        assert 0.0 <= predicted <= 1.0

    def test_missing_values_are_skipped(self):
        model = LearnedPerformanceModel()
        model.observe(IntervalObservation(0.0, mix_of(0.0, None)))
        model.observe(IntervalObservation(60.0, mix_of(60.0, 0.5)))
        assert model.observations == 0


class TestCorruptReset:
    def test_corrupt_poisons_predictions(self):
        model = LearnedPerformanceModel()
        model.corrupt("regression")
        assert math.isnan(model.predict(olap_status(0.4), 10_000.0))
        model.reset()
        assert model.predict(olap_status(0.4), 10_000.0) == pytest.approx(0.4)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            LearnedPerformanceModel().corrupt("gamma")

    def test_corruption_changes_fingerprint(self):
        model = LearnedPerformanceModel()
        before = model.fingerprint()
        model.corrupt()
        assert model.fingerprint() != before


class TestSerialisation:
    def test_round_trip_preserves_predictions(self):
        model = LearnedPerformanceModel(ridge=2.0, forgetting=0.99)
        value = 0.2
        model.observe(IntervalObservation(0.0, mix_of(0.0, value)))
        for k in range(1, 9):
            value += 0.05
            model.observe(IntervalObservation(60.0 * k, mix_of(60.0 * k, value)))
        clone = LearnedPerformanceModel.from_dict(
            json.loads(json.dumps(model.to_dict()))
        )
        mix = mix_of(900.0, value)
        assert clone.predict(olap_status(value), 12_000.0, mix) == (
            model.predict(olap_status(value), 12_000.0, mix)
        )
        assert clone.ridge == 2.0
        assert clone.forgetting == 0.99

    def test_from_dict_rejects_foreign_payload(self):
        with pytest.raises(ConfigurationError):
            LearnedPerformanceModel.from_dict({"format": 2, "name": "learned"})
        with pytest.raises(ConfigurationError):
            LearnedPerformanceModel.from_dict({"format": 1, "name": "paper"})

    def test_invalid_hyperparameters_rejected(self):
        with pytest.raises(ConfigurationError):
            LearnedPerformanceModel(ridge=0.0)
        with pytest.raises(ConfigurationError):
            LearnedPerformanceModel(forgetting=1.5)


class TestMixAwareness:
    def test_mix_fingerprint_distinguishes_mixes(self):
        model = LearnedPerformanceModel()
        a = model.mix_fingerprint(mix_of(0.0, 0.4, queue=2))
        b = model.mix_fingerprint(mix_of(0.0, 0.4, queue=9))
        assert a != b
        assert model.mix_fingerprint(None) is None


class TestOracle:
    def test_predicts_last_value_whatever_the_limit(self):
        oracle = OracleLastValueModel()
        for limit in (1_000.0, 10_000.0, 30_000.0):
            assert oracle.predict(olap_status(0.37), limit) == pytest.approx(0.37)

    def test_clamps_by_kind(self):
        oracle = OracleLastValueModel()
        assert oracle.predict(olap_status(1.4), 10_000.0) == 1.0
        assert oracle.predict(oltp_status(0.0), 10_000.0) == pytest.approx(1e-3)

    def test_corrupt_and_reset(self):
        oracle = OracleLastValueModel()
        oracle.corrupt()
        assert math.isnan(oracle.predict(olap_status(0.5), 10_000.0))
        oracle.reset()
        assert oracle.predict(olap_status(0.5), 10_000.0) == pytest.approx(0.5)
