"""Offline training from telemetry records, and the ``repro train`` CLI."""

import json

import pytest

from repro.cli import main
from repro.core.modeling import (
    LearnedPerformanceModel,
    evaluate_on_records,
    fit_from_records,
    load_model,
    load_telemetry_records,
    observations_from_records,
    save_model,
)
from repro.errors import ConfigurationError


def record(time, allocation, values, queue=2):
    """One telemetry record dict in the exported JSONL shape."""
    return {
        "time": time,
        "solver": {"allocation": dict(allocation)},
        "measurements": {
            name: {"metric": metric, "value": value}
            for name, (metric, value) in values.items()
        },
        "dispatcher": {
            name: {"queue_length": queue, "in_flight_count": 1, "in_flight_cost": 500.0}
            for name in allocation
        },
    }


def synthetic_records(n=10):
    records = []
    value = 0.3
    for k in range(n):
        limit = 10_000.0 + 1_000.0 * (k % 3)
        records.append(
            record(
                60.0 * k,
                {"c1": limit, "c3": 30_000.0 - limit},
                {
                    "c1": ("velocity", min(1.0, value)),
                    "c3": ("response_time", 0.2 + 0.01 * (k % 2)),
                },
            )
        )
        value += 0.04
    return records


class TestObservationReconstruction:
    def test_active_limits_lag_the_allocation_by_one_record(self):
        """Record k's values realised under record k-1's chosen limits."""
        records = synthetic_records(3)
        observations = observations_from_records(records)
        assert len(observations) == 3
        # First record: no predecessor, seeded from its own allocation.
        assert observations[0].mix.get("c1").limit == 10_000.0
        # Second record pairs with the FIRST record's allocation.
        assert observations[1].mix.get("c1").limit == 10_000.0
        # Third record pairs with the second's (10_000 + 1_000).
        assert observations[2].mix.get("c1").limit == 11_000.0

    def test_kinds_follow_the_metric(self):
        observations = observations_from_records(synthetic_records(2))
        assert observations[0].mix.get("c1").kind == "olap"
        assert observations[0].mix.get("c3").kind == "oltp"

    def test_queue_state_carried(self):
        observations = observations_from_records(synthetic_records(2))
        state = observations[0].mix.get("c1")
        assert state.queue_length == 2
        assert state.in_flight_count == 1


class TestFitAndEvaluate:
    def test_fit_accumulates_observations(self):
        model = fit_from_records(synthetic_records(10))
        assert model.observations > 0
        assert model._pending is None  # no leak into live pairing

    def test_evaluate_is_prequential(self):
        records = synthetic_records(8)
        errors = evaluate_on_records(records, LearnedPerformanceModel())
        # One scored transition per record pair, per class with values.
        assert len(errors["c1"]) == 7
        assert len(errors["c3"]) == 7
        for time, error in errors["c1"]:
            assert error >= 0.0

    def test_evaluate_scores_before_observing(self):
        """The scorer must never leak the outcome into the prediction: a
        model that simply memorises the last observed value per class
        would otherwise show zero error."""

        class Memoriser:
            name = "memo"

            def __init__(self):
                self.seen = {}

            def predict(self, status, proposed_limit, mix=None):
                return self.seen.get(status.service_class.name, status.current_value)

            def observe(self, observation):
                for state in observation.mix.classes:
                    if state.value is not None:
                        self.seen[state.name] = state.value

        errors = evaluate_on_records(synthetic_records(6), Memoriser())
        # Values drift every interval, so a memoriser must show error.
        assert any(e > 0.0 for _, e in errors["c1"])


class TestPersistence:
    def test_save_load_round_trip(self, tmp_path):
        path = str(tmp_path / "model.json")
        model = fit_from_records(synthetic_records(10))
        save_model(model, path)
        loaded = load_model(path)
        assert loaded.observations == model.observations
        assert loaded.to_dict() == model.to_dict()

    def test_load_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_model(str(tmp_path / "absent.json"))

    def test_load_invalid_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError):
            load_model(str(path))

    def test_load_telemetry_from_file_and_dir(self, tmp_path):
        records = synthetic_records(4)
        path = tmp_path / "t.jsonl"
        path.write_text("\n".join(json.dumps(r) for r in records) + "\n")
        assert len(load_telemetry_records(str(path))) == 4
        assert len(load_telemetry_records(str(tmp_path))) == 4
        with pytest.raises(ConfigurationError):
            load_telemetry_records(str(tmp_path / "missing"))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ConfigurationError):
            load_telemetry_records(str(empty))


class TestTrainCLI:
    def test_trace_train_run_round_trip(self, tmp_path, capsys):
        """The full loop: export telemetry, train on it, run with the
        trained model under strict invariants."""
        telemetry = str(tmp_path / "telemetry.jsonl")
        model_path = str(tmp_path / "model.json")
        assert main([
            "trace", "--periods", "2", "--period-seconds", "20",
            "--control-interval", "10", "--output", telemetry,
        ]) == 0
        assert main([
            "train", "--telemetry", telemetry, "--output", model_path,
        ]) == 0
        out = capsys.readouterr().out
        assert "trained on" in out
        assert "prequential MAE" in out
        loaded = load_model(model_path)
        assert loaded.observations > 0
        assert main([
            "run", "--controller", "qs", "--periods", "2",
            "--period-seconds", "20", "--control-interval", "10",
            "--model", "learned:" + model_path, "--invariants", "strict",
        ]) == 0
        run_out = capsys.readouterr().out
        assert "no violations" in run_out

    def test_train_bad_telemetry_path_errors(self, tmp_path, capsys):
        assert main([
            "train", "--telemetry", str(tmp_path / "nope"),
            "--output", str(tmp_path / "m.json"),
        ]) == 2
        assert "train error" in capsys.readouterr().err

    def test_run_rejects_unknown_model(self, capsys):
        assert main(["run", "--model", "quantum"]) == 2
        assert "model error" in capsys.readouterr().err

    def test_run_rejects_missing_model_file(self, capsys):
        assert main(["run", "--model", "learned:/nonexistent/model.json"]) == 2
        assert "not found" in capsys.readouterr().err
