"""Workload-shift prediction error: learned vs analytic on real scenarios.

The learned model's claim is that conditioning on the full concurrent mix
helps exactly where the paper's single-knob extrapolations hurt — across
workload shifts.  These tests replay the ``diurnal`` (continuous
anti-phased drift) and ``flash-crowd`` (sudden spike) library scenarios,
train the learned model on each scenario's own paper-model telemetry
trace, and score both models prequentially on that trace.

The realised numbers are pinned in ``fixtures/workload_shift_mae.json``
(the runs are seeded and deterministic), so any change to the models or
the training path that moves prediction quality shows up as a diff in a
committed file rather than a silent drift.
"""

import json
import os

import pytest

from repro.core.modeling import (
    LearnedPerformanceModel,
    PaperAnalyticModel,
    evaluate_on_records,
    fit_from_records,
)

FIXTURE_PATH = os.path.join(
    os.path.dirname(__file__), "fixtures", "workload_shift_mae.json"
)

SCENARIOS = ("diurnal", "flash-crowd")


def shift_periods(scenario):
    """Period indices whose client mix differs from the period before."""
    counts = scenario.resolved_counts()
    shifted = set()
    for index in range(1, scenario.num_periods):
        if any(series[index] != series[index - 1] for series in counts.values()):
            shifted.add(index)
    return shifted


def mean_abs(errors, times=None):
    flat = [
        e
        for series in errors.values()
        for t, e in series
        if times is None or times(t)
    ]
    return sum(flat) / len(flat) if flat else 0.0


def compute_shift_metrics(scenario_name):
    """Replay one scenario and score paper vs learned prequentially."""
    from repro.experiments.runner import run_spec
    from repro.scenarios import find_scenario, to_experiment_spec

    scenario = find_scenario(scenario_name)
    spec = to_experiment_spec(scenario, smoke=True)
    result = run_spec(spec)
    records = [record.to_dict() for record in result.extras["telemetry"]]

    trained = fit_from_records(records)
    # Round-trip through the serialised form, exactly as `repro run
    # --model learned:PATH` would load it.
    learned = LearnedPerformanceModel.from_dict(trained.to_dict())

    period_seconds = spec.schedule.period_seconds
    shifted = shift_periods(scenario)

    def in_shift(time):
        return int(time // period_seconds) in shifted

    metrics = {}
    for label, model in (("paper", PaperAnalyticModel()), ("learned", learned)):
        errors = evaluate_on_records(records, model)
        metrics["{}_mae".format(label)] = mean_abs(errors)
        metrics["{}_shift_mae".format(label)] = mean_abs(errors, times=in_shift)
    metrics["shift_periods"] = sorted(shifted)
    metrics["records"] = len(records)
    return metrics


@pytest.fixture(scope="module")
def fixture_data():
    with open(FIXTURE_PATH) as handle:
        return json.load(handle)


class TestWorkloadShiftPredictionError:
    @pytest.mark.parametrize("scenario_name", SCENARIOS)
    def test_learned_no_worse_than_analytic_on_shift_intervals(self, scenario_name):
        metrics = compute_shift_metrics(scenario_name)
        assert metrics["shift_periods"], "scenario has no workload shifts"
        assert metrics["learned_shift_mae"] <= metrics["paper_shift_mae"] + 1e-9

    @pytest.mark.parametrize("scenario_name", SCENARIOS)
    def test_realised_mae_matches_committed_fixture(
        self, scenario_name, fixture_data
    ):
        """Seeded runs are deterministic; the fixture pins the realised
        prediction quality so regressions surface as a committed diff."""
        metrics = compute_shift_metrics(scenario_name)
        pinned = fixture_data[scenario_name]
        for key in (
            "paper_mae",
            "learned_mae",
            "paper_shift_mae",
            "learned_shift_mae",
        ):
            assert metrics[key] == pytest.approx(pinned[key], rel=1e-6), key
        assert metrics["shift_periods"] == pinned["shift_periods"]
        assert metrics["records"] == pinned["records"]

    def test_fixture_itself_encodes_the_shift_claim(self, fixture_data):
        """The committed numbers must themselves satisfy the invariant the
        PR claims (belt and braces against fixture drift)."""
        for scenario_name in SCENARIOS:
            pinned = fixture_data[scenario_name]
            assert pinned["learned_shift_mae"] <= pinned["paper_shift_mae"]
