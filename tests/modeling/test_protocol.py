"""Protocol conformance and the model registry."""

import pytest

from repro.config import PlannerConfig
from repro.core.modeling import (
    LearnedPerformanceModel,
    OracleLastValueModel,
    PaperAnalyticModel,
    PerformanceModel,
    make_model,
    parse_model_spec,
    save_model,
)
from repro.errors import ConfigurationError


ALL_MODELS = [PaperAnalyticModel, LearnedPerformanceModel, OracleLastValueModel]


class TestProtocolConformance:
    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_models_satisfy_structural_protocol(self, factory):
        assert isinstance(factory(), PerformanceModel)

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_describe_is_json_safe(self, factory):
        import json

        json.dumps(factory().describe())

    @pytest.mark.parametrize("factory", ALL_MODELS)
    def test_fingerprint_is_hashable(self, factory):
        model = factory()
        hash(model.fingerprint())
        hash(model.mix_fingerprint(None))

    def test_an_incomplete_object_fails_the_check(self):
        class NotAModel:
            def predict(self, status, proposed_limit, mix=None):
                return 0.0

        assert not isinstance(NotAModel(), PerformanceModel)


class TestRegistry:
    def test_parse_base_names(self):
        assert parse_model_spec("paper") == ("paper", None)
        assert parse_model_spec("oracle") == ("oracle", None)
        assert parse_model_spec("learned") == ("learned", None)
        assert parse_model_spec("learned:/tmp/m.json") == ("learned", "/tmp/m.json")

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_model_spec("quantum")

    def test_argument_only_valid_for_learned(self):
        with pytest.raises(ConfigurationError):
            parse_model_spec("paper:/tmp/m.json")

    def test_empty_spec_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_model_spec("")

    def test_make_paper_uses_planner_calibration(self):
        planner = PlannerConfig(oltp_slope_prior=-3e-6, oltp_slope_weight=7.0)
        model = make_model("paper", planner)
        assert isinstance(model, PaperAnalyticModel)
        assert model.oltp.prior_slope == -3e-6
        assert model.oltp.prior_weight == 7.0

    def test_make_oracle(self):
        assert isinstance(make_model("oracle"), OracleLastValueModel)

    def test_make_learned_fresh(self):
        model = make_model("learned", PlannerConfig())
        assert isinstance(model, LearnedPerformanceModel)
        assert model.observations == 0

    def test_make_learned_from_file(self, tmp_path):
        path = str(tmp_path / "model.json")
        save_model(LearnedPerformanceModel(ridge=2.5), path)
        loaded = make_model("learned:" + path)
        assert isinstance(loaded, LearnedPerformanceModel)
        assert loaded.ridge == 2.5

    def test_planner_config_validates_model_spec(self):
        with pytest.raises(ConfigurationError):
            PlannerConfig(model="quantum").validate()
        PlannerConfig(model="learned").validate()
