"""PaperAnalyticModel: dispatch equivalence and the corrupt/reset seam."""

import pytest

from repro.core.modeling import (
    ClassMixState,
    IntervalObservation,
    MixSnapshot,
    OLAPVelocityModel,
    OLTPResponseTimeModel,
    PaperAnalyticModel,
)
from repro.core.service_class import ResponseTimeGoal, ServiceClass, VelocityGoal
from repro.core.solver import ClassStatus
from repro.errors import ConfigurationError


def olap_status(value=0.4, limit=10_000.0):
    sc = ServiceClass("c1", "olap", VelocityGoal(0.5), 1)
    return ClassStatus(sc, limit, value)


def oltp_status(value=0.3, limit=10_000.0):
    sc = ServiceClass("c3", "oltp", ResponseTimeGoal(0.25), 3)
    return ClassStatus(sc, limit, value)


def one_class_mix(time=0.0):
    state = ClassMixState("c1", "olap", 10_000.0, 0.4, 2, 1, 500.0)
    return MixSnapshot(time=time, classes=(state,))


class TestDispatchEquivalence:
    """The protocol wrapper must be arithmetic-identical to the bare pair
    (the golden regression data is pinned to this)."""

    def test_olap_matches_bare_velocity_model(self):
        model = PaperAnalyticModel()
        for new_limit in (5_000.0, 10_000.0, 20_000.0):
            assert model.predict(olap_status(), new_limit) == (
                OLAPVelocityModel.predict(0.4, 10_000.0, new_limit)
            )

    def test_oltp_matches_bare_linear_model(self):
        oltp = OLTPResponseTimeModel(prior_slope=-5e-6)
        model = PaperAnalyticModel(oltp_model=OLTPResponseTimeModel(prior_slope=-5e-6))
        for new_limit in (5_000.0, 10_000.0, 20_000.0):
            assert model.predict(oltp_status(), new_limit) == (
                oltp.predict(0.3, 10_000.0, new_limit)
            )

    def test_mix_argument_is_ignored(self):
        model = PaperAnalyticModel()
        with_mix = model.predict(olap_status(), 20_000.0, one_class_mix())
        without = model.predict(olap_status(), 20_000.0, None)
        assert with_mix == without
        assert model.mix_fingerprint(one_class_mix()) is None


class TestObserve:
    def test_delta_folds_into_regression(self):
        model = PaperAnalyticModel()
        model.observe(
            IntervalObservation(0.0, one_class_mix(), oltp_delta=(2_000.0, -0.01))
        )
        assert model.oltp.observations == 1
        assert model.fingerprint() == 1

    def test_no_delta_leaves_regression_untouched(self):
        model = PaperAnalyticModel()
        model.observe(IntervalObservation(0.0, one_class_mix()))
        assert model.oltp.observations == 0
        assert model.fingerprint() == 0


class TestCorruptResetSeam:
    def test_corrupt_breaks_slope_reset_restores(self):
        model = PaperAnalyticModel()
        before = model.oltp.slope
        model.corrupt("regression")
        with pytest.raises(ZeroDivisionError):
            model.oltp.slope
        model.reset()
        assert model.oltp.slope == before

    def test_unknown_corruption_mode_rejected(self):
        with pytest.raises(ConfigurationError):
            PaperAnalyticModel().corrupt("cosmic-rays")

    def test_describe_survives_corruption(self):
        import json

        model = PaperAnalyticModel()
        model.corrupt()
        description = model.describe()
        assert description["slope"] is None
        json.dumps(description)

    def test_describe_reports_bounds_and_slope(self):
        model = PaperAnalyticModel(oltp_model=OLTPResponseTimeModel(prior_slope=-4e-6))
        description = model.describe()
        assert description["name"] == "paper"
        assert description["slope"] == pytest.approx(-4e-6)
        assert description["slope_bounds"][0] == pytest.approx(-4e-6 * 3.0)
        assert description["slope_bounds"][1] == pytest.approx(-4e-6 / 3.0)

    def test_slope_bounds_bracket_live_slope(self):
        model = OLTPResponseTimeModel(prior_slope=-4e-6, prior_weight=1.0, forgetting=0.5)
        for _ in range(50):
            model.observe(1_000.0, -1.0)  # absurdly steep observations
        steepest, shallowest = model.slope_bounds()
        assert steepest <= model.slope <= shallowest
