"""Tests for the unified instrument registry."""

import pytest

from repro.errors import MetricsError, ReproError
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    HistogramInstrument,
    MetricsRegistry,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounters:
    def test_inc_accumulates(self, registry):
        counter = registry.counter("releases_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == pytest.approx(3.5)

    def test_negative_inc_rejected(self, registry):
        counter = registry.counter("releases_total")
        with pytest.raises(MetricsError):
            counter.inc(-1.0)

    def test_get_or_create_returns_same_instrument(self, registry):
        first = registry.counter("releases_total", labels={"class": "class1"})
        second = registry.counter("releases_total", labels={"class": "class1"})
        assert first is second
        other = registry.counter("releases_total", labels={"class": "class2"})
        assert other is not first

    def test_callback_counter_reads_live_state(self, registry):
        state = {"n": 0}
        counter = registry.counter("live_total", callback=lambda: state["n"])
        state["n"] = 7
        assert counter.value == 7.0

    def test_callback_counter_cannot_be_mutated(self, registry):
        counter = registry.counter("live_total", callback=lambda: 1.0)
        with pytest.raises(MetricsError):
            counter.inc()


class TestGauges:
    def test_set_and_inc(self, registry):
        gauge = registry.gauge("queue_length")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == pytest.approx(2.5)

    def test_callback_gauge_cannot_be_set(self, registry):
        gauge = registry.gauge("queue_length", callback=lambda: 3.0)
        assert gauge.value == 3.0
        with pytest.raises(MetricsError):
            gauge.set(1.0)

    def test_non_finite_values_become_nan(self, registry):
        import math

        gauge = registry.gauge("score")
        gauge.set(float("inf"))
        assert math.isnan(gauge.value)


class TestHistograms:
    def test_observe_counts_buckets(self, registry):
        histogram = registry.histogram("wait", buckets=(1.0, 5.0, 10.0))
        for value in (0.5, 2.0, 7.0, 70.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(79.5)
        assert histogram.mean == pytest.approx(19.875)
        assert histogram.cumulative_counts() == [1, 2, 3]
        assert histogram.value == 4.0  # samples as its count

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)

    def test_unsorted_buckets_rejected(self, registry):
        with pytest.raises(MetricsError):
            registry.histogram("wait", buckets=(5.0, 1.0))


class TestRegistry:
    def test_kind_clash_is_an_error(self, registry):
        registry.counter("thing_total")
        with pytest.raises(MetricsError) as err:
            registry.gauge("thing_total")
        assert "already registered" in str(err.value)

    def test_bad_name_rejected(self, registry):
        with pytest.raises(MetricsError):
            registry.counter("bad name!")
        with pytest.raises(MetricsError):
            registry.counter("")

    def test_get_unknown_name_lists_registered(self, registry):
        registry.counter("alpha_total")
        registry.gauge("beta")
        with pytest.raises(MetricsError) as err:
            registry.get("gamma")
        message = str(err.value)
        assert "gamma" in message
        assert "alpha_total" in message and "beta" in message

    def test_get_unknown_labels_lists_members(self, registry):
        registry.counter("alpha_total", labels={"class": "class1"})
        with pytest.raises(MetricsError) as err:
            registry.get("alpha_total", {"class": "nope"})
        assert "class1" in str(err.value)

    def test_metrics_error_is_a_repro_error(self):
        assert issubclass(MetricsError, ReproError)

    def test_len_and_iter(self, registry):
        registry.counter("a_total", labels={"class": "class1"})
        registry.counter("a_total", labels={"class": "class2"})
        registry.gauge("b")
        assert len(registry) == 3
        assert registry.names == ["a_total", "b"]
        kinds = [instrument.kind for instrument in registry]
        assert kinds == ["counter", "counter", "gauge"]

    def test_instrument_types(self, registry):
        assert isinstance(registry.counter("c_total"), Counter)
        assert isinstance(registry.gauge("g"), Gauge)
        assert isinstance(registry.histogram("h"), HistogramInstrument)


class TestSampling:
    def test_sample_builds_series(self, registry):
        counter = registry.counter("done_total", labels={"class": "class1"})
        registry.sample(10.0)
        counter.inc(3)
        registry.sample(20.0)
        series = registry.series("done_total", {"class": "class1"})
        assert series == [(10.0, 0.0), (20.0, 3.0)]
        assert len(registry.samples) == 2

    def test_histogram_samples_count_and_sum(self, registry):
        histogram = registry.histogram("wait")
        histogram.observe(0.2)
        histogram.observe(0.4)
        values = registry.sample(5.0)
        assert values["wait_count"] == 2.0
        assert values["wait_sum"] == pytest.approx(0.6)
        assert registry.series("wait") == [(5.0, 2.0)]

    def test_series_on_unknown_name_raises(self, registry):
        with pytest.raises(MetricsError):
            registry.series("missing")


class TestPrometheusExport:
    def test_renders_types_labels_and_values(self, registry):
        counter = registry.counter(
            "released_total", description="queries released",
            labels={"class": "class1"},
        )
        counter.inc(5)
        registry.gauge("queue_length").set(2.0)
        text = registry.to_prometheus()
        assert "# HELP released_total queries released" in text
        assert "# TYPE released_total counter" in text
        assert 'released_total{class="class1"} 5.0' in text
        assert "# TYPE queue_length gauge" in text
        assert "queue_length 2.0" in text
        assert text.endswith("\n")

    def test_renders_histogram_buckets(self, registry):
        histogram = registry.histogram("wait", buckets=(1.0, 2.0))
        histogram.observe(0.5)
        histogram.observe(1.5)
        text = registry.to_prometheus()
        assert 'wait_bucket{le="1.0"} 1' in text
        assert 'wait_bucket{le="2.0"} 2' in text
        assert 'wait_bucket{le="+Inf"} 2' in text
        assert "wait_sum 2.0" in text
        assert "wait_count 2" in text

    def test_empty_registry_renders_empty(self, registry):
        assert registry.to_prometheus() == ""


class TestLiveWiring:
    """The assembled controller registers and samples real instruments."""

    @pytest.fixture(scope="class")
    def qs_result(self):
        from repro.config import (
            MonitorConfig,
            PlannerConfig,
            WorkloadScaleConfig,
            default_config,
        )
        from repro.experiments.runner import run_experiment

        config = default_config(
            scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
            monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
            planner=PlannerConfig(control_interval=10.0),
        )
        return run_experiment(controller="qs", config=config)

    def test_components_register_instruments(self, qs_result):
        registry = qs_result.extras["metrics_registry"]
        names = set(registry.names)
        assert {
            "dispatcher_enqueued_total",
            "dispatcher_released_total",
            "dispatcher_completed_total",
            "dispatcher_queue_length",
            "monitor_open_queries",
            "monitor_snapshots_total",
            "planner_intervals_total",
            "solver_solve_calls_total",
            "patroller_intercepted_total",
        } <= names

    def test_sampled_once_per_control_interval(self, qs_result):
        registry = qs_result.extras["metrics_registry"]
        store = qs_result.extras["telemetry"]
        assert len(registry.samples) == len(store)

    def test_registry_counters_match_dispatcher_accessors(self, qs_result):
        dispatcher = qs_result.bundle.controller.dispatcher
        registry = qs_result.extras["metrics_registry"]
        for service_class in qs_result.classes:
            if not service_class.directly_controlled:
                continue
            labels = {"class": service_class.name}
            released = registry.get("dispatcher_released_total", labels)
            assert released.value == dispatcher.released_count(service_class.name)
            completed = registry.get("dispatcher_completed_total", labels)
            assert completed.value == dispatcher.completed_count(service_class.name)

    def test_prometheus_snapshot_of_live_run(self, qs_result):
        registry = qs_result.extras["metrics_registry"]
        text = registry.to_prometheus()
        assert "# TYPE dispatcher_released_total counter" in text
        assert 'class="class1"' in text


class TestLabelEscaping:
    """Prometheus exposition escaping (satellite: hostile label values)."""

    def test_hostile_label_value_is_escaped(self, registry):
        hostile = 'he said "hi"\nback\\slash'
        registry.counter(
            "queries_total", labels={"template": hostile},
            description="Queries",
        ).inc()
        text = registry.to_prometheus()
        line = next(l for l in text.splitlines() if l.startswith("queries_total"))
        assert line == (
            'queries_total{template="he said \\"hi\\"\\nback\\\\slash"} 1.0'
        )
        # The rendered line must stay a single physical line.
        assert "\n" not in line

    def test_escaping_keeps_exposition_parseable(self, registry):
        registry.counter(
            "a_total", labels={"v": 'x"y'}, description="A"
        ).inc()
        registry.counter(
            "a_total", labels={"v": "plain"}, description="A"
        ).inc(2)
        lines = registry.to_prometheus().splitlines()
        # One HELP, one TYPE, two member lines — nothing smuggled in.
        assert sum(1 for l in lines if l.startswith("#")) == 2
        assert sum(1 for l in lines if l.startswith("a_total")) == 2

    def test_help_text_newlines_escaped(self, registry):
        registry.counter("b_total", description="line1\nline2").inc()
        text = registry.to_prometheus()
        assert "# HELP b_total line1\\nline2" in text

    def test_extra_labels_escaped_too(self, registry):
        registry.counter("c_total", description="C").inc()
        text = registry.to_prometheus(extra_labels={"shard": '0"evil'})
        assert 'c_total{shard="0\\"evil"} 1.0' in text


class TestSampleBounding:
    """Ring-buffer sampling memory bound (satellite: serve-mode runs)."""

    def test_unbounded_by_default(self, registry):
        registry.counter("n_total")
        for now in range(1000):
            registry.sample(float(now))
        assert len(registry.samples) == 1000
        assert registry.samples_dropped == 0
        assert registry.max_samples is None

    def test_bounded_registry_drops_oldest(self):
        registry = MetricsRegistry(max_samples=10)
        registry.counter("n_total")
        for now in range(25):
            registry.sample(float(now))
        assert len(registry.samples) == 10
        assert registry.samples_dropped == 15
        # Newest samples survive.
        assert registry.samples[0][0] == 15.0
        assert registry.samples[-1][0] == 24.0

    def test_series_reads_surviving_window(self):
        registry = MetricsRegistry(max_samples=5)
        counter = registry.counter("n_total")
        for now in range(8):
            counter.inc()
            registry.sample(float(now))
        series = registry.series("n_total")
        assert [point[0] for point in series] == [3.0, 4.0, 5.0, 6.0, 7.0]

    def test_shrinking_bound_trims_existing(self, registry):
        registry.counter("n_total")
        for now in range(20):
            registry.sample(float(now))
        registry.max_samples = 4
        assert len(registry.samples) == 4
        assert registry.samples_dropped == 16
        assert registry.samples[0][0] == 16.0

    def test_invalid_bound_rejected(self, registry):
        for bad in (0, -3, 2.5, True, "10"):
            with pytest.raises(MetricsError):
                registry.max_samples = bad
