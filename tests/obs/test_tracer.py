"""Tests for the QueryTracer: hand-driven lifecycles and full runs."""

from types import SimpleNamespace

import pytest

from repro.errors import SimulationError
from repro.obs.tracer import QueryTracer


class FakeSim:
    def __init__(self):
        self.now = 0.0


class FakePatroller:
    """Duck-typed patroller: records one lifecycle listener."""

    def __init__(self, intercepted=("class1", "class2")):
        self._intercepted = set(intercepted)
        self.emit = None

    def add_lifecycle_listener(self, listener):
        self.emit = listener

    def intercepts(self, class_name):
        return class_name in self._intercepted


class FakeEngine:
    def __init__(self):
        self.start = None
        self.complete = None

    def add_start_listener(self, listener):
        self.start = listener

    def add_completion_listener(self, listener):
        self.complete = listener


def query(qid=1, class_name="class1"):
    return SimpleNamespace(
        query_id=qid,
        class_name=class_name,
        template="t1",
        kind="olap",
        estimated_cost=500.0,
    )


@pytest.fixture
def rig():
    sim = FakeSim()
    patroller = FakePatroller()
    engine = FakeEngine()
    tracer = QueryTracer(sim=sim, patroller=patroller, engine=engine)
    return sim, patroller, engine, tracer


class TestHandDrivenLifecycle:
    def test_full_lifecycle_produces_three_spans(self, rig):
        sim, patroller, engine, tracer = rig
        q = query()
        sim.now = 1.0
        patroller.emit("submitted", q)
        sim.now = 1.5
        patroller.emit("intercepted", q)
        sim.now = 4.0
        patroller.emit("released", q)
        sim.now = 9.0
        engine.complete(q)

        assert tracer.balanced
        assert tracer.validate() == []
        spans = tracer.spans_for(1)
        assert [s.phase for s in spans] == ["intercept", "queue_wait", "execute"]
        assert [s.duration for s in spans] == pytest.approx([0.5, 2.5, 5.0])
        assert all(s.class_name == "class1" for s in spans)
        assert all(s.estimated_cost == 500.0 for s in spans)

    def test_cancel_closes_open_span_and_marks_terminal(self, rig):
        sim, patroller, engine, tracer = rig
        q = query()
        patroller.emit("submitted", q)
        sim.now = 0.5
        patroller.emit("intercepted", q)
        sim.now = 3.0
        patroller.emit("cancelled", q)

        assert tracer.balanced
        assert tracer.validate() == []
        spans = tracer.spans_for(1)
        assert [s.phase for s in spans] == ["intercept", "queue_wait", "cancelled"]
        terminal = spans[-1]
        assert terminal.begin == terminal.end == 3.0
        assert spans[1].end == 3.0  # queue_wait cut at cancellation

    def test_reject_marks_terminal(self, rig):
        sim, patroller, engine, tracer = rig
        q = query()
        patroller.emit("submitted", q)
        sim.now = 0.25
        patroller.emit("rejected", q)
        assert [s.phase for s in tracer.spans_for(1)] == ["intercept", "rejected"]
        assert tracer.balanced

    def test_bypassed_class_produces_no_spans(self, rig):
        sim, patroller, engine, tracer = rig
        q = query(qid=2, class_name="class3")
        patroller.emit("submitted", q)
        engine.start(q)
        engine.complete(q)
        assert tracer.spans == []
        assert tracer.opened == 0
        assert tracer.balanced

    def test_untracked_events_are_ignored(self, rig):
        sim, patroller, engine, tracer = rig
        # Events for a query the tracer never opened must not open
        # mid-lifecycle spans or crash.
        q = query(qid=9)
        patroller.emit("intercepted", q)
        patroller.emit("released", q)
        patroller.emit("cancelled", q)
        engine.complete(q)
        assert tracer.spans == []
        assert tracer.balanced

    def test_trace_bypassed_records_execute_spans(self):
        sim = FakeSim()
        patroller = FakePatroller()
        engine = FakeEngine()
        tracer = QueryTracer(
            sim=sim, patroller=patroller, engine=engine, trace_bypassed=True
        )
        q = query(qid=3, class_name="class3")
        sim.now = 2.0
        engine.start(q)
        sim.now = 2.4
        engine.complete(q)
        spans = tracer.spans_for(3)
        assert [s.phase for s in spans] == ["execute"]
        assert spans[0].duration == pytest.approx(0.4)
        assert tracer.balanced

    def test_finalize_truncates_open_spans(self, rig):
        sim, patroller, engine, tracer = rig
        q = query()
        patroller.emit("submitted", q)
        sim.now = 1.0
        patroller.emit("intercepted", q)

        assert not tracer.balanced
        assert tracer.open_count == 1
        with pytest.raises(SimulationError):
            tracer.assert_balanced()

        tracer.finalize(now=20.0)
        assert tracer.balanced
        tracer.assert_balanced()
        last = tracer.spans_for(1)[-1]
        assert last.phase == "queue_wait"
        assert last.truncated
        assert last.end == 20.0
        # Idempotent.
        tracer.finalize(now=30.0)
        assert tracer.closed == tracer.opened

    def test_finalize_never_closes_before_begin(self, rig):
        sim, patroller, engine, tracer = rig
        q = query()
        sim.now = 10.0
        patroller.emit("submitted", q)
        tracer.finalize(now=5.0)  # earlier than the span's begin
        span = tracer.spans_for(1)[0]
        assert span.end == span.begin == 10.0
        assert tracer.validate() == []

    def test_counts_track_opened_and_closed(self, rig):
        sim, patroller, engine, tracer = rig
        q = query()
        patroller.emit("submitted", q)
        sim.now = 1.0
        patroller.emit("intercepted", q)
        assert tracer.opened == 2
        assert tracer.closed == 1
        assert tracer.open_count == 1


class TestTracedExperiment:
    @pytest.fixture(scope="class")
    def traced_result(self):
        from repro.config import (
            MonitorConfig,
            PlannerConfig,
            WorkloadScaleConfig,
            default_config,
        )
        from repro.experiments.runner import run_experiment

        config = default_config(
            scale=WorkloadScaleConfig(period_seconds=20.0, num_periods=2),
            monitor=MonitorConfig(snapshot_interval=5.0, response_time_window=10.0),
            planner=PlannerConfig(control_interval=10.0),
        )
        return run_experiment(controller="qs", config=config, tracing=True)

    def test_tracer_rides_in_extras_balanced(self, traced_result):
        tracer = traced_result.extras["tracer"]
        assert tracer.balanced
        assert tracer.spans
        assert tracer.validate() == []

    def test_spans_cover_intercepted_classes_only(self, traced_result):
        tracer = traced_result.extras["tracer"]
        classes = {s.class_name for s in tracer.spans}
        assert classes <= {"class1", "class2"}
        assert "class3" not in classes

    def test_spans_carry_periods_and_costs(self, traced_result):
        tracer = traced_result.extras["tracer"]
        for span in tracer.spans:
            assert span.period is not None
            assert span.estimated_cost > 0.0

    def test_untraced_run_has_no_tracer(self):
        from repro.config import WorkloadScaleConfig, default_config
        from repro.experiments.runner import run_experiment

        config = default_config(
            scale=WorkloadScaleConfig(period_seconds=10.0, num_periods=1)
        )
        result = run_experiment(controller="none", config=config)
        assert "tracer" not in result.extras
