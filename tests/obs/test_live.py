"""Tests for the live telemetry hub, publishers, and HTTP layer.

Covers the versioned protocol (sequence numbers, snapshot folding,
bounded subscriber queues with drop counters), the publisher wiring into
``run_spec`` and the shard coordinator (conservation across shards,
bit-identity with the golden regression data), and the stdlib HTTP/SSE
server.
"""

from __future__ import annotations

import json
import threading
import urllib.request
from dataclasses import replace

import pytest

from repro.config import default_config
from repro.errors import ConfigurationError, MetricsError
from repro.experiments.runner import ExperimentSpec, run_spec
from repro.obs.live import (
    EVENT_TYPES,
    PROTOCOL_VERSION,
    LiveServer,
    RunPublisher,
    TelemetryHub,
)
from repro.obs.live.hub import SNAPSHOT_REBALANCES
from repro.obs.registry import MetricsRegistry
from repro.shard.coordinator import run_sharded
from repro.shard.spec import ShardedExperimentSpec
from tests.runtime.test_sim_regression import (
    GOLDEN_ATTAINMENT,
    GOLDEN_PLANS,
    GOLDEN_SERIES,
    _golden_spec,
)


def _tiny_config(num_periods=2, seed=7):
    config = default_config(seed=seed)
    return replace(config, scale=replace(config.scale, num_periods=num_periods))


def _tiny_spec(**overrides):
    defaults = dict(controller="qs", config=_tiny_config())
    defaults.update(overrides)
    return ExperimentSpec(**defaults)


class TestProtocol:
    def test_publish_stamps_monotonic_seq(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        for index in range(5):
            hub.publish("interval", {"n": index}, time=float(index))
        events = sub.drain()
        assert [e.seq for e in events] == [1, 2, 3, 4, 5]
        assert hub.seq == 5

    def test_event_wire_form(self):
        hub = TelemetryHub()
        event = hub.publish("interval", {"x": 1}, time=2.5, shard=3)
        wire = event.to_dict()
        assert wire == {
            "v": PROTOCOL_VERSION,
            "seq": 1,
            "type": "interval",
            "time": 2.5,
            "shard": 3,
            "data": {"x": 1},
        }
        json.dumps(wire)  # must be JSON-serializable

    def test_unknown_event_type_rejected(self):
        hub = TelemetryHub()
        with pytest.raises(MetricsError):
            hub.publish("bogus", {})
        assert "interval" in EVENT_TYPES

    def test_snapshot_folds_latest_state(self):
        hub = TelemetryHub()
        hub.publish("snapshot", {"controller": "qs"})
        hub.publish("interval", {"n": 1}, time=30.0, shard=0)
        hub.publish("interval", {"n": 2}, time=60.0, shard=0)
        hub.publish("interval", {"n": 3}, time=60.0, shard=1)
        hub.publish("run_end", {"done": True}, shard=1)
        snap = hub.snapshot()
        assert snap["v"] == PROTOCOL_VERSION
        assert snap["seq"] == 5
        assert snap["run"] == {"controller": "qs"}
        # Latest interval per shard wins.
        assert snap["shards"]["0"]["data"] == {"n": 2}
        assert snap["shards"]["1"]["data"] == {"n": 3}
        assert snap["run_end"]["1"] == {"done": True}

    def test_snapshot_is_a_deep_copy(self):
        hub = TelemetryHub()
        hub.publish("interval", {"nested": {"n": 1}}, shard=0)
        snap = hub.snapshot()
        snap["shards"]["0"]["data"]["nested"]["n"] = 99
        assert hub.snapshot()["shards"]["0"]["data"]["nested"]["n"] == 1

    def test_rebalance_history_is_bounded(self):
        hub = TelemetryHub()
        for index in range(SNAPSHOT_REBALANCES + 10):
            hub.publish("shard_rebalance", {"n": index}, time=float(index))
        rebalances = hub.snapshot()["rebalances"]
        assert len(rebalances) == SNAPSHOT_REBALANCES
        assert rebalances[-1]["data"]["n"] == SNAPSHOT_REBALANCES + 9

    def test_subscribe_before_snapshot_leaves_no_gap(self):
        hub = TelemetryHub()
        hub.publish("interval", {"n": 1}, shard=0)
        sub = hub.subscribe()
        snap = hub.snapshot()
        hub.publish("interval", {"n": 2}, shard=0)
        streamed = [e.seq for e in sub.drain()]
        # Everything after the snapshot's seq is in the stream: a client
        # that applies the snapshot then replays seq > snapshot.seq sees
        # every event exactly once.
        assert snap["seq"] == 1
        assert streamed == [2]


class TestSubscription:
    def test_slow_consumer_drops_oldest(self):
        hub = TelemetryHub()
        sub = hub.subscribe(max_queue=3)
        for index in range(10):
            hub.publish("interval", {"n": index})
        assert sub.dropped == 7
        assert sub.queued == 3
        kept = [e.data["n"] for e in sub.drain()]
        assert kept == [7, 8, 9]  # newest survive

    def test_pop_timeout_returns_none(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        assert sub.pop(timeout=0.01) is None

    def test_pop_wakes_on_publish_from_other_thread(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        timer = threading.Timer(0.05, hub.publish, args=("interval", {"n": 1}))
        timer.start()
        event = sub.pop(timeout=5.0)
        timer.join()
        assert event is not None and event.data == {"n": 1}

    def test_close_unsubscribes_and_wakes(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        assert hub.subscriber_count == 1
        timer = threading.Timer(0.05, sub.close)
        timer.start()
        assert sub.pop(timeout=5.0) is None
        timer.join()
        assert hub.subscriber_count == 0
        assert sub.closed
        # Offers after close are ignored, not queued.
        hub.publish("interval", {"n": 1})
        assert sub.queued == 0

    def test_invalid_max_queue_rejected(self):
        hub = TelemetryHub()
        for bad in (0, -1, 1.5, True, "8"):
            with pytest.raises(MetricsError):
                hub.subscribe(max_queue=bad)


class TestHubMetrics:
    def test_fleet_prometheus_renders_each_family_once(self):
        hub = TelemetryHub()
        for shard in (0, 1):
            registry = MetricsRegistry()
            registry.counter(
                "releases_total", labels={"class": "class1"},
                description="Released queries",
            ).inc(shard + 1)
            hub.register_registry(registry, shard=shard)
        text = hub.prometheus()
        assert text.count("# HELP releases_total") == 1
        assert 'releases_total{class="class1",shard="0"} 1.0' in text
        assert 'releases_total{class="class1",shard="1"} 2.0' in text

    def test_unsharded_registry_has_no_shard_label(self):
        hub = TelemetryHub()
        registry = MetricsRegistry()
        registry.gauge("queue_length", callback=lambda: 4.0)
        hub.register_registry(registry)
        assert "queue_length 4.0" in hub.prometheus()


class TestRunPublisher:
    def test_hub_attached_run_matches_golden_data(self):
        """Publishing is observation-only: the pinned seeded run must stay
        bit-identical with a hub (and a slow subscriber) attached."""
        hub = TelemetryHub()
        hub.subscribe(max_queue=1)  # pathologically slow consumer
        result = run_spec(_golden_spec(), hub=hub)
        series = result.performance_series()
        for class_name, golden in GOLDEN_SERIES.items():
            assert series[class_name] == golden, class_name
        assert result.goal_attainment() == GOLDEN_ATTAINMENT
        plans = [
            {name: round(limit) for name, limit in limits.items()}
            for _, limits in result.collector._plan_points
        ]
        assert plans == GOLDEN_PLANS

    def test_interval_events_match_controller_plans(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        result = run_spec(_tiny_spec(), hub=hub)
        events = sub.drain()
        intervals = [e for e in events if e.type == "interval"]
        assert len(intervals) == len(result.collector._plan_points)
        assert [e.type for e in events[:1]] == ["snapshot"]
        assert events[-1].type == "run_end"
        last = intervals[-1]
        assert last.shard is None
        assert set(last.data["classes"]) == {c.name for c in result.classes}
        assert last.data["cost_limits"]  # the plan that interval installed
        # The embedded record is the full ControlIntervalRecord dict.
        assert last.data["record"]["time"] == last.time

    def test_run_end_carries_final_attainment(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        result = run_spec(_tiny_spec(), hub=hub)
        ends = [e for e in sub.drain() if e.type == "run_end"]
        assert len(ends) == 1
        assert ends[0].data["attainment"] == result.goal_attainment()
        assert (
            ends[0].data["total_completions"]
            == result.collector.total_completions
        )

    def test_traced_run_publishes_spans(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        run_spec(_tiny_spec(tracing=True), hub=hub)
        spans_events = [e for e in sub.drain() if e.type == "spans"]
        assert spans_events
        for event in spans_events:
            slowest = event.data["slowest"]
            assert slowest
            durations = [s["duration"] for s in slowest]
            assert durations == sorted(durations, reverse=True)

    def test_static_controller_publishes_start_and_end_only(self):
        hub = TelemetryHub()
        sub = hub.subscribe()
        run_spec(_tiny_spec(controller="none"), hub=hub)
        types = [e.type for e in sub.drain()]
        assert types == ["snapshot", "run_end"]

    def test_attach_bounds_registry_sampling(self):
        hub = TelemetryHub()
        result = run_spec(_tiny_spec(), hub=hub)
        registry = result.extras["metrics_registry"]
        from repro.obs.live.publish import LIVE_MAX_SAMPLES

        assert registry.max_samples == LIVE_MAX_SAMPLES


class TestShardedPublishing:
    def _run(self, rebalance, shards=2):
        base = ExperimentSpec(controller="qs", config=_tiny_config())
        spec = ShardedExperimentSpec(
            base=base, shards=shards, rebalance=rebalance
        )
        hub = TelemetryHub()
        sub = hub.subscribe(max_queue=100_000)
        result = run_sharded(spec, jobs=1, hub=hub)
        return result, sub.drain()

    @pytest.mark.parametrize("rebalance", ["static", "interval"])
    def test_per_shard_completions_sum_to_merged_report(self, rebalance):
        result, events = self._run(rebalance)
        summed = {}
        for event in events:
            if event.type == "run_end" and event.shard is not None:
                for name, count in event.data["completions"].items():
                    summed[name] = summed.get(name, 0) + int(count)
        merged = {}
        for summary in result.summaries:
            for name, count in summary.class_completions.items():
                merged[name] = merged.get(name, 0) + int(count)
        assert summed == merged
        assert sum(summed.values()) == result.report.total_completions

    @pytest.mark.parametrize("rebalance", ["static", "interval"])
    def test_fleet_events_bracket_per_shard_events(self, rebalance):
        result, events = self._run(rebalance)
        assert events[0].type == "snapshot"
        assert events[0].data["shards"] == 2
        fleet_ends = [
            e for e in events if e.type == "run_end" and e.shard is None
        ]
        assert len(fleet_ends) == 1
        report = fleet_ends[0].data["report"]
        assert report["total_completions"] == result.report.total_completions
        shard_intervals = {
            e.shard for e in events if e.type == "interval"
        }
        assert shard_intervals == {0, 1}

    def test_interval_mode_publishes_each_resplit(self):
        result, events = self._run("interval")
        rebalances = [e for e in events if e.type == "shard_rebalance"]
        assert rebalances
        total = default_config().system_cost_limit
        for event in rebalances:
            assert event.data["mode"] == "interval"
            assert len(event.data["limits"]) == 2
            assert sum(event.data["limits"]) == pytest.approx(total)
        # The last published split is the run's final partition.
        assert rebalances[-1].data["limits"] == pytest.approx(
            result.final_cost_limits
        )

    def test_static_mode_publishes_split_once_at_start(self):
        result, events = self._run("static")
        rebalances = [e for e in events if e.type == "shard_rebalance"]
        assert len(rebalances) == 1
        assert rebalances[0].data["mode"] == "static"
        assert rebalances[0].time == 0.0
        assert rebalances[0].data["limits"] == pytest.approx(
            result.final_cost_limits
        )

    def test_sharded_results_identical_with_and_without_hub(self):
        base = ExperimentSpec(controller="qs", config=_tiny_config())
        with_hub, _ = self._run("static")
        without_hub = run_sharded(
            ShardedExperimentSpec(base=base, shards=2, rebalance="static"),
            jobs=1,
        )
        assert (
            with_hub.report.total_completions
            == without_hub.report.total_completions
        )
        assert with_hub.report.completions == without_hub.report.completions
        assert with_hub.report.attainment == pytest.approx(
            without_hub.report.attainment
        )

    def test_hub_with_parallel_jobs_rejected(self):
        base = ExperimentSpec(controller="qs", config=_tiny_config())
        spec = ShardedExperimentSpec(base=base, shards=2, rebalance="static")
        with pytest.raises(ConfigurationError):
            run_sharded(spec, jobs=2, hub=TelemetryHub())


class TestLiveServer:
    @pytest.fixture
    def served_hub(self):
        hub = TelemetryHub()
        server = LiveServer(hub).start()
        yield hub, server
        server.stop()

    def _get(self, server, path):
        with urllib.request.urlopen(server.url.rstrip("/") + path, timeout=10) as r:
            return r.status, r.headers, r.read()

    def test_port_is_bound_and_url_formed(self, served_hub):
        _, server = served_hub
        assert server.port > 0
        assert server.url == "http://127.0.0.1:{}/".format(server.port)
        assert server.running

    def test_snapshot_endpoint(self, served_hub):
        hub, server = served_hub
        hub.publish("interval", {"n": 7}, time=1.0, shard=0)
        status, headers, body = self._get(server, "/api/snapshot")
        assert status == 200
        assert headers["Content-Type"].startswith("application/json")
        snap = json.loads(body)
        assert snap["v"] == PROTOCOL_VERSION
        assert snap["shards"]["0"]["data"] == {"n": 7}

    def test_metrics_endpoint(self, served_hub):
        hub, server = served_hub
        registry = MetricsRegistry()
        registry.counter("releases_total", description="Released").inc(3)
        hub.register_registry(registry, shard=0)
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        assert 'releases_total{shard="0"} 3.0' in body.decode()

    def test_dashboard_html_served(self, served_hub):
        _, server = served_hub
        status, headers, body = self._get(server, "/")
        assert status == 200
        text = body.decode()
        assert "<!DOCTYPE html>" in text
        assert "EventSource" in text

    def test_unknown_path_404(self, served_hub):
        _, server = served_hub
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            self._get(server, "/nope")
        assert excinfo.value.code == 404

    def test_sse_stream_snapshot_then_events(self, served_hub):
        hub, server = served_hub
        hub.publish("interval", {"n": 1}, time=1.0, shard=0)
        request = urllib.request.Request(
            server.url + "events", headers={"Accept": "text/event-stream"}
        )
        stream = urllib.request.urlopen(request, timeout=10)
        try:
            assert stream.headers["Content-Type"].startswith("text/event-stream")
            first = stream.readline().decode()
            assert first == "event: snapshot\n"
            payload = json.loads(
                stream.readline().decode().split("data: ", 1)[1]
            )
            assert payload["snapshot"]["shards"]["0"]["data"] == {"n": 1}
            stream.readline()  # frame separator
            hub.publish("interval", {"n": 2}, time=2.0, shard=0)
            lines = [stream.readline().decode() for _ in range(3)]
            assert lines[0] == "event: interval\n"
            assert lines[1] == "id: 2\n"
            event = json.loads(lines[2].split("data: ", 1)[1])
            assert event["data"] == {"n": 2}
            assert event["v"] == PROTOCOL_VERSION
        finally:
            stream.close()

    def test_stop_is_idempotent_and_releases_port(self):
        hub = TelemetryHub()
        server = LiveServer(hub).start()
        port = server.port
        server.stop()
        server.stop()
        assert not server.running
        # The port can be rebound immediately (listener fully closed).
        rebound = LiveServer(hub, port=port).start()
        try:
            assert rebound.port == port
        finally:
            rebound.stop()

    def test_port_before_start_raises(self):
        server = LiveServer(TelemetryHub())
        with pytest.raises(RuntimeError):
            server.port


class TestCLIWiring:
    def test_run_parser_accepts_dashboard_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "run", "--dashboard", "--port", "0",
                "--port-file", "/tmp/p", "--linger", "2.5",
            ]
        )
        assert args.dashboard is True
        assert args.port == 0
        assert args.linger == 2.5

    def test_serve_parser_shares_run_options(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--backend", "sqlite", "--shards", "2", "--port", "0"]
        )
        assert args.func.__name__ == "_cmd_serve"
        assert args.backend == "sqlite"
        assert args.shards == 2
