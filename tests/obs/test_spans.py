"""Tests for the span data model and its aggregation helpers."""

import pytest

from repro.errors import SimulationError
from repro.obs.spans import (
    PHASES,
    TERMINAL_PHASES,
    PhaseStats,
    Span,
    phase_breakdown,
    slowest_spans,
    validate_spans,
)


def span(qid, phase, begin, end=None, class_name="class1", **kwargs):
    built = Span(query_id=qid, class_name=class_name, phase=phase,
                 begin=begin, **kwargs)
    if end is not None:
        built.close(end)
    return built


class TestSpan:
    def test_close_and_duration(self):
        s = span(1, "queue_wait", 2.0, 5.5)
        assert s.closed
        assert s.duration == pytest.approx(3.5)
        assert not s.truncated

    def test_duration_before_close_raises(self):
        s = span(1, "execute", 2.0)
        with pytest.raises(SimulationError):
            _ = s.duration

    def test_double_close_raises(self):
        s = span(1, "execute", 2.0, 3.0)
        with pytest.raises(SimulationError):
            s.close(4.0)

    def test_close_before_begin_raises(self):
        s = span(1, "execute", 2.0)
        with pytest.raises(SimulationError):
            s.close(1.0)

    def test_truncated_close(self):
        s = span(1, "execute", 2.0)
        s.close(2.0, truncated=True)
        assert s.truncated
        assert s.duration == 0.0

    def test_dict_roundtrip(self):
        s = span(7, "intercept", 1.25, 1.5, template="q1", kind="olap",
                 estimated_cost=900.0, period=3)
        rebuilt = Span.from_dict(s.to_dict())
        assert rebuilt == s
        assert s.to_dict()["class"] == "class1"

    def test_dict_roundtrip_open_span(self):
        s = span(7, "intercept", 1.25)
        rebuilt = Span.from_dict(s.to_dict())
        assert rebuilt.end is None
        assert not rebuilt.closed


class TestPhaseStats:
    def test_empty_stats_are_zero(self):
        stats = PhaseStats("class1", "queue_wait")
        assert stats.count == 0
        assert stats.mean == 0.0
        assert stats.max == 0.0
        assert stats.percentile(95.0) == 0.0

    def test_aggregates(self):
        stats = PhaseStats("class1", "queue_wait")
        for d in (1.0, 2.0, 3.0, 4.0, 10.0):
            stats.add(d)
        assert stats.count == 5
        assert stats.mean == pytest.approx(4.0)
        assert stats.max == 10.0
        assert stats.percentile(0.0) == 1.0
        assert stats.percentile(50.0) == 3.0
        assert stats.percentile(100.0) == 10.0

    def test_percentile_out_of_range(self):
        stats = PhaseStats("class1", "queue_wait")
        stats.add(1.0)
        with pytest.raises(SimulationError):
            stats.percentile(101.0)

    def test_to_dict_shape(self):
        stats = PhaseStats("class1", "execute")
        stats.add(2.0)
        assert stats.to_dict() == {
            "count": 1, "mean": 2.0, "p50": 2.0, "p95": 2.0, "max": 2.0,
        }


class TestPhaseBreakdown:
    def test_groups_by_class_and_phase(self):
        spans = [
            span(1, "queue_wait", 0.0, 4.0, class_name="class1"),
            span(1, "execute", 4.0, 9.0, class_name="class1"),
            span(2, "queue_wait", 1.0, 2.0, class_name="class2"),
        ]
        cells = phase_breakdown(spans)
        assert set(cells) == {"class1", "class2"}
        assert cells["class1"]["queue_wait"].mean == pytest.approx(4.0)
        assert cells["class1"]["execute"].count == 1
        assert cells["class2"]["queue_wait"].max == pytest.approx(1.0)

    def test_skips_terminals_and_open_spans(self):
        spans = [
            span(1, "cancelled", 5.0, 5.0),
            span(2, "execute", 1.0),  # still open
        ]
        assert phase_breakdown(spans) == {}


def test_slowest_spans_orders_by_duration():
    spans = [
        span(1, "queue_wait", 0.0, 1.0),
        span(2, "queue_wait", 0.0, 9.0),
        span(3, "queue_wait", 0.0, 4.0),
        span(4, "execute", 0.0, 99.0),  # wrong phase
        span(5, "queue_wait", 0.0),     # open, excluded
    ]
    slowest = slowest_spans(spans, phase="queue_wait", n=2)
    assert [s.query_id for s in slowest] == [2, 3]


class TestValidateSpans:
    def good(self):
        return [
            span(1, "intercept", 0.0, 0.5),
            span(1, "queue_wait", 0.5, 4.0),
            span(1, "execute", 4.0, 9.0),
        ]

    def test_clean_trace_has_no_problems(self):
        assert validate_spans(self.good()) == []

    def test_unclosed_span_reported(self):
        problems = validate_spans([span(3, "execute", 1.0)])
        assert any("never closed" in p for p in problems)

    def test_unknown_phase_reported(self):
        problems = validate_spans([span(3, "teleport", 1.0, 2.0)])
        assert any("unknown phase" in p for p in problems)

    def test_repeated_phase_reported(self):
        spans = self.good() + [span(1, "execute", 9.0, 10.0)]
        assert any("repeats phase" in p for p in validate_spans(spans))

    def test_out_of_order_phases_reported(self):
        spans = [
            span(1, "execute", 0.0, 1.0),
            span(1, "queue_wait", 2.0, 3.0),
        ]
        assert any("out of order" in p for p in validate_spans(spans))

    def test_overlap_reported(self):
        spans = [
            span(1, "queue_wait", 0.0, 5.0),
            span(1, "execute", 4.0, 9.0),
        ]
        assert any("overlaps" in p for p in validate_spans(spans))

    def test_double_terminal_reported(self):
        spans = [
            span(1, "cancelled", 1.0, 1.0),
            span(1, "rejected", 2.0, 2.0),
        ]
        assert any("terminal markers" in p for p in validate_spans(spans))

    def test_span_after_terminal_reported(self):
        spans = [
            span(1, "cancelled", 1.0, 1.0),
            span(1, "execute", 2.0, 3.0),
        ]
        assert any("after its terminal" in p for p in validate_spans(spans))


def test_phase_constants():
    assert PHASES == ("intercept", "queue_wait", "execute")
    assert TERMINAL_PHASES == ("cancelled", "rejected")
