"""Tests for the controller self-profiler (deterministic fake clock)."""

import pytest

from repro.errors import SimulationError
from repro.obs.profiling import IntervalProfiler, summarize_overhead


class FakeClock:
    """A settable wall clock so tests pin exact durations."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return FakeClock()


@pytest.fixture
def profiler(clock):
    return IntervalProfiler(clock=clock)


class TestIntervalProfiler:
    def test_sections_and_total(self, profiler, clock):
        profiler.begin()
        clock.t = 1.0
        with profiler.section("monitor"):
            clock.t = 1.5
        with profiler.section("solver"):
            clock.t = 4.0
        clock.t = 4.25
        record = profiler.finish()
        assert record == {
            "monitor_s": pytest.approx(0.5),
            "solver_s": pytest.approx(2.5),
            "total_s": pytest.approx(4.25),
        }
        assert profiler.history == [record]

    def test_reentered_sections_accumulate(self, profiler, clock):
        profiler.begin()
        with profiler.section("solver"):
            clock.t = 1.0
        with profiler.section("solver"):
            clock.t = 3.0
        record = profiler.finish()
        assert record["solver_s"] == pytest.approx(3.0)

    def test_section_times_even_when_body_raises(self, profiler, clock):
        profiler.begin()
        with pytest.raises(ValueError):
            with profiler.section("solver"):
                clock.t = 2.0
                raise ValueError("solver blew up")
        record = profiler.finish()
        assert record["solver_s"] == pytest.approx(2.0)

    def test_begin_twice_is_an_error(self, profiler):
        profiler.begin()
        with pytest.raises(SimulationError):
            profiler.begin()

    def test_finish_without_begin_is_an_error(self, profiler):
        with pytest.raises(SimulationError):
            profiler.finish()

    def test_section_outside_interval_is_an_error(self, profiler):
        with pytest.raises(SimulationError):
            with profiler.section("solver"):
                pass

    def test_finish_resets_for_next_interval(self, profiler, clock):
        profiler.begin()
        clock.t = 1.0
        profiler.finish()
        profiler.begin()
        clock.t = 3.0
        profiler.finish()
        totals = [record["total_s"] for record in profiler.history]
        assert totals == pytest.approx([1.0, 2.0])

    def test_summary_aggregates_history(self, profiler, clock):
        for duration in (1.0, 3.0):
            start = clock.t
            profiler.begin()
            clock.t = start + duration
            profiler.finish()
        summary = profiler.summary()
        assert summary["total_s"]["mean_s"] == pytest.approx(2.0)
        assert summary["total_s"]["max_s"] == pytest.approx(3.0)
        assert summary["total_s"]["count"] == 2

    def test_default_clock_is_wall_time(self):
        profiler = IntervalProfiler()
        profiler.begin()
        with profiler.section("work"):
            sum(range(1000))
        record = profiler.finish()
        assert record["work_s"] >= 0.0
        assert record["total_s"] >= record["work_s"]


class TestSummarizeOverhead:
    def test_mean_max_count(self):
        records = [
            {"solver_s": 1.0, "total_s": 2.0},
            {"solver_s": 3.0, "total_s": 4.0},
        ]
        summary = summarize_overhead(records)
        assert summary["solver_s"] == {
            "mean_s": pytest.approx(2.0),
            "max_s": pytest.approx(3.0),
            "count": 2,
        }

    def test_absent_keys_are_skipped_not_zeroed(self):
        records = [{"solver_s": 4.0}, {"monitor_s": 1.0}]
        summary = summarize_overhead(records)
        assert summary["solver_s"]["count"] == 1
        assert summary["solver_s"]["mean_s"] == pytest.approx(4.0)
        assert summary["monitor_s"]["count"] == 1

    def test_empty_input(self):
        assert summarize_overhead([]) == {}
