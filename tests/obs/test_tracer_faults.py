"""Span balance under injected faults.

The tracer's headline guarantee is that the trace balances on *any* run,
including hostile ones: cancel storms abandon queued queries mid-phase and
dropped completion callbacks starve the dispatcher's accounting.  The
tracer listens to the engine's completion hook directly, so neither fault
may leak an open span.
"""

from repro.faults import FaultInjector
from repro.obs.tracer import QueryTracer

from tests.validation.conftest import make_qs_bundle


def traced_bundle(**kwargs):
    bundle = make_qs_bundle(**kwargs)
    tracer = QueryTracer(
        sim=bundle.sim,
        patroller=bundle.patroller,
        engine=bundle.engine,
        schedule=bundle.schedule,
    )
    return bundle, tracer


def run_to_completion(bundle, tracer):
    bundle.controller.start()
    bundle.manager.start()
    bundle.run()
    tracer.finalize()


def test_clean_run_is_balanced():
    bundle, tracer = traced_bundle()
    run_to_completion(bundle, tracer)
    assert tracer.balanced
    assert tracer.validate() == []
    assert tracer.spans


def test_cancel_storm_keeps_spans_balanced():
    bundle, tracer = traced_bundle()
    injector = FaultInjector(bundle)
    injector.arrival_burst("class1", count=12, delay=4.0)
    injector.cancel_storm(delay=8.0)  # cancel everything queued
    injector.cancel_storm(class_name="class2", fraction=0.5, delay=20.0)
    run_to_completion(bundle, tracer)

    assert tracer.balanced
    assert tracer.validate() == []
    # The storm really cancelled queries, and each one got its terminal
    # marker.
    cancelled = sum(
        f.get("cancelled", 0)
        for f in injector.injected
        if f["fault"] == "cancel_storm"
    )
    markers = [s for s in tracer.spans if s.phase == "cancelled"]
    assert cancelled > 0
    assert len(markers) == cancelled
    for marker in markers:
        assert marker.begin == marker.end


def test_dropped_dispatcher_completions_cannot_leak_spans():
    bundle, tracer = traced_bundle()
    injector = FaultInjector(bundle)
    injector.drop_completions(count=3, component="dispatcher", delay=2.0)
    run_to_completion(bundle, tracer)

    assert tracer.balanced
    assert tracer.validate() == []
    dropped = [f for f in injector.injected if f["fault"] == "drop_completions"]
    assert dropped and dropped[0]["count"] == 3


def test_dropped_monitor_completions_cannot_leak_spans():
    bundle, tracer = traced_bundle()
    FaultInjector(bundle).drop_completions(count=2, component="monitor", delay=2.0)
    run_to_completion(bundle, tracer)
    assert tracer.balanced
    assert tracer.validate() == []


def test_release_jitter_keeps_spans_ordered():
    bundle, tracer = traced_bundle()
    FaultInjector(bundle).release_latency_jitter(release_latency=0.5, delay=5.0)
    run_to_completion(bundle, tracer)
    assert tracer.balanced
    assert tracer.validate() == []
