"""Tests for span export: JSONL and Chrome trace-event JSON."""

import json

import pytest

from repro.errors import SimulationError
from repro.obs.export import (
    load_chrome_trace,
    load_spans,
    load_spans_jsonl,
    save_chrome_trace,
    save_spans_jsonl,
    spans_to_chrome,
    spans_to_jsonl,
)
from repro.obs.spans import Span


def make_spans():
    spans = [
        Span(query_id=1, class_name="class1", phase="intercept", begin=0.0,
             template="q1", kind="olap", estimated_cost=900.0, period=0),
        Span(query_id=1, class_name="class1", phase="queue_wait", begin=0.5,
             template="q1", kind="olap", estimated_cost=900.0, period=0),
        Span(query_id=1, class_name="class1", phase="execute", begin=4.0,
             template="q1", kind="olap", estimated_cost=900.0, period=0),
        Span(query_id=2, class_name="class2", phase="intercept", begin=1.0,
             template="q2", kind="olap", estimated_cost=100.0, period=0),
        Span(query_id=2, class_name="class2", phase="cancelled", begin=2.0,
             template="q2", kind="olap", estimated_cost=100.0, period=0),
    ]
    spans[0].close(0.5)
    spans[1].close(4.0)
    spans[2].close(9.0, truncated=True)
    spans[3].close(2.0)
    spans[4].close(2.0)
    return spans


class TestJsonl:
    def test_text_is_one_line_per_span(self):
        spans = make_spans()
        text = spans_to_jsonl(spans)
        lines = text.strip().splitlines()
        assert len(lines) == len(spans)
        assert json.loads(lines[0])["class"] == "class1"

    def test_roundtrip_is_lossless(self, tmp_path):
        spans = make_spans()
        path = str(tmp_path / "spans.jsonl")
        save_spans_jsonl(spans, path)
        assert load_spans_jsonl(path) == spans


class TestChrome:
    def test_document_shape(self):
        document = spans_to_chrome(make_spans())
        events = document["traceEvents"]
        assert isinstance(events, list) and events
        metadata = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        # One process-name metadata event per class.
        assert {m["args"]["name"] for m in metadata} == {"class1", "class2"}
        assert len(complete) == 4
        assert len(instants) == 1
        assert instants[0]["name"] == "cancelled"

    def test_timestamps_are_microseconds(self):
        events = spans_to_chrome(make_spans())["traceEvents"]
        execute = next(e for e in events if e["name"] == "execute")
        assert execute["ts"] == pytest.approx(4.0e6)
        assert execute["dur"] == pytest.approx(5.0e6)
        assert execute["args"]["truncated"] is True

    def test_queries_are_threads_classes_are_processes(self):
        events = spans_to_chrome(make_spans())["traceEvents"]
        spans_q1 = [e for e in events if e.get("args", {}).get("query_id") == 1]
        assert {e["tid"] for e in spans_q1} == {1}
        assert len({e["pid"] for e in spans_q1}) == 1

    def test_roundtrip_preserves_identity(self, tmp_path):
        spans = make_spans()
        path = str(tmp_path / "trace.json")
        save_chrome_trace(spans, path)
        loaded = load_chrome_trace(path)
        assert len(loaded) == len(spans)
        by_key = {(s.query_id, s.phase): s for s in loaded}
        for original in spans:
            restored = by_key[(original.query_id, original.phase)]
            assert restored.class_name == original.class_name
            assert restored.begin == pytest.approx(original.begin)
            assert restored.end == pytest.approx(original.end)
            assert restored.template == original.template
            assert restored.estimated_cost == original.estimated_cost
            assert restored.period == original.period
            assert restored.truncated == original.truncated

    def test_non_trace_document_rejected(self, tmp_path):
        path = str(tmp_path / "other.json")
        with open(path, "w") as handle:
            json.dump({"results": []}, handle)
        with pytest.raises(SimulationError):
            load_chrome_trace(path)


class TestLoadSpansDispatch:
    def test_jsonl_suffix(self, tmp_path):
        path = str(tmp_path / "spans.jsonl")
        save_spans_jsonl(make_spans(), path)
        assert len(load_spans(path)) == 5

    def test_json_suffix_is_chrome(self, tmp_path):
        path = str(tmp_path / "trace.json")
        save_chrome_trace(make_spans(), path)
        assert len(load_spans(path)) == 5

    def test_directory_prefers_spans_jsonl(self, tmp_path):
        save_spans_jsonl(make_spans(), str(tmp_path / "spans.jsonl"))
        save_chrome_trace(make_spans()[:2], str(tmp_path / "trace.json"))
        assert len(load_spans(str(tmp_path))) == 5

    def test_directory_falls_back_to_trace_json(self, tmp_path):
        save_chrome_trace(make_spans(), str(tmp_path / "trace.json"))
        assert len(load_spans(str(tmp_path))) == 5

    def test_directory_with_single_export_file(self, tmp_path):
        save_spans_jsonl(make_spans(), str(tmp_path / "myrun.jsonl"))
        assert len(load_spans(str(tmp_path))) == 5

    def test_empty_directory_rejected(self, tmp_path):
        with pytest.raises(SimulationError):
            load_spans(str(tmp_path))


class TestOverwriteGuards:
    def test_spans_jsonl_refuses_existing_file(self, tmp_path):
        from repro.errors import ExportError

        path = tmp_path / "spans.jsonl"
        path.write_text("precious\n")
        with pytest.raises(ExportError, match="overwrite"):
            save_spans_jsonl(make_spans(), str(path))
        assert path.read_text() == "precious\n"
        save_spans_jsonl(make_spans(), str(path), overwrite=True)
        assert load_spans(str(path))

    def test_chrome_trace_refuses_existing_file(self, tmp_path):
        from repro.errors import ExportError

        path = tmp_path / "trace.json"
        path.write_text("precious\n")
        with pytest.raises(ExportError, match="overwrite"):
            save_chrome_trace(make_spans(), str(path))
        assert path.read_text() == "precious\n"
        save_chrome_trace(make_spans(), str(path), overwrite=True)
        assert load_spans(str(path))
