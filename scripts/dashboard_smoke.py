#!/usr/bin/env python
"""End-to-end smoke test for the live dashboard (stdlib only).

Launches a short sharded sqlite-backend run with ``--dashboard`` on an
ephemeral port, then — while the run executes — exercises every endpoint:

* ``/api/snapshot`` parses as JSON and carries protocol version 1;
* ``/events`` streams SSE: at least 2 ``interval`` events arrive;
* ``/metrics`` renders the Prometheus exposition with per-shard labels;
* ``/`` serves the embedded dashboard HTML;

and finally asserts the run process exits 0 (clean server shutdown).

Used as the CI "dashboard smoke" step; runnable locally::

    PYTHONPATH=src python scripts/dashboard_smoke.py
"""

import json
import os
import subprocess
import sys
import tempfile
import time
import urllib.request

TIMEOUT = 120.0  # overall wall-clock budget, seconds
SSE_INTERVAL_EVENTS = 2  # acceptance floor


def fetch(url, timeout=10.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.read().decode("utf-8")


def wait_for_port(path, proc, deadline):
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            raise SystemExit(
                "run process exited early (rc={})".format(proc.returncode)
            )
        try:
            with open(path) as handle:
                text = handle.read().strip()
            if text:
                return int(text)
        except OSError:
            pass
        time.sleep(0.2)
    raise SystemExit("timed out waiting for the dashboard port file")


def count_sse_intervals(base, want, deadline):
    """Read the SSE stream until ``want`` interval events (or deadline)."""
    seen = 0
    request = urllib.request.Request(
        base + "events", headers={"Accept": "text/event-stream"}
    )
    with urllib.request.urlopen(request, timeout=30.0) as stream:
        for raw in stream:
            line = raw.decode("utf-8").rstrip("\n")
            if line == "event: interval":
                seen += 1
                if seen >= want:
                    return seen
            if time.monotonic() > deadline:
                return seen
    return seen


def main():
    start = time.monotonic()
    deadline = start + TIMEOUT
    with tempfile.TemporaryDirectory() as tmp:
        port_file = os.path.join(tmp, "port")
        cmd = [
            sys.executable, "-m", "repro", "run",
            "--backend", "sqlite", "--shards", "2",
            "--dashboard", "--port-file", port_file,
            "--linger", "6",
        ]
        proc = subprocess.Popen(cmd)
        try:
            port = wait_for_port(port_file, proc, deadline)
            base = "http://127.0.0.1:{}/".format(port)
            print("dashboard up on port", port)

            snapshot = json.loads(fetch(base + "api/snapshot"))
            assert snapshot["v"] == 1, snapshot
            print("snapshot OK (seq={})".format(snapshot["seq"]))

            intervals = count_sse_intervals(
                base, SSE_INTERVAL_EVENTS, deadline
            )
            assert intervals >= SSE_INTERVAL_EVENTS, (
                "only {} SSE interval events (need >= {})".format(
                    intervals, SSE_INTERVAL_EVENTS
                )
            )
            print("SSE OK ({} interval events)".format(intervals))

            metrics = fetch(base + "metrics")
            assert "# HELP" in metrics and "# TYPE" in metrics, metrics[:200]
            assert 'shard="0"' in metrics, "per-shard labels missing"
            print("metrics OK ({} lines)".format(len(metrics.splitlines())))

            html = fetch(base)
            assert "<!DOCTYPE html>" in html and "EventSource" in html
            print("dashboard HTML OK ({} bytes)".format(len(html)))

            snapshot = json.loads(fetch(base + "api/snapshot"))
            assert snapshot["shards"], "no per-shard interval state"
            assert snapshot["run"]["shards"] == 2, snapshot["run"]
            print("fleet snapshot OK (shards seen: {})".format(
                sorted(snapshot["shards"])
            ))

            rc = proc.wait(timeout=max(1.0, deadline - time.monotonic()))
            assert rc == 0, "run exited {}".format(rc)
            print("clean shutdown OK (exit 0, {:.1f}s total)".format(
                time.monotonic() - start
            ))
        finally:
            if proc.poll() is None:
                proc.terminate()
                try:
                    proc.wait(timeout=10.0)
                except subprocess.TimeoutExpired:
                    proc.kill()


if __name__ == "__main__":
    main()
