"""The ``repro bench`` micro + macro benchmark suite.

Micro benchmarks isolate the hot subsystems the
:class:`~repro.obs.profiling.IntervalProfiler` already points at — the
event/timer heap, the processor-sharing resource core, and the Performance
Solver — while the macro benchmark runs the full replication experiment
and reports simulated-queries per wall-second, the headline number for
"how cheap is a million-query scenario sweep".

All benchmarks are deterministic given their scale (fixed seeds, no wall
clock inside the measured work); only the *wall time* varies between
machines and commits, which is exactly what the ``BENCH_<n>.json``
trajectory tracks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.bench.report import (
    BenchReport,
    BenchmarkResult,
    git_sha,
    machine_info,
    stat_from_accumulator,
)
from repro.errors import BenchError
from repro.sim.stats import WelfordAccumulator

#: Default number of repeated trials per benchmark.
DEFAULT_TRIALS = 3


@dataclass(frozen=True)
class BenchScale:
    """Knobs that size every benchmark (full vs ``--smoke``)."""

    smoke: bool = False

    @property
    def timer_events(self) -> int:
        """Events scheduled by the timer-heap micro benchmark."""
        return 20_000 if self.smoke else 300_000

    @property
    def ps_jobs(self) -> int:
        """Jobs pushed through the PS-resource micro benchmark."""
        return 5_000 if self.smoke else 100_000

    @property
    def solver_solves(self) -> int:
        """Solver invocations per solver micro benchmark."""
        return 20 if self.smoke else 200

    @property
    def replication_periods(self) -> int:
        """Schedule periods of the macro replication benchmark."""
        return 2 if self.smoke else 9

    @property
    def replication_period_seconds(self) -> float:
        """Seconds of simulated time per macro period."""
        return 30.0 if self.smoke else 120.0

    @property
    def replication_control_interval(self) -> float:
        """Control interval of the macro replication benchmark."""
        return 15.0 if self.smoke else 60.0


@dataclass(frozen=True)
class BenchCase:
    """One named benchmark: a callable returning ``{metric: value}``."""

    name: str
    kind: str  # "micro" or "macro"
    description: str
    run: Callable[[BenchScale], Dict[str, float]]


def _bench_timer_heap(scale: BenchScale) -> Dict[str, float]:
    """Schedule/cancel/fire a deterministic storm of simulator events.

    A third of the events are cancelled after scheduling, so the run
    exercises tombstone handling (and, post-optimisation, heap
    compaction), not just push/pop throughput.
    """
    from repro.sim.engine import Simulator

    sim = Simulator()
    count = scale.timer_events
    sink = [0]

    def _tick() -> None:
        sink[0] += 1

    handles = []
    # Deterministic pseudo-random delays (Weyl sequence; no RNG draws).
    state = 0
    started = time.perf_counter()
    for index in range(count):
        state = (state + 2654435761) % 4294967296
        delay = (state / 4294967296.0) * 100.0
        handle = sim.schedule(delay, _tick, label="bench:tick")
        if index % 3 == 0:
            handles.append(handle)
        if len(handles) >= 64:
            for pending in handles:
                pending.cancel()
            handles.clear()
    for pending in handles:
        pending.cancel()
    sim.run_until(101.0)
    elapsed = time.perf_counter() - started
    ops = count + sim.fired_events  # one push each + live pops
    return {
        "ops_per_s": ops / elapsed,
        "fired_events": float(sim.fired_events),
        "wall_s": elapsed,
    }


def _bench_ps_resource(scale: BenchScale) -> Dict[str, float]:
    """Closed-loop job churn through one processor-sharing pool."""
    from repro.sim.engine import Simulator
    from repro.sim.resources import ProcessorSharingResource, PSJob

    sim = Simulator()
    pool = ProcessorSharingResource(sim, "bench", servers=4, speed=1.0)
    total = scale.ps_jobs
    submitted = [0]

    def _resubmit(_job: PSJob) -> None:
        if submitted[0] < total:
            submitted[0] += 1
            demand = 0.5 + (submitted[0] % 7) * 0.25
            pool.submit(PSJob("bench", demand, on_complete=_resubmit))

    started = time.perf_counter()
    # 16 concurrent closed-loop streams over a 4-server pool.
    for _ in range(16):
        _resubmit(PSJob("seed", 0.0))
    sim.run(max_events=None)
    elapsed = time.perf_counter() - started
    return {
        "jobs_per_s": pool.completed_jobs / elapsed,
        "completed_jobs": float(pool.completed_jobs),
        "wall_s": elapsed,
    }


def _solver_inputs(num_classes: int, variant: int):
    """Deterministic randomized ClassStatus inputs for the solver benches."""
    from repro.core.service_class import (
        ResponseTimeGoal,
        ServiceClass,
        VelocityGoal,
    )
    from repro.core.solver import ClassStatus

    statuses: List[ClassStatus] = []
    for index in range(num_classes):
        mixed = (variant * 31 + index * 17) % 97
        if index == num_classes - 1:
            service_class = ServiceClass(
                "bench_oltp",
                "oltp",
                ResponseTimeGoal(0.25),
                importance=3,
            )
            value = 0.1 + (mixed / 97.0) * 0.4
        else:
            service_class = ServiceClass(
                "bench_olap{}".format(index),
                "olap",
                VelocityGoal(0.3 + 0.05 * index),
                importance=1 + index % 3,
            )
            value = 0.1 + (mixed / 97.0) * 0.8
        statuses.append(
            ClassStatus(
                service_class,
                current_limit=2_000.0 + 1_000.0 * index,
                current_value=value,
            )
        )
    return statuses


def _make_solver(num_classes: int):
    from repro.core.models import OLTPResponseTimeModel
    from repro.core.solver import PerformanceSolver
    from repro.core.utility import make_utility

    return PerformanceSolver(
        utility=make_utility("piecewise"),
        oltp_model=OLTPResponseTimeModel(),
        system_cost_limit=10_000.0 * num_classes,
        grid_timerons=1_000.0,
        min_class_limit=1_000.0,
    )


def _bench_solver(num_classes: int, scale: BenchScale) -> Dict[str, float]:
    solver = _make_solver(num_classes)
    solves = scale.solver_solves
    started = time.perf_counter()
    for variant in range(solves):
        solver.solve(_solver_inputs(num_classes, variant), now=float(variant))
    elapsed = time.perf_counter() - started
    return {
        "solves_per_s": solves / elapsed,
        "evaluations": float(solver.evaluations),
        "wall_s": elapsed,
    }


def _bench_solver_exhaustive(scale: BenchScale) -> Dict[str, float]:
    """3-class solves (the paper's configuration; exhaustive search)."""
    return _bench_solver(3, scale)


def _bench_solver_greedy(scale: BenchScale) -> Dict[str, float]:
    """8-class solves (past the exhaustive cut-off; greedy ascent)."""
    return _bench_solver(8, scale)


def _bench_replication(scale: BenchScale) -> Dict[str, float]:
    """The macro benchmark: one full Query Scheduler replication run.

    The headline metric is ``queries_per_s`` — completed simulated queries
    per wall-second — plus control-intervals/sec, fired events/sec, and
    the wall/sim time ratio.
    """
    from repro.config import (
        MonitorConfig,
        PlannerConfig,
        WorkloadScaleConfig,
        default_config,
    )
    from repro.experiments.runner import run_experiment

    config = default_config(
        seed=7,
        scale=WorkloadScaleConfig(
            period_seconds=scale.replication_period_seconds,
            num_periods=scale.replication_periods,
        ),
        monitor=MonitorConfig(
            snapshot_interval=min(30.0, scale.replication_control_interval / 2.0),
            response_time_window=30.0,
        ),
        planner=PlannerConfig(
            control_interval=scale.replication_control_interval
        ),
    )
    started = time.perf_counter()
    result = run_experiment(controller="qs", config=config)
    elapsed = time.perf_counter() - started
    engine = result.bundle.engine
    sim = result.bundle.sim
    store = result.extras.get("telemetry")
    intervals = len(store) if store is not None else 0
    horizon = scale.replication_period_seconds * scale.replication_periods
    return {
        "queries_per_s": engine.completed_queries / elapsed,
        "control_intervals_per_s": intervals / elapsed,
        "events_per_s": sim.fired_events / elapsed,
        "completed_queries": float(engine.completed_queries),
        "sim_time_ratio": horizon / elapsed,
        "wall_s": elapsed,
    }


def _bench_model_ablation(scale: BenchScale) -> Dict[str, float]:
    """Macro benchmark over the model seam: the single-scenario ablation.

    Replays ``paper-figure3`` under the paper-analytic, learned (trained
    on the paper run's own trace) and oracle models, and reports each
    model's mean SLO attainment and one-step prediction MAE plus the
    total wall time — so a perf trajectory also tracks whether the
    learned model keeps its edge.
    """
    from repro.experiments.model_ablation import run_model_ablation

    started = time.perf_counter()
    report = run_model_ablation(scenarios=("paper-figure3",), smoke=scale.smoke)
    elapsed = time.perf_counter() - started
    entry = report["scenarios"]["paper-figure3"]
    metrics: Dict[str, float] = {"wall_s": elapsed}
    for model_spec, summary in entry.items():
        attainment = summary.get("attainment_mean")
        mae = summary.get("prediction_mae_mean")
        if attainment is not None:
            metrics["{}_attainment".format(model_spec)] = attainment
        if mae is not None:
            metrics["{}_mae".format(model_spec)] = mae
    return metrics


#: Every benchmark in suite order.
BENCH_CASES = (
    BenchCase(
        "timer_heap",
        "micro",
        "simulator event heap: schedule/cancel/fire ops per second",
        _bench_timer_heap,
    ),
    BenchCase(
        "ps_resource",
        "micro",
        "processor-sharing pool: closed-loop jobs per second",
        _bench_ps_resource,
    ),
    BenchCase(
        "solver_exhaustive",
        "micro",
        "3-class Performance Solver solves per second (exhaustive path)",
        _bench_solver_exhaustive,
    ),
    BenchCase(
        "solver_greedy",
        "micro",
        "8-class Performance Solver solves per second (greedy path)",
        _bench_solver_greedy,
    ),
    BenchCase(
        "replication",
        "macro",
        "full qs replication run: simulated queries per wall-second",
        _bench_replication,
    ),
    BenchCase(
        "model_ablation",
        "macro",
        "paper vs learned vs oracle models on paper-figure3: attainment + MAE",
        _bench_model_ablation,
    ),
)

#: Benchmark names in suite order (the ``--only`` vocabulary).
BENCH_NAMES = tuple(case.name for case in BENCH_CASES)


def run_suite(
    trials: int = DEFAULT_TRIALS,
    smoke: bool = False,
    only: Optional[Sequence[str]] = None,
    progress: Optional[Callable[[str, int, Dict[str, float]], None]] = None,
) -> BenchReport:
    """Run the suite and aggregate per-metric stats across trials.

    ``only`` restricts to a subset of :data:`BENCH_NAMES`; ``progress``
    (if given) is called as ``progress(name, trial_index, metrics)`` after
    every trial.
    """
    if trials < 1:
        raise BenchError("bench needs at least one trial")
    selected: List[BenchCase] = []
    if only:
        by_name = {case.name: case for case in BENCH_CASES}
        for name in only:
            case = by_name.get(name)
            if case is None:
                raise BenchError(
                    "unknown benchmark {!r}; expected one of {}".format(
                        name, list(BENCH_NAMES)
                    )
                )
            selected.append(case)
    else:
        selected = list(BENCH_CASES)

    scale = BenchScale(smoke=smoke)
    report = BenchReport(
        machine=machine_info(),
        sha=git_sha(),
        trials=trials,
        smoke=smoke,
    )
    for case in selected:
        accumulators: Dict[str, WelfordAccumulator] = {}
        for trial in range(trials):
            metrics = case.run(scale)
            for metric, value in metrics.items():
                accumulators.setdefault(metric, WelfordAccumulator()).add(
                    float(value)
                )
            if progress is not None:
                progress(case.name, trial, metrics)
        report.benchmarks[case.name] = BenchmarkResult(
            name=case.name,
            kind=case.kind,
            description=case.description,
            metrics={
                metric: stat_from_accumulator(acc)
                for metric, acc in sorted(accumulators.items())
            },
        )
    return report


def format_report(report: BenchReport) -> str:
    """ASCII table of one report's per-benchmark metric means."""
    lines = [
        "bench report (schema v{}, sha={}, trials={}{})".format(
            report.schema_version,
            (report.sha or "none")[:12],
            report.trials,
            ", smoke" if report.smoke else "",
        ),
        "{:<20} {:<6} {:<24} {:>14} {:>12}".format(
            "benchmark", "kind", "metric", "mean", "std"
        ),
    ]
    lines.append("-" * len(lines[1]))
    for name in sorted(report.benchmarks):
        result = report.benchmarks[name]
        for metric in sorted(result.metrics):
            stat = result.metrics[metric]
            lines.append(
                "{:<20} {:<6} {:<24} {:>14.4g} {:>12.4g}".format(
                    name, result.kind, metric, stat["mean"], stat["std"]
                )
            )
    return "\n".join(lines)
