"""Benchmark suite and ``BENCH_<n>.json`` performance-trajectory artifacts.

``repro bench`` runs the suite (micro benchmarks for the event heap, the
processor-sharing core, and the Performance Solver; one macro benchmark
running the full replication experiment) and writes a schema-versioned
report; ``repro bench --compare A B`` prints the per-metric deltas
between two reports.
"""

from repro.bench.report import (
    BENCH_SCHEMA_VERSION,
    BenchmarkResult,
    BenchReport,
    MetricDelta,
    compare_reports,
    format_comparison,
    machine_info,
    next_bench_path,
    stat_from_accumulator,
    validate_report,
)
from repro.bench.suite import (
    BENCH_CASES,
    BENCH_NAMES,
    DEFAULT_TRIALS,
    BenchCase,
    BenchScale,
    format_report,
    run_suite,
)

__all__ = [
    "BENCH_CASES",
    "BENCH_NAMES",
    "BENCH_SCHEMA_VERSION",
    "BenchCase",
    "BenchReport",
    "BenchScale",
    "BenchmarkResult",
    "DEFAULT_TRIALS",
    "MetricDelta",
    "compare_reports",
    "format_comparison",
    "format_report",
    "machine_info",
    "next_bench_path",
    "run_suite",
    "stat_from_accumulator",
    "validate_report",
]
