"""Benchmark artifacts: the schema-versioned ``BENCH_<n>.json`` trajectory.

Every ``repro bench`` run emits one report file at the repo root (or
wherever ``--dir`` points): machine info, the git sha the numbers were
measured at, and per-benchmark statistics aggregated over repeated trials
with :class:`~repro.sim.stats.WelfordAccumulator`.  Reports are numbered
(``BENCH_0.json``, ``BENCH_1.json``, ...) so the sequence of committed
files *is* the performance trajectory of the repository — any speed claim
in a PR should point at the delta between two of them
(``repro bench --compare BENCH_a.json BENCH_b.json``).
"""

from __future__ import annotations

import json
import os
import platform
import re
import subprocess
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import BenchError
from repro.sim.stats import WelfordAccumulator

#: Version of the ``BENCH_*.json`` layout.  Bump on incompatible changes;
#: :func:`validate_report` rejects files from other major versions.
BENCH_SCHEMA_VERSION = 1

#: File-name pattern of committed bench artifacts.
_BENCH_FILE_RE = re.compile(r"^BENCH_(\d+)\.json$")

#: Keys every per-metric stat block must carry.
_STAT_KEYS = ("mean", "std", "min", "max", "trials")

#: Benchmark kinds (micro = one subsystem in isolation, macro = a whole
#: experiment end to end).
BENCH_KINDS = ("micro", "macro")


def stat_from_accumulator(acc: WelfordAccumulator) -> Dict[str, float]:
    """Flatten a Welford accumulator into the schema's stat block."""
    if acc.count == 0:
        raise BenchError("cannot serialise an empty accumulator")
    return {
        "mean": acc.mean,
        "std": acc.stddev,
        "min": acc.minimum,
        "max": acc.maximum,
        "trials": acc.count,
    }


def machine_info() -> Dict[str, object]:
    """Describe the machine the numbers were measured on."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count() or 0,
    }


def git_sha(cwd: Optional[str] = None) -> Optional[str]:
    """The current git commit sha, or None outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass
class BenchmarkResult:
    """Aggregated outcome of one benchmark across trials."""

    name: str
    kind: str  # "micro" or "macro"
    description: str
    #: Per-metric stat blocks, e.g. ``{"queries_per_s": {"mean": ...}}``.
    metrics: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def metric_mean(self, metric: str) -> float:
        """Mean of one metric; raises BenchError if absent."""
        stat = self.metrics.get(metric)
        if stat is None:
            raise BenchError(
                "benchmark {!r} has no metric {!r} (has {})".format(
                    self.name, metric, sorted(self.metrics)
                )
            )
        return stat["mean"]


@dataclass
class BenchReport:
    """One complete ``BENCH_<n>.json`` document."""

    machine: Dict[str, object]
    sha: Optional[str]
    trials: int
    smoke: bool
    benchmarks: Dict[str, BenchmarkResult] = field(default_factory=dict)
    schema_version: int = BENCH_SCHEMA_VERSION

    def to_dict(self) -> Dict[str, object]:
        """The JSON-ready document."""
        return {
            "schema_version": self.schema_version,
            "machine": self.machine,
            "git_sha": self.sha,
            "trials": self.trials,
            "smoke": self.smoke,
            "benchmarks": {
                name: {
                    "kind": result.kind,
                    "description": result.description,
                    "metrics": result.metrics,
                }
                for name, result in self.benchmarks.items()
            },
        }

    def save(self, path: str) -> None:
        """Write the (validated) report as pretty-printed JSON."""
        document = self.to_dict()
        validate_report(document)
        with open(path, "w") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def from_dict(cls, document: Dict[str, object]) -> "BenchReport":
        """Parse and validate a loaded JSON document."""
        validate_report(document)
        benchmarks = {
            name: BenchmarkResult(
                name=name,
                kind=entry["kind"],
                description=entry.get("description", ""),
                metrics=entry["metrics"],
            )
            for name, entry in document["benchmarks"].items()
        }
        return cls(
            machine=document["machine"],
            sha=document.get("git_sha"),
            trials=int(document["trials"]),
            smoke=bool(document["smoke"]),
            benchmarks=benchmarks,
            schema_version=int(document["schema_version"]),
        )

    @classmethod
    def load(cls, path: str) -> "BenchReport":
        """Load and validate a ``BENCH_*.json`` file."""
        try:
            with open(path) as handle:
                document = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise BenchError("cannot read bench report {}: {}".format(path, exc))
        return cls.from_dict(document)


def validate_report(document: object) -> None:
    """Raise :class:`~repro.errors.BenchError` unless ``document`` conforms.

    Checks the schema version, required top-level keys, benchmark kinds,
    and that every metric stat block carries mean/std/min/max/trials with
    numeric values.
    """
    if not isinstance(document, dict):
        raise BenchError("bench report must be a JSON object")
    version = document.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise BenchError(
            "unsupported bench schema version {!r} (expected {})".format(
                version, BENCH_SCHEMA_VERSION
            )
        )
    for key in ("machine", "trials", "smoke", "benchmarks"):
        if key not in document:
            raise BenchError("bench report missing key {!r}".format(key))
    benchmarks = document["benchmarks"]
    if not isinstance(benchmarks, dict) or not benchmarks:
        raise BenchError("bench report needs a non-empty 'benchmarks' object")
    for name, entry in benchmarks.items():
        if not isinstance(entry, dict):
            raise BenchError("benchmark {!r} entry must be an object".format(name))
        if entry.get("kind") not in BENCH_KINDS:
            raise BenchError(
                "benchmark {!r} has kind {!r}; expected one of {}".format(
                    name, entry.get("kind"), BENCH_KINDS
                )
            )
        metrics = entry.get("metrics")
        if not isinstance(metrics, dict) or not metrics:
            raise BenchError("benchmark {!r} has no metrics".format(name))
        for metric, stat in metrics.items():
            if not isinstance(stat, dict):
                raise BenchError(
                    "metric {}/{} must be a stat object".format(name, metric)
                )
            for stat_key in _STAT_KEYS:
                value = stat.get(stat_key)
                if not isinstance(value, (int, float)) or isinstance(value, bool):
                    raise BenchError(
                        "metric {}/{} stat {!r} must be numeric (got {!r})".format(
                            name, metric, stat_key, value
                        )
                    )
            if stat["trials"] < 1:
                raise BenchError(
                    "metric {}/{} has no trials".format(name, metric)
                )


def next_bench_path(directory: str = ".") -> str:
    """The next free ``BENCH_<n>.json`` path in ``directory``."""
    highest = -1
    try:
        names = os.listdir(directory)
    except OSError as exc:
        raise BenchError("cannot list bench directory {}: {}".format(directory, exc))
    for name in names:
        match = _BENCH_FILE_RE.match(name)
        if match:
            highest = max(highest, int(match.group(1)))
    return os.path.join(directory, "BENCH_{}.json".format(highest + 1))


@dataclass(frozen=True)
class MetricDelta:
    """One metric's change between two reports."""

    benchmark: str
    metric: str
    before: float
    after: float

    @property
    def ratio(self) -> float:
        """``after / before`` (inf when before is zero and after is not)."""
        if self.before == 0:
            return float("inf") if self.after else 1.0
        return self.after / self.before

    @property
    def percent(self) -> float:
        """Relative change in percent (+ = larger after)."""
        return (self.ratio - 1.0) * 100.0


def compare_reports(before: BenchReport, after: BenchReport) -> List[MetricDelta]:
    """Per-metric deltas for every benchmark/metric present in both reports.

    Ordered by benchmark name then metric name, so output (and tests) are
    deterministic.  Raises :class:`~repro.errors.BenchError` when the two
    reports share no benchmarks at all.
    """
    deltas: List[MetricDelta] = []
    shared = sorted(set(before.benchmarks) & set(after.benchmarks))
    if not shared:
        raise BenchError(
            "reports share no benchmarks (before has {}, after has {})".format(
                sorted(before.benchmarks), sorted(after.benchmarks)
            )
        )
    for name in shared:
        b = before.benchmarks[name]
        a = after.benchmarks[name]
        for metric in sorted(set(b.metrics) & set(a.metrics)):
            deltas.append(
                MetricDelta(
                    benchmark=name,
                    metric=metric,
                    before=b.metrics[metric]["mean"],
                    after=a.metrics[metric]["mean"],
                )
            )
    return deltas


def format_comparison(deltas: List[MetricDelta]) -> str:
    """ASCII table of before/after means and the relative change."""
    lines = [
        "{:<24} {:<24} {:>14} {:>14} {:>8} {:>9}".format(
            "benchmark", "metric", "before", "after", "ratio", "change"
        )
    ]
    lines.append("-" * len(lines[0]))
    for delta in deltas:
        lines.append(
            "{:<24} {:<24} {:>14.4g} {:>14.4g} {:>7.2f}x {:>+8.1f}%".format(
                delta.benchmark,
                delta.metric,
                delta.before,
                delta.after,
                delta.ratio,
                delta.percent,
            )
        )
    return "\n".join(lines)
