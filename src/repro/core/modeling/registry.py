"""Model registry: spec strings -> constructed models.

A model spec is ``"paper"``, ``"oracle"``, ``"learned"`` (fresh, learns
online) or ``"learned:<path>"`` (weights pre-trained by ``repro train``).
The spec string is what travels through configuration —
``PlannerConfig.model``, ``repro run --model`` and the scenario
``control: model:`` key all carry it — so experiment specs stay plain
picklable data and the model object itself is only built where the
controller is assembled.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

from repro.core.modeling.analytic import OLTPResponseTimeModel, PaperAnalyticModel
from repro.core.modeling.learned import LearnedPerformanceModel, OracleLastValueModel
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.config import PlannerConfig

#: Base model names the registry understands.
MODEL_NAMES = ("paper", "learned", "oracle")


def parse_model_spec(spec: str) -> Tuple[str, Optional[str]]:
    """Split and validate a model spec into ``(base, argument)``.

    Raises :class:`~repro.errors.ConfigurationError` for unknown names or
    an argument on a model that takes none.
    """
    if not isinstance(spec, str) or not spec:
        raise ConfigurationError("model spec must be a non-empty string")
    base, _, argument = spec.partition(":")
    if base not in MODEL_NAMES:
        raise ConfigurationError(
            "unknown performance model {!r}; expected one of {}".format(
                base, MODEL_NAMES
            )
        )
    if argument and base != "learned":
        raise ConfigurationError(
            "model {!r} takes no ':<path>' argument (only 'learned' does)".format(base)
        )
    return base, argument or None


def make_model(spec: str, planner: Optional["PlannerConfig"] = None):
    """Construct the model a spec names, calibrated from planner config.

    ``planner`` supplies the analytic priors (slope, weight, forgetting);
    None falls back to the models' own defaults.  A ``learned:<path>``
    spec loads trained weights — the file's stored hyperparameters win
    over the run's config so predictions match what was trained.
    """
    base, argument = parse_model_spec(spec)
    if base == "paper":
        if planner is not None:
            oltp = OLTPResponseTimeModel(
                prior_slope=planner.oltp_slope_prior,
                prior_weight=planner.oltp_slope_weight,
                forgetting=planner.regression_forgetting,
            )
        else:
            oltp = OLTPResponseTimeModel()
        return PaperAnalyticModel(oltp_model=oltp)
    if base == "oracle":
        return OracleLastValueModel()
    if argument is not None:
        from repro.core.modeling.training import load_model

        return load_model(argument)
    if planner is not None:
        return LearnedPerformanceModel(prior_slope=planner.oltp_slope_prior)
    return LearnedPerformanceModel()
