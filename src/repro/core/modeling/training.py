"""Offline training from exported controller telemetry.

``repro trace`` (and every Query Scheduler run) exports one
:class:`~repro.metrics.telemetry.ControlIntervalRecord` per control
interval as JSONL: per-class measurements, the solver's chosen
allocation, and the dispatcher's queue/in-flight accounting.  That is
exactly one :class:`~repro.core.modeling.protocol.IntervalObservation`
per line — so offline training is a *replay*: reconstruct the
observation stream and feed it through the same
:meth:`LearnedPerformanceModel.observe` path the live controller uses.
One code path, no train/serve skew.

``repro train --telemetry DIR --output model.json`` is the CLI wrapper;
:func:`evaluate_on_records` is the offline (prequential) scorer the
model-ablation bench and the workload-shift tests share.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.modeling.learned import LearnedPerformanceModel
from repro.core.modeling.protocol import (
    ClassMixState,
    IntervalObservation,
    MixSnapshot,
)
from repro.errors import ConfigurationError, ExportError


def _metric_kind(metric: str) -> str:
    """Map a telemetry metric name onto a model class kind."""
    return "olap" if metric == "velocity" else "oltp"


def observations_from_records(
    records: Sequence[Mapping],
) -> List[IntervalObservation]:
    """Reconstruct the per-interval observation stream from record dicts.

    Record ``k``'s measurements/dispatcher state pair with the allocation
    chosen at record ``k-1`` (the limits *active while* those values were
    realised) — the same pairing the live planner hands ``observe``.  The
    first record has no active-plan predecessor and seeds the initial
    mix from its own allocation.
    """
    observations: List[IntervalObservation] = []
    previous_allocation: Optional[Mapping] = None
    for record in records:
        solver = record.get("solver") or {}
        allocation = solver.get("allocation") or {}
        measurements = record.get("measurements") or {}
        dispatcher = record.get("dispatcher") or {}
        active = previous_allocation if previous_allocation is not None else allocation
        states = []
        for name in sorted(set(active) | set(measurements)):
            measurement = measurements.get(name) or {}
            queues = dispatcher.get(name) or {}
            states.append(
                ClassMixState(
                    name=name,
                    kind=_metric_kind(measurement.get("metric", "velocity")),
                    limit=float(active.get(name, 0.0) or 0.0),
                    value=measurement.get("value"),
                    queue_length=int(queues.get("queue_length", 0) or 0),
                    in_flight_count=int(queues.get("in_flight_count", 0) or 0),
                    in_flight_cost=float(queues.get("in_flight_cost", 0.0) or 0.0),
                )
            )
        observations.append(
            IntervalObservation(
                time=float(record.get("time", 0.0)),
                mix=MixSnapshot(
                    time=float(record.get("time", 0.0)), classes=tuple(states)
                ),
            )
        )
        previous_allocation = allocation
    return observations


def fit_from_records(
    records: Sequence[Mapping],
    model: Optional[LearnedPerformanceModel] = None,
) -> LearnedPerformanceModel:
    """Fit (or continue fitting) a learned model from record dicts."""
    if model is None:
        model = LearnedPerformanceModel()
    for observation in observations_from_records(records):
        model.observe(observation)
    # A fresh training pass must not leak its last mix into live pairing.
    model._pending = None
    return model


def evaluate_on_records(
    records: Sequence[Mapping],
    model,
) -> Dict[str, List[Tuple[float, float]]]:
    """Prequential one-step prediction errors of ``model`` over a trace.

    For every interval transition the model predicts each class's next
    value from the current value, the limit that will be active, and the
    current mix — *then* gets to observe the realised outcome (online
    models adapt as they go, exactly as they would live).  Returns
    ``{class: [(time_of_outcome, |error|), ...]}``.

    Replayed through a tiny status shim so the scorer works for any
    :class:`PerformanceModel` without a live control loop.
    """

    class _Goal:
        def __init__(self, target: float) -> None:
            self.target = target

        def achievement(self, value: float) -> float:
            return 1.0

    class _ServiceClass:
        def __init__(self, name: str, kind: str) -> None:
            self.name = name
            self.kind = kind
            self.importance = 1.0
            self.goal = _Goal(1.0)

    class _Status:
        def __init__(self, service_class, current_limit, current_value) -> None:
            self.service_class = service_class
            self.current_limit = current_limit
            self.current_value = current_value

    observations = observations_from_records(records)
    errors: Dict[str, List[Tuple[float, float]]] = {}
    shims: Dict[str, _ServiceClass] = {}
    if observations:
        model.observe(observations[0])
    for index in range(len(observations) - 1):
        now, nxt = observations[index], observations[index + 1]
        for state in nxt.mix.classes:
            before = now.mix.get(state.name)
            if before is None or before.value is None or state.value is None:
                continue
            shim = shims.get(state.name)
            if shim is None:
                shim = _ServiceClass(state.name, state.kind)
                shims[state.name] = shim
            status = _Status(shim, before.limit, before.value)
            predicted = model.predict(status, state.limit, now.mix)
            errors.setdefault(state.name, []).append(
                (nxt.time, abs(state.value - predicted))
            )
        model.observe(nxt)
    return errors


def load_telemetry_records(path: str) -> List[Dict]:
    """Read record dicts from a JSONL file or every ``*.jsonl`` in a dir."""
    if os.path.isdir(path):
        names = sorted(n for n in os.listdir(path) if n.endswith(".jsonl"))
        if not names:
            raise ConfigurationError(
                "telemetry directory {!r} contains no .jsonl files".format(path)
            )
        records: List[Dict] = []
        for name in names:
            records.extend(load_telemetry_records(os.path.join(path, name)))
        return records
    if not os.path.exists(path):
        raise ConfigurationError("telemetry path {!r} does not exist".format(path))
    with open(path) as handle:
        return [json.loads(line) for line in handle if line.strip()]


def save_model(model: LearnedPerformanceModel, path: str, overwrite: bool = True) -> None:
    """Write a trained model as JSON (the ``repro train`` output)."""
    if not overwrite and os.path.exists(path):
        raise ExportError(
            "model output {!r} already exists; pass overwrite=True".format(path)
        )
    with open(path, "w") as handle:
        json.dump(model.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_model(path: str) -> LearnedPerformanceModel:
    """Load a trained model written by :func:`save_model`."""
    if not os.path.exists(path):
        raise ConfigurationError("model file {!r} does not exist".format(path))
    with open(path) as handle:
        try:
            payload = json.load(handle)
        except ValueError as exc:
            raise ConfigurationError(
                "model file {!r} is not valid JSON: {}".format(path, exc)
            )
    return LearnedPerformanceModel.from_dict(payload)
