"""The performance-modeling layer (ROADMAP item 4).

Everything the control plane needs to predict per-class goal metrics
under candidate cost limits, behind one structural seam:

* :class:`~repro.core.modeling.protocol.PerformanceModel` — the protocol
  (predict / observe / describe / corrupt / reset) plus the
  :class:`MixSnapshot` and :class:`IntervalObservation` input types;
* :class:`~repro.core.modeling.analytic.PaperAnalyticModel` — the paper's
  Section 3.2 pair (OLAP velocity ratio-model, OLTP linear delta
  regression), the bit-identical default;
* :class:`~repro.core.modeling.learned.LearnedPerformanceModel` — per-class
  online ridge/RLS residual predictors conditioned on the full concurrent
  mix, trainable offline from telemetry (``repro train``);
* :class:`~repro.core.modeling.learned.OracleLastValueModel` — the
  persistence baseline for the ablation bench;
* :func:`~repro.core.modeling.registry.make_model` — spec strings
  (``"paper"``, ``"learned[:path]"``, ``"oracle"``) to model objects.
"""

from repro.core.modeling.analytic import (
    _MIN_LIMIT,
    _SLOPE_DRIFT_FACTOR,
    OLAPVelocityModel,
    OLTPResponseTimeModel,
    PaperAnalyticModel,
)
from repro.core.modeling.learned import (
    LearnedPerformanceModel,
    OracleLastValueModel,
)
from repro.core.modeling.protocol import (
    ClassMixState,
    IntervalObservation,
    MixSnapshot,
    PerformanceModel,
)
from repro.core.modeling.registry import MODEL_NAMES, make_model, parse_model_spec
from repro.core.modeling.training import (
    evaluate_on_records,
    fit_from_records,
    load_model,
    load_telemetry_records,
    observations_from_records,
    save_model,
)

__all__ = [
    "ClassMixState",
    "IntervalObservation",
    "LearnedPerformanceModel",
    "MixSnapshot",
    "MODEL_NAMES",
    "OLAPVelocityModel",
    "OLTPResponseTimeModel",
    "OracleLastValueModel",
    "PaperAnalyticModel",
    "PerformanceModel",
    "evaluate_on_records",
    "fit_from_records",
    "load_model",
    "load_telemetry_records",
    "make_model",
    "observations_from_records",
    "parse_model_spec",
    "save_model",
]
