"""The paper's analytic performance models (Section 3.2).

OLAP classes use the multiplicative velocity model of the prior framework:

    V_i^k = V_i^{k-1} * C_i^k / C_i^{k-1}      (capped at 1)

— a class's velocity scales with its cost limit, because the limit controls
how many of its queries run versus wait.

The OLTP class cannot use that model ("the performance metrics are
different ... the system does not control the OLTP class directly ... OLAP
queries tend to be I/O intensive whereas OLTP queries are CPU intensive"),
so the paper fits the *linear* model motivated by Figure 2:

    t^k = t^{k-1} + s * (C^k - C^{k-1})

where ``C`` is the OLTP class's (virtual) cost limit and ``s`` a constant
obtained by linear regression.  Raising the OLTP limit shrinks what the OLAP
classes may consume, so ``s`` is negative.  We maintain ``s`` online with an
exponentially forgetting least-squares estimator seeded by a calibration
prior, which is the natural "regression" reading of the paper for a running
controller.

:class:`PaperAnalyticModel` packages the pair behind the
:class:`~repro.core.modeling.protocol.PerformanceModel` protocol — it is
the default model everywhere, and its arithmetic is pinned bit-identical
to the golden regression data.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.core.modeling.protocol import IntervalObservation, MixSnapshot
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.solver import ClassStatus

#: Factor by which the online slope estimate may drift from the calibrated
#: prior in either direction.  Interval-to-interval (Δ limit, Δ response)
#: pairs are noisy and lag-corrupted — the response of a closed-loop system
#: is measured over a window straddling the change — so unconstrained
#: regression reliably drives the slope to zero, which blinds the solver to
#: the OLTP class entirely.  The clamp keeps the estimate physical while
#: still letting calibration error be corrected severalfold.
_SLOPE_DRIFT_FACTOR = 3.0

#: Guard for divisions by a previous cost limit of (near) zero.
_MIN_LIMIT = 1.0


class OLAPVelocityModel:
    """The paper's multiplicative velocity model for directly controlled
    (OLAP) classes."""

    @staticmethod
    def predict(previous_velocity: float, previous_limit: float, new_limit: float) -> float:
        """Predicted velocity at the next interval under ``new_limit``.

        Clamped to [0, 1] exactly as in the paper's piecewise definition.
        """
        base = max(0.0, min(1.0, previous_velocity))
        denominator = max(previous_limit, _MIN_LIMIT)
        predicted = base * (new_limit / denominator)
        if predicted > 1.0:
            return 1.0
        if predicted < 0.0:
            return 0.0
        return predicted


class OLTPResponseTimeModel:
    """Linear delta model for the indirectly controlled (OLTP) class.

    Parameters
    ----------
    prior_slope:
        Initial ``s`` (seconds per timeron of OLTP class limit; negative).
    prior_weight:
        How many unit-variance pseudo-observations the prior is worth; the
        larger, the slower online data overrides calibration.
    forgetting:
        Exponential forgetting factor in (0, 1]; 1 = ordinary least squares.
    """

    def __init__(
        self,
        prior_slope: float = -8.0e-6,
        prior_weight: float = 4.0,
        forgetting: float = 0.9,
    ) -> None:
        if prior_slope >= 0:
            raise ConfigurationError(
                "OLTP slope must be negative (more OLTP reservation -> "
                "lower response time); got {}".format(prior_slope)
            )
        if prior_weight <= 0:
            raise ConfigurationError("prior_weight must be positive")
        if not 0 < forgetting <= 1:
            raise ConfigurationError("forgetting must be in (0, 1]")
        self.forgetting = forgetting
        self.prior_slope = prior_slope
        self.prior_weight = prior_weight
        self.reset()

    def reset(self) -> None:
        """Restore the freshly calibrated state (undoes any corruption)."""
        # Seed the normal equations so that slope == prior initially.  The
        # pseudo-observations are scaled to a representative delta of 1000
        # timerons so real observations have comparable leverage.
        pseudo_delta = 1000.0
        self._sxx = self.prior_weight * pseudo_delta * pseudo_delta
        self._sxy = self.prior_weight * pseudo_delta * (self.prior_slope * pseudo_delta)
        self._observations = 0

    def corrupt(self, mode: str = "regression") -> None:
        """Deliberately break the regression state (fault-injection seam).

        ``"regression"`` zeroes the normal equations' second moment, so the
        slope computation divides by zero — exactly the kind of broken
        internal state an invariant check must survive *and* report.
        """
        if mode != "regression":
            raise ConfigurationError(
                "OLTPResponseTimeModel knows no corruption mode {!r}".format(mode)
            )
        self._sxx = 0.0

    def slope_bounds(self) -> Tuple[float, float]:
        """Public clamp band ``(steepest, shallowest)`` for the slope.

        The live :attr:`slope` is guaranteed to fall in this closed band;
        the validation harness verifies that contract at every interval.
        """
        return (
            self.prior_slope * _SLOPE_DRIFT_FACTOR,
            self.prior_slope / _SLOPE_DRIFT_FACTOR,
        )

    @property
    def slope(self) -> float:
        """Current estimate of ``s``: negative, clamped near the prior."""
        raw = self._sxy / self._sxx
        steepest, shallowest = self.slope_bounds()
        return min(max(raw, steepest), shallowest)

    @property
    def observations(self) -> int:
        """Real (non-prior) observations folded in so far."""
        return self._observations

    def observe(self, delta_limit: float, delta_response_time: float) -> None:
        """Fold in one (Δ limit, Δ response time) pair from the last interval.

        Tiny limit deltas carry no slope information (the response change is
        then all noise) and are skipped.
        """
        if abs(delta_limit) < _MIN_LIMIT:
            return
        self._sxx = self.forgetting * self._sxx + delta_limit * delta_limit
        self._sxy = self.forgetting * self._sxy + delta_limit * delta_response_time
        self._observations += 1

    def predict(
        self,
        previous_response_time: float,
        previous_limit: float,
        new_limit: float,
    ) -> float:
        """Predicted average response time under ``new_limit``.

        Floored at a millisecond: the model is a local linearisation and a
        large extrapolated limit increase must not predict negative time.
        """
        predicted = previous_response_time + self.slope * (new_limit - previous_limit)
        return max(predicted, 1e-3)


class PaperAnalyticModel:
    """The paper's model pair behind the :class:`PerformanceModel` protocol.

    Dispatches on class kind exactly as the pre-seam solver did — the
    velocity ratio-model for OLAP classes, the linear delta model for the
    OLTP class — so default-model runs stay bit-identical to the golden
    regression data.  The mix is ignored (the paper's models are
    single-knob extrapolations), which is precisely the weakness the
    learned models address.
    """

    name = "paper"

    def __init__(self, oltp_model: Optional[OLTPResponseTimeModel] = None) -> None:
        self.oltp = oltp_model if oltp_model is not None else OLTPResponseTimeModel()

    # ------------------------------------------------------------------
    # PerformanceModel protocol
    # ------------------------------------------------------------------
    def predict(
        self,
        status: "ClassStatus",
        proposed_limit: float,
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        """Velocity model for OLAP classes, linear delta model for OLTP."""
        if status.service_class.kind == "olap":
            return OLAPVelocityModel.predict(
                status.current_value, status.current_limit, proposed_limit
            )
        return self.oltp.predict(
            status.current_value, status.current_limit, proposed_limit
        )

    def observe(self, observation: IntervalObservation) -> None:
        """Fold in the planner's (Δ limit, Δ response) pair, when present.

        The planner only attaches ``oltp_delta`` when online regression is
        configured and a valid pair exists, so the default (offline
        constant) configuration leaves the slope untouched — and the
        solution-cache fingerprint with it.
        """
        if observation.oltp_delta is not None:
            self.oltp.observe(*observation.oltp_delta)

    def describe(self) -> Dict[str, object]:
        """JSON-safe snapshot of the regression state."""
        try:
            slope: Optional[float] = self.oltp.slope
        except ZeroDivisionError:  # corrupted regression state
            slope = None
        steepest, shallowest = self.oltp.slope_bounds()
        return {
            "name": self.name,
            "slope": slope,
            "observations": self.oltp.observations,
            "prior_slope": self.oltp.prior_slope,
            "slope_bounds": [steepest, shallowest],
        }

    def corrupt(self, mode: str = "regression") -> None:
        """Break the OLTP regression through its public seam."""
        self.oltp.corrupt(mode)

    def reset(self) -> None:
        """Restore the freshly calibrated regression state."""
        self.oltp.reset()

    def fingerprint(self) -> object:
        """Observation count: bumps whenever the learned slope can move."""
        return self.oltp.observations

    def mix_fingerprint(self, mix: Optional[MixSnapshot]) -> object:
        """The paper's models are mix-blind; the cache key ignores the mix."""
        return None

    def slope_bounds(self) -> Tuple[float, float]:
        """Delegate the public clamp-band contract to the OLTP model."""
        return self.oltp.slope_bounds()
