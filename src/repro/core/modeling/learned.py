"""Learned performance models (stdlib-only, ROADMAP item 4).

The paper's analytic predictors are single-knob extrapolations: each
class's next value is a function of *its own* limit change only.  Under
workload shift that assumption is the first thing to break — an OLAP
class's velocity depends on how loaded the *other* classes are, and the
OLTP response time depends on total OLAP pressure, not just its own
virtual limit.

:class:`LearnedPerformanceModel` keeps the analytic model as a physically
sensible base prediction and learns a **per-class residual correction**
with recursive least squares (online ridge regression) featurized on the
full concurrent mix: the class's own limit move, queue depth and
in-flight count, plus the other classes' limits and queue pressure.  With
zero observations the correction is exactly zero — the learned model
*starts as* the paper model and departs only where data supports it,
which keeps cold-start behaviour safe.

:class:`OracleLastValueModel` is the persistence baseline for the
ablation bench: "tomorrow equals today", blind to the control knob.
Everything here is pure Python floats — deterministic, picklable, no
numpy.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

from repro.core.modeling.analytic import (
    OLAPVelocityModel,
    OLTPResponseTimeModel,
)
from repro.core.modeling.protocol import (
    ClassMixState,
    IntervalObservation,
    MixSnapshot,
)
from repro.errors import ConfigurationError

if TYPE_CHECKING:
    from repro.core.solver import ClassStatus

#: Feature-vector length (see :func:`_features`).
FEATURE_DIM = 8

#: Normalisation scales keeping every feature O(1): timeron budgets run in
#: the tens of thousands, queue depths in the tens.
_LIMIT_SCALE = 10_000.0
_QUEUE_SCALE = 32.0

#: A residual correction is clamped to this multiple of the base
#: prediction's magnitude (with an absolute floor, so a near-zero base can
#: still be corrected).  The learned term refines the analytic model; it
#: must never be able to swamp it on one bad update.
_MAX_CORRECTION_RATIO = 0.75
_MIN_CORRECTION_SCALE = 0.25


def _features(
    value: float,
    current_limit: float,
    proposed_limit: float,
    own: Optional[ClassMixState],
    mix: Optional[MixSnapshot],
    class_name: str,
) -> List[float]:
    """The fixed-length mix-conditioned feature vector.

    ``own``/``mix`` may be None (predictions outside a control loop);
    mix-dependent features then fall back to zero and the model degrades
    gracefully toward its own-knob terms.
    """
    others_limit = 0.0
    others_queue = 0.0
    if mix is not None:
        for state in mix.classes:
            if state.name == class_name:
                continue
            others_limit += state.limit
            others_queue += state.queue_length
    queue_length = float(own.queue_length) if own is not None else 0.0
    in_flight = float(own.in_flight_count) if own is not None else 0.0
    return [
        1.0,
        (proposed_limit - current_limit) / _LIMIT_SCALE,
        value,
        proposed_limit / _LIMIT_SCALE,
        queue_length / _QUEUE_SCALE,
        in_flight / _QUEUE_SCALE,
        others_limit / _LIMIT_SCALE,
        others_queue / _QUEUE_SCALE,
    ]


class _ClassPredictor:
    """Recursive-least-squares residual learner for one class."""

    __slots__ = ("kind", "w", "p", "observations")

    def __init__(self, kind: str, ridge: float) -> None:
        self.kind = kind
        self.w = [0.0] * FEATURE_DIM
        # Inverse regularised covariance: P0 = I / ridge.
        self.p = [
            [1.0 / ridge if i == j else 0.0 for j in range(FEATURE_DIM)]
            for i in range(FEATURE_DIM)
        ]
        self.observations = 0

    def correction(self, x: List[float]) -> float:
        """The learned residual for a feature vector (0 until trained)."""
        total = 0.0
        for wi, xi in zip(self.w, x):
            total += wi * xi
        return total

    def update(self, x: List[float], residual: float, forgetting: float) -> None:
        """One RLS fold-in of (features, realised residual)."""
        if not math.isfinite(residual):
            return
        # k = P x / (lambda + x' P x);  w += k * (y - w'x);  P = (P - k x'P)/lambda
        px = [sum(row[j] * x[j] for j in range(FEATURE_DIM)) for row in self.p]
        denom = forgetting + sum(px[i] * x[i] for i in range(FEATURE_DIM))
        if denom <= 0 or not math.isfinite(denom):
            return
        gain = [px[i] / denom for i in range(FEATURE_DIM)]
        error = residual - self.correction(x)
        for i in range(FEATURE_DIM):
            self.w[i] += gain[i] * error
        xp = [sum(self.p[i][j] * x[i] for i in range(FEATURE_DIM)) for j in range(FEATURE_DIM)]
        for i in range(FEATURE_DIM):
            for j in range(FEATURE_DIM):
                self.p[i][j] = (self.p[i][j] - gain[i] * xp[j]) / forgetting
        self.observations += 1

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready state (weights, covariance, counters)."""
        return {
            "kind": self.kind,
            "weights": list(self.w),
            "covariance": [list(row) for row in self.p],
            "observations": self.observations,
        }

    @staticmethod
    def from_dict(payload: Dict[str, object], ridge: float) -> "_ClassPredictor":
        predictor = _ClassPredictor(str(payload["kind"]), ridge)
        weights = payload.get("weights")
        if isinstance(weights, list) and len(weights) == FEATURE_DIM:
            predictor.w = [float(v) for v in weights]
        covariance = payload.get("covariance")
        if isinstance(covariance, list) and len(covariance) == FEATURE_DIM:
            predictor.p = [[float(v) for v in row] for row in covariance]
        predictor.observations = int(payload.get("observations", 0))
        return predictor


class LearnedPerformanceModel:
    """Per-class online ridge/RLS residual model over the analytic base.

    Satisfies the :class:`~repro.core.modeling.protocol.PerformanceModel`
    protocol.  Train online (every :meth:`observe` is one prequential
    update), offline from exported telemetry
    (:func:`repro.core.modeling.training.fit_from_records`), or load a
    previously trained state with :meth:`from_dict` / ``repro run --model
    learned:model.json``.
    """

    name = "learned"

    def __init__(
        self,
        prior_slope: float = -4.2e-6,
        ridge: float = 4.0,
        forgetting: float = 0.995,
    ) -> None:
        if ridge <= 0:
            raise ConfigurationError("ridge must be positive")
        if not 0 < forgetting <= 1:
            raise ConfigurationError("forgetting must be in (0, 1]")
        self.ridge = ridge
        self.forgetting = forgetting
        #: Fixed analytic base for residual learning — deliberately *not*
        #: updated online, so the learned weights always correct the same
        #: reference predictions they were trained against.
        self._base_oltp = OLTPResponseTimeModel(prior_slope=prior_slope)
        self._classes: Dict[str, _ClassPredictor] = {}
        self._pending: Optional[MixSnapshot] = None
        self._corrupted = False

    # ------------------------------------------------------------------
    # Base (analytic) prediction and clamping
    # ------------------------------------------------------------------
    def _base_predict(
        self, kind: str, value: float, current_limit: float, new_limit: float
    ) -> float:
        if kind == "olap":
            return OLAPVelocityModel.predict(value, current_limit, new_limit)
        return self._base_oltp.predict(value, current_limit, new_limit)

    @staticmethod
    def _clamp(kind: str, predicted: float) -> float:
        if kind == "olap":
            return max(0.0, min(1.0, predicted))
        return max(predicted, 1e-3)

    def _predictor(self, name: str, kind: str) -> _ClassPredictor:
        predictor = self._classes.get(name)
        if predictor is None:
            predictor = _ClassPredictor(kind, self.ridge)
            self._classes[name] = predictor
        return predictor

    # ------------------------------------------------------------------
    # PerformanceModel protocol
    # ------------------------------------------------------------------
    def predict(
        self,
        status: "ClassStatus",
        proposed_limit: float,
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        """Analytic base plus the learned, clamped residual correction."""
        service_class = status.service_class
        kind = service_class.kind
        value = status.current_value
        base = self._base_predict(kind, value, status.current_limit, proposed_limit)
        if self._corrupted:
            return float("nan")
        predictor = self._classes.get(service_class.name)
        if predictor is None or predictor.observations == 0:
            return self._clamp(kind, base)
        own = mix.get(service_class.name) if mix is not None else None
        x = _features(
            value, status.current_limit, proposed_limit, own, mix, service_class.name
        )
        correction = predictor.correction(x)
        bound = max(
            _MAX_CORRECTION_RATIO * abs(base), _MIN_CORRECTION_SCALE
        )
        if not math.isfinite(correction):
            correction = 0.0
        correction = min(max(correction, -bound), bound)
        return self._clamp(kind, base + correction)

    def observe(self, observation: IntervalObservation) -> None:
        """One prequential update per control interval.

        Pairs the *previous* interval's mix (the features available when
        the prediction would have been made) with the values realised now,
        under the limits that were active in between — exactly the
        pairing the telemetry layer's prediction-error bookkeeping uses.
        """
        previous = self._pending
        self._pending = observation.mix
        if previous is None:
            return
        for state in observation.mix.classes:
            before = previous.get(state.name)
            if before is None or before.value is None or state.value is None:
                continue
            # The limit active while ``state.value`` was realised is the
            # one carried by the *current* snapshot (installed after the
            # previous observation).
            base = self._base_predict(
                state.kind, before.value, before.limit, state.limit
            )
            x = _features(
                before.value, before.limit, state.limit, before, previous, state.name
            )
            self._predictor(state.name, state.kind).update(
                x, state.value - base, self.forgetting
            )

    def describe(self) -> Dict[str, object]:
        """JSON-safe snapshot: hyperparameters plus per-class weights."""
        return {
            "name": self.name,
            "observations": self.observations,
            "ridge": self.ridge,
            "forgetting": self.forgetting,
            "corrupted": self._corrupted,
            "classes": {
                name: {
                    "kind": predictor.kind,
                    "observations": predictor.observations,
                    "weights": [round(w, 9) for w in predictor.w],
                }
                for name, predictor in sorted(self._classes.items())
            },
        }

    def corrupt(self, mode: str = "regression") -> None:
        """Poison the learned state: every prediction becomes NaN."""
        if mode != "regression":
            raise ConfigurationError(
                "LearnedPerformanceModel knows no corruption mode {!r}".format(mode)
            )
        self._corrupted = True

    def reset(self) -> None:
        """Drop all learned state (weights, pending pairing, corruption)."""
        self._classes = {}
        self._pending = None
        self._corrupted = False

    @property
    def observations(self) -> int:
        """Total residual observations folded in across classes."""
        return sum(p.observations for p in self._classes.values())

    def fingerprint(self) -> object:
        return (self.observations, self._corrupted)

    def mix_fingerprint(self, mix: Optional[MixSnapshot]) -> object:
        """Mix-aware: identical statuses under a different mix must not
        share a cached solution."""
        return mix.key() if mix is not None else None

    def slope_bounds(self) -> Optional[Tuple[float, float]]:
        """No scalar OLTP slope to bound; the harness skips the check."""
        return None

    # ------------------------------------------------------------------
    # Serialisation (``repro train`` output / ``--model learned:PATH``)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Full state as a JSON-serialisable dict (``model.json``)."""
        return {
            "format": 1,
            "name": self.name,
            "hyper": {
                "prior_slope": self._base_oltp.prior_slope,
                "ridge": self.ridge,
                "forgetting": self.forgetting,
            },
            "classes": {
                name: predictor.to_dict()
                for name, predictor in sorted(self._classes.items())
            },
        }

    @staticmethod
    def from_dict(payload: Dict[str, object]) -> "LearnedPerformanceModel":
        """Reconstruct a trained model from :meth:`to_dict` output."""
        if payload.get("format") != 1 or payload.get("name") != "learned":
            raise ConfigurationError(
                "not a learned-model file (expected format=1, name='learned')"
            )
        hyper = payload.get("hyper") or {}
        model = LearnedPerformanceModel(
            prior_slope=float(hyper.get("prior_slope", -4.2e-6)),
            ridge=float(hyper.get("ridge", 4.0)),
            forgetting=float(hyper.get("forgetting", 0.995)),
        )
        classes = payload.get("classes") or {}
        for name, state in classes.items():
            model._classes[name] = _ClassPredictor.from_dict(state, model.ridge)
        return model


class OracleLastValueModel:
    """Persistence baseline: predicts the metric simply stays put.

    A strong naive forecaster (and therefore a fair floor for prediction
    error), but blind to the control knob — the solver sees the same
    outcome for every allocation, so its plans degenerate to the fallback
    split.  That contrast is the point of carrying it in the ablation.
    """

    name = "oracle"

    def __init__(self) -> None:
        self._corrupted = False

    def predict(
        self,
        status: "ClassStatus",
        proposed_limit: float,
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        if self._corrupted:
            return float("nan")
        if status.service_class.kind == "olap":
            return max(0.0, min(1.0, status.current_value))
        return max(status.current_value, 1e-3)

    def observe(self, observation: IntervalObservation) -> None:
        pass

    def describe(self) -> Dict[str, object]:
        return {"name": self.name, "observations": 0, "corrupted": self._corrupted}

    def corrupt(self, mode: str = "regression") -> None:
        self._corrupted = True

    def reset(self) -> None:
        self._corrupted = False

    def fingerprint(self) -> object:
        return self._corrupted

    def mix_fingerprint(self, mix: Optional[MixSnapshot]) -> object:
        return None

    def slope_bounds(self) -> Optional[Tuple[float, float]]:
        return None
