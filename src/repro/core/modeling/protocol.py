"""The :class:`PerformanceModel` protocol and its input types.

Everything the control plane knows about "a performance model" lives
here.  A model answers one question — *what will a class's goal metric be
next interval if I set its cost limit to X?* — and exposes four seams the
rest of the system is wired against:

* :meth:`PerformanceModel.predict` — the prediction itself, given the
  class's current status, a candidate limit, and (optionally) a
  :class:`MixSnapshot` of the full concurrent workload;
* :meth:`PerformanceModel.observe` — one :class:`IntervalObservation` per
  control interval, from which online models learn;
* :meth:`PerformanceModel.describe` — a JSON-safe parameter dict the
  telemetry layer embeds in every :class:`ControlIntervalRecord`;
* :meth:`PerformanceModel.corrupt` / :meth:`PerformanceModel.reset` — the
  fault injector's white-box corruption seam, so breaking a model for a
  validation test never requires reaching into private attributes.

The protocol is structural (:class:`typing.Protocol`): the paper's
analytic models, the learned ridge models and the oracle baseline all
satisfy it without inheriting from anything.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    NamedTuple,
    Optional,
    Tuple,
)

try:  # Protocol is 3.8+; keep a graceful fallback for exotic interpreters.
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[misc]
        return cls


if TYPE_CHECKING:  # avoid a circular import; ClassStatus lives in solver
    from repro.core.solver import ClassStatus


class ClassMixState(NamedTuple):
    """One class's slice of the concurrent mix at a control interval."""

    name: str
    kind: str  # "olap" or "oltp"
    limit: float  # cost limit active right now (timerons)
    value: Optional[float]  # latest measured goal-metric value
    queue_length: int
    in_flight_count: int
    in_flight_cost: float


class MixSnapshot(NamedTuple):
    """The full concurrent workload mix at one control interval.

    Mix-aware models (the learned predictors) condition on every class's
    cost limit, queue depth and in-flight load — not just the knob of the
    class being predicted.  Mix-blind models (the paper's analytic ones)
    simply ignore it, which is why every ``predict`` accepts ``mix=None``.
    """

    time: float
    classes: Tuple[ClassMixState, ...]

    def get(self, name: str) -> Optional[ClassMixState]:
        """The named class's state (None when not in the mix)."""
        for state in self.classes:
            if state.name == name:
                return state
        return None

    def key(self) -> tuple:
        """Hashable fingerprint for solver solution caching."""
        return tuple(
            (s.name, s.limit, s.value, s.queue_length, s.in_flight_count)
            for s in self.classes
        )


class IntervalObservation(NamedTuple):
    """What the planner saw at one control interval, handed to ``observe``.

    ``mix`` is the pre-solve state: per-class measured values and the cost
    limits that were *active during the interval that just ended* (the
    plan installed by the previous decision).  ``oltp_delta`` is the
    planner-computed ``(Δ limit, Δ response time)`` regression pair for
    the OLTP class — present only when online regression is enabled and a
    valid pair exists, exactly as the pre-seam planner gated it.
    """

    time: float
    mix: MixSnapshot
    oltp_delta: Optional[Tuple[float, float]] = None


@runtime_checkable
class PerformanceModel(Protocol):
    """Structural contract every performance model satisfies."""

    #: Registry name ("paper", "learned", "oracle").
    name: str

    def predict(
        self,
        status: "ClassStatus",
        proposed_limit: float,
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        """Predicted goal-metric value for the class under the limit."""
        ...

    def observe(self, observation: IntervalObservation) -> None:
        """Fold in one control interval's realised state."""
        ...

    def describe(self) -> Dict[str, object]:
        """JSON-safe parameter snapshot for telemetry export."""
        ...

    def corrupt(self, mode: str = "regression") -> None:
        """Deliberately break internal state (fault-injection seam)."""
        ...

    def reset(self) -> None:
        """Restore pristine (freshly constructed) state."""
        ...

    def fingerprint(self) -> object:
        """Hashable version of the learned state, for solution caching.

        Must change whenever :meth:`observe` changes what :meth:`predict`
        would return; may stay constant otherwise.
        """
        ...

    def mix_fingerprint(self, mix: Optional[MixSnapshot]) -> object:
        """Hashable mix component of the solution-cache key.

        Mix-blind models return ``None`` so identical statuses keep
        hitting the cache; mix-aware models return ``mix.key()``.
        """
        ...

    def slope_bounds(self) -> Optional[Tuple[float, float]]:
        """Public clamp band ``(steepest, shallowest)`` of the model's
        OLTP slope estimate, or ``None`` when the model has no such
        notion.  The validation harness checks the live slope against
        this contract instead of importing private constants."""
        ...
