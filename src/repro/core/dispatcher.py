"""The Dispatcher.

"The Dispatcher receives a scheduling plan from the Scheduling Planner and
releases the queries in the class queues according to the plan ... as long
as the addition of a new query does not mean that the cost limit for the
query's class is exceeded.  The Dispatcher releases a query for execution by
calling the unblocking API provided by DB2 QP" (Section 2).

Per class the dispatcher keeps a queue and the estimated cost currently in
flight.  Indirectly controlled classes (the OLTP class) are never queued:
their plan limit is a capacity *reservation* that shrinks what the OLAP
classes may use, not a gate (Section 3).

Within-class ordering is a design axis the paper leaves implicit (FIFO);
three *queue disciplines* are provided:

* ``"fifo"`` — arrival order (the paper's behaviour; default);
* ``"sjf"`` — cheapest estimated cost first, which packs more queries under
  a tight limit and lifts mean velocity at the tail's expense;
* ``"aging"`` — cost discounted by waiting time, a compromise that keeps
  monsters from starving under SJF.

One deliberate liveness rule beyond the paper's text: a query whose
estimated cost alone exceeds its class limit is released when the class has
nothing in flight, so a mis-estimated monster cannot wedge its class forever.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

#: Accepted queue disciplines.
DISCIPLINES = ("fifo", "sjf", "aging")

#: Timerons of effective-cost discount per second of waiting ("aging").
_AGING_RATE = 50.0

from repro.core.plan import SchedulingPlan
from repro.core.service_class import ServiceClass
from repro.runtime import ExecutionEngine
from repro.dbms.query import Query, QueryState
from repro.errors import SchedulingError
from repro.obs.registry import MetricsRegistry
from repro.patroller.patroller import QueryPatroller


class _ClassState:
    """Dispatcher-side bookkeeping for one service class.

    The monotone per-class counters (enqueued/released/completed/cancelled/
    queue-cancelled) are registry :class:`~repro.obs.registry.Counter`
    instruments rather than plain ints, so the same numbers that drive the
    conservation invariants are exported through the instrument registry;
    queue length and in-flight cost/count are published as callback gauges
    reading this state directly.
    """

    __slots__ = (
        "service_class",
        "queue",
        "in_flight_cost",
        "in_flight_count",
        "in_flight",
        "enqueued",
        "released",
        "completed",
        "cancelled",
        "queue_cancelled",
    )

    def __init__(
        self, service_class: ServiceClass, registry: MetricsRegistry
    ) -> None:
        self.service_class = service_class
        self.queue: List[Query] = []
        self.in_flight_cost = 0.0
        self.in_flight_count = 0
        #: The queries this dispatcher released and not yet retired, by id —
        #: the ground truth the cost/count pair must always agree with.
        self.in_flight: Dict[int, Query] = {}
        labels = {"class": service_class.name}
        self.enqueued = registry.counter(
            "dispatcher_enqueued_total",
            description="Queries ever placed in a class queue",
            labels=labels,
        )
        self.released = registry.counter(
            "dispatcher_released_total",
            description="Queries released for execution",
            labels=labels,
        )
        self.completed = registry.counter(
            "dispatcher_completed_total",
            description="Released queries that finished execution",
            labels=labels,
        )
        self.cancelled = registry.counter(
            "dispatcher_cancelled_total",
            description="Released queries cancelled before completion",
            labels=labels,
        )
        self.queue_cancelled = registry.counter(
            "dispatcher_queue_cancelled_total",
            description="Queries cancelled while still queued",
            labels=labels,
        )
        registry.gauge(
            "dispatcher_queue_length",
            description="Queries waiting for release",
            labels=labels,
            callback=lambda: len(self.queue),
        )
        registry.gauge(
            "dispatcher_in_flight_cost",
            description="Estimated timerons of released-but-unfinished queries",
            unit="timerons",
            labels=labels,
            callback=lambda: self.in_flight_cost,
        )
        registry.gauge(
            "dispatcher_in_flight_count",
            description="Released-but-unfinished queries",
            labels=labels,
            callback=lambda: self.in_flight_count,
        )

    @property
    def in_flight_ids(self) -> Set[int]:
        """Ids of the released-but-unretired queries."""
        return set(self.in_flight)

    def retire(self, query: Query) -> None:
        """Drop a released query from the in-flight accounting."""
        self.in_flight.pop(query.query_id, None)
        self.in_flight_cost -= query.estimated_cost
        self.in_flight_count -= 1
        if not self.in_flight:
            # Snap residual float drift so an idle class is exactly zero.
            self.in_flight_cost = 0.0
            self.in_flight_count = 0
        elif self.in_flight_cost < 0:
            self.in_flight_cost = 0.0


class Dispatcher:
    """Releases queued queries under the active plan's class cost limits."""

    def __init__(
        self,
        patroller: QueryPatroller,
        engine: ExecutionEngine,
        classes: List[ServiceClass],
        initial_plan: SchedulingPlan,
        discipline: str = "fifo",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if discipline not in DISCIPLINES:
            raise SchedulingError(
                "unknown queue discipline {!r}; expected one of {}".format(
                    discipline, DISCIPLINES
                )
            )
        self.patroller = patroller
        self.engine = engine
        self.discipline = discipline
        #: The instrument registry the per-class counters and gauges live
        #: in; a private registry is created when none is shared in.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._states: Dict[str, _ClassState] = {
            c.name: _ClassState(c, self.registry) for c in classes
        }
        for name in initial_plan:
            if name not in self._states:
                raise SchedulingError(
                    "plan covers unknown class {!r}".format(name)
                )
        self._plan = initial_plan
        engine.add_completion_listener(self._on_completion)
        patroller.add_cancel_listener(self._on_cancellation)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> SchedulingPlan:
        """The currently active scheduling plan."""
        return self._plan

    def queue_length(self, class_name: str) -> int:
        """Queries of the class waiting for release."""
        return len(self._state(class_name).queue)

    def in_flight_cost(self, class_name: str) -> float:
        """Estimated cost of the class's released-but-unfinished queries."""
        return self._state(class_name).in_flight_cost

    def in_flight_count(self, class_name: str) -> int:
        """Number of the class's released-but-unfinished queries."""
        return self._state(class_name).in_flight_count

    def released_count(self, class_name: str) -> int:
        """Total queries of the class released so far."""
        return int(self._state(class_name).released.value)

    def completed_count(self, class_name: str) -> int:
        """Total released queries of the class that finished execution."""
        return int(self._state(class_name).completed.value)

    def cancelled_count(self, class_name: str) -> int:
        """Total released queries of the class cancelled before completion."""
        return int(self._state(class_name).cancelled.value)

    def enqueued_count(self, class_name: str) -> int:
        """Total queries of the class ever placed in its queue."""
        return int(self._state(class_name).enqueued.value)

    def queue_cancelled_count(self, class_name: str) -> int:
        """Total queries of the class cancelled while still queued.

        Queue-level cancels never consume in-flight budget, so they are
        counted separately from :meth:`cancelled_count` (post-release
        cancels); without this counter QP cancel storms would be invisible
        in telemetry.
        """
        return int(self._state(class_name).queue_cancelled.value)

    def in_flight_queries(self, class_name: str) -> List[Query]:
        """The class's released-but-unfinished queries (a copy).

        The validation harness checks this ground-truth set against the
        incremental cost/count accounting and the engine's running set.
        """
        return list(self._state(class_name).in_flight.values())

    def _state(self, class_name: str) -> _ClassState:
        state = self._states.get(class_name)
        if state is None:
            raise SchedulingError("dispatcher knows no class {!r}".format(class_name))
        return state

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def install_plan(self, plan: SchedulingPlan) -> int:
        """Adopt a new plan; releases anything the new limits now allow.

        Returns the number of queries released as a direct consequence.
        In-flight queries are never revoked — a lowered limit simply stops
        further releases until enough queries drain (Section 2's semantics).
        """
        for name in plan:
            if name not in self._states:
                raise SchedulingError("plan covers unknown class {!r}".format(name))
        self._plan = plan
        return self._release_eligible()

    def enqueue(self, query: Query) -> None:
        """Queue a classified, intercepted query for release."""
        state = self._state(query.class_name)
        if not state.service_class.directly_controlled:
            raise SchedulingError(
                "class {!r} is indirectly controlled; its queries must bypass "
                "interception".format(query.class_name)
            )
        state.queue.append(query)
        state.enqueued.inc()
        self._release_eligible_for(state)

    # ------------------------------------------------------------------
    # Release machinery
    # ------------------------------------------------------------------
    def _limit_for(self, state: _ClassState) -> Optional[float]:
        if state.service_class.name in self._plan:
            return self._plan.limit(state.service_class.name)
        return None

    def _select_index(self, state: _ClassState) -> Optional[int]:
        """Pick which queued query the discipline would release next."""
        queue = state.queue
        if not queue:
            return None
        if self.discipline == "fifo":
            return 0
        now = self.patroller.sim.now
        if self.discipline == "sjf":
            return min(range(len(queue)), key=lambda i: queue[i].estimated_cost)

        def aged_cost(index: int) -> float:
            query = queue[index]
            waited = now - (query.queue_time if query.queue_time is not None else now)
            return query.estimated_cost - _AGING_RATE * waited

        return min(range(len(queue)), key=aged_cost)

    def _find_fitting_aged(
        self, state: _ClassState, limit: float
    ) -> Optional[int]:
        """Next-best aged candidate that fits under the limit (aging only).

        Under "aging" the min-aged-cost query can be costlier than another
        queued query that would fit; stopping at the selected query would
        stall the whole class behind it (head-of-line blocking), so the
        remaining candidates are scanned in aged-cost order for one that
        fits.  FIFO keeps strict arrival order and SJF's selected query is
        already the cheapest, so neither needs (or gets) the scan.
        """
        now = self.patroller.sim.now

        def aged_cost(index: int) -> float:
            query = state.queue[index]
            waited = now - (query.queue_time if query.queue_time is not None else now)
            return query.estimated_cost - _AGING_RATE * waited

        for index in sorted(range(len(state.queue)), key=aged_cost):
            if state.in_flight_cost + state.queue[index].estimated_cost <= limit:
                return index
        return None

    def _release_eligible_for(self, state: _ClassState) -> int:
        # Purge abandoned queries once per call (QP cancel), counting them
        # so queue-level cancellations stay visible in telemetry.
        # Cancellations arrive through _on_cancellation between calls, so no
        # new tombstones can appear while the release loop below runs.
        if any(q.state == QueryState.CANCELLED for q in state.queue):
            live = [q for q in state.queue if q.state != QueryState.CANCELLED]
            state.queue_cancelled.inc(len(state.queue) - len(live))
            state.queue = live
        limit = self._limit_for(state)
        released = 0
        while state.queue:
            index = self._select_index(state)
            if index is None:
                break
            query = state.queue[index]
            if limit is not None:
                fits = state.in_flight_cost + query.estimated_cost <= limit
                alone = state.in_flight_count == 0
                if not fits and not alone:
                    if self.discipline != "aging":
                        break
                    index = self._find_fitting_aged(state, limit)
                    if index is None:
                        break
                    query = state.queue[index]
            state.queue.pop(index)
            state.in_flight_cost += query.estimated_cost
            state.in_flight_count += 1
            state.in_flight[query.query_id] = query
            state.released.inc()
            self.patroller.release(query)
            released += 1
        return released

    def _release_eligible(self) -> int:
        released = 0
        for state in self._states.values():
            if state.service_class.directly_controlled:
                released += self._release_eligible_for(state)
        return released

    def _on_completion(self, query: Query) -> None:
        state = self._states.get(query.class_name)
        if state is None or not state.service_class.directly_controlled:
            return
        if query.query_id not in state.in_flight:
            # Completion of a query this dispatcher never released (e.g. a
            # different controller ran earlier in the same engine) — ignore.
            return
        state.retire(query)
        state.completed.inc()
        self._release_eligible_for(state)

    def _on_cancellation(self, query: Query) -> None:
        """Patroller cancel-listener hook.

        A query cancelled after release (while its agent unblock was still
        in flight) never reaches the engine, so no completion will ever
        retire it — release its slot here or the class limit shrinks
        permanently.  A query cancelled while still queued is removed
        immediately so queue lengths stay truthful.
        """
        state = self._states.get(query.class_name)
        if state is None or not state.service_class.directly_controlled:
            return
        if query.query_id in state.in_flight:
            state.retire(query)
            state.cancelled.inc()
            self._release_eligible_for(state)
            return
        for index, queued in enumerate(state.queue):
            if queued.query_id == query.query_id:
                state.queue.pop(index)
                state.queue_cancelled.inc()
                break
