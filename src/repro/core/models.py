"""Back-compat shim: the analytic models moved to ``repro.core.modeling``.

The paper's Section 3.2 models now live in
:mod:`repro.core.modeling.analytic` behind the
:class:`~repro.core.modeling.protocol.PerformanceModel` protocol, next to
the learned models they are ablated against.  Import from
``repro.core.modeling``; this module re-exports the historical names so
existing code and tests keep working.
"""

from repro.core.modeling.analytic import (  # noqa: F401
    _MIN_LIMIT,
    _SLOPE_DRIFT_FACTOR,
    OLAPVelocityModel,
    OLTPResponseTimeModel,
    PaperAnalyticModel,
)

__all__ = ["OLAPVelocityModel", "OLTPResponseTimeModel", "PaperAnalyticModel"]
