"""Baseline controllers the paper compares the Query Scheduler against.

* :class:`NoControlController` — Section 4.2.1: "no control was exerted over
  the workload except for the system cost limit".  Every OLAP query is still
  intercepted, but the only release rule is the single system-wide cost
  limit, FIFO, no differentiation.
* :class:`QPPriorityController` — Section 4.2.2: DB2 Query Patroller's own
  static strategy: OLAP queries partitioned into large/medium/small cost
  groups (top 5% / next 15% / rest) with fixed concurrency slots, a static
  OLAP cost limit, and optional submitter priorities (Class 2 above
  Class 1).  QP "is turned off" for the OLTP class in both baselines, just
  as for the Query Scheduler.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, Optional, Sequence

from repro.core.service_class import ServiceClass
from repro.runtime import ExecutionEngine
from repro.errors import ConfigurationError
from repro.patroller.patroller import QueryPatroller
from repro.patroller.policy import QPStaticPolicy, standard_groups


class Controller(ABC):
    """Common interface of every workload controller in the experiments."""

    #: Short identifier used by the experiment runner and reports.
    name: str = ""

    @abstractmethod
    def start(self) -> None:
        """Activate the controller (install handlers, start loops)."""

    @abstractmethod
    def describe(self) -> str:
        """One-line description for reports."""


def _configure_interception(
    patroller: QueryPatroller, classes: Sequence[ServiceClass]
) -> None:
    """QP on for OLAP classes, off for the OLTP class (every experiment)."""
    for service_class in classes:
        if service_class.directly_controlled:
            patroller.enable_for_class(service_class.name)
        else:
            patroller.disable_for_class(service_class.name)


class NoControlController(Controller):
    """Only the system cost limit; no class differentiation."""

    name = "no_control"

    def __init__(
        self,
        patroller: QueryPatroller,
        engine: ExecutionEngine,
        classes: Sequence[ServiceClass],
        system_cost_limit: float,
    ) -> None:
        if system_cost_limit <= 0:
            raise ConfigurationError("system_cost_limit must be positive")
        self.patroller = patroller
        self.engine = engine
        self.classes = list(classes)
        self.system_cost_limit = system_cost_limit
        self.policy: Optional[QPStaticPolicy] = None

    def start(self) -> None:
        _configure_interception(self.patroller, self.classes)
        self.policy = QPStaticPolicy(
            patroller=self.patroller,
            engine=self.engine,
            groups=[],
            priorities={},
            global_cost_limit=self.system_cost_limit,
        )

    def describe(self) -> str:
        return "No class control (system cost limit {:.0f} timerons only)".format(
            self.system_cost_limit
        )


class QPPriorityController(Controller):
    """DB2 QP static control: cost groups + priorities + static OLAP limit."""

    name = "qp_priority"

    def __init__(
        self,
        patroller: QueryPatroller,
        engine: ExecutionEngine,
        classes: Sequence[ServiceClass],
        historical_costs: Sequence[float],
        static_olap_limit: float,
        priority_control: bool = True,
        small_slots: int = 10,
        medium_slots: int = 3,
        large_slots: int = 1,
    ) -> None:
        if static_olap_limit <= 0:
            raise ConfigurationError("static_olap_limit must be positive")
        if not historical_costs:
            raise ConfigurationError(
                "QP group thresholds need a historical cost sample"
            )
        self.patroller = patroller
        self.engine = engine
        self.classes = list(classes)
        self.historical_costs = list(historical_costs)
        self.static_olap_limit = static_olap_limit
        self.priority_control = priority_control
        self.small_slots = small_slots
        self.medium_slots = medium_slots
        self.large_slots = large_slots
        self.policy: Optional[QPStaticPolicy] = None

    def _priorities(self) -> Dict[str, int]:
        if not self.priority_control:
            return {}
        # Submitter priority mirrors business importance among OLAP classes
        # (the paper sets Class 2's priority above Class 1's).
        return {
            c.name: int(c.importance)
            for c in self.classes
            if c.directly_controlled
        }

    def start(self) -> None:
        _configure_interception(self.patroller, self.classes)
        groups = standard_groups(
            self.historical_costs,
            small_slots=self.small_slots,
            medium_slots=self.medium_slots,
            large_slots=self.large_slots,
        )
        self.policy = QPStaticPolicy(
            patroller=self.patroller,
            engine=self.engine,
            groups=groups,
            priorities=self._priorities(),
            global_cost_limit=self.static_olap_limit,
        )

    def describe(self) -> str:
        return (
            "DB2 QP static control (groups 5%/15%/80%, priorities {}, "
            "static OLAP limit {:.0f})".format(
                "on" if self.priority_control else "off", self.static_olap_limit
            )
        )
