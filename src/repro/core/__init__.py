"""The Query Scheduler — the paper's primary contribution.

This subpackage implements the workload adaptation framework of Section 2
and its mixed-workload extension of Section 3: service classes with
per-class goals and business importance, the Monitor / Classifier /
Dispatcher / Scheduling Planner / Performance Solver pipeline of Figure 1,
the OLAP velocity and OLTP linear performance models, utility-function
objectives, and the baseline controllers the paper compares against.
"""

from repro.core.classifier import Classifier
from repro.core.controllers import (
    Controller,
    NoControlController,
    QPPriorityController,
)
from repro.core.detection import (
    ShiftEvent,
    WorkloadCharacterization,
    WorkloadDetector,
)
from repro.core.direct import DirectScheduler, EngineGate
from repro.core.heuristic import DeficitAllocator
from repro.core.dispatcher import Dispatcher
from repro.core.modeling import (
    LearnedPerformanceModel,
    OLAPVelocityModel,
    OLTPResponseTimeModel,
    OracleLastValueModel,
    PaperAnalyticModel,
    PerformanceModel,
    make_model,
)
from repro.core.monitor import ClassMeasurement, Monitor
from repro.core.mpl import MPLController
from repro.core.plan import SchedulingPlan
from repro.core.planner import SchedulingPlanner
from repro.core.scheduler import QueryScheduler
from repro.core.service_class import (
    PerformanceGoal,
    ResponseTimeGoal,
    ServiceClass,
    VelocityGoal,
)
from repro.core.solver import PerformanceSolver
from repro.core.utility import (
    PiecewiseLinearUtility,
    SigmoidUtility,
    StepUtility,
    UtilityFunction,
    make_utility,
)

__all__ = [
    "QueryScheduler",
    "ServiceClass",
    "PerformanceGoal",
    "VelocityGoal",
    "ResponseTimeGoal",
    "SchedulingPlan",
    "Classifier",
    "Monitor",
    "ClassMeasurement",
    "Dispatcher",
    "SchedulingPlanner",
    "PerformanceSolver",
    "OLAPVelocityModel",
    "OLTPResponseTimeModel",
    "PaperAnalyticModel",
    "LearnedPerformanceModel",
    "OracleLastValueModel",
    "PerformanceModel",
    "make_model",
    "UtilityFunction",
    "PiecewiseLinearUtility",
    "SigmoidUtility",
    "StepUtility",
    "make_utility",
    "Controller",
    "NoControlController",
    "QPPriorityController",
    "MPLController",
    "DirectScheduler",
    "EngineGate",
    "WorkloadDetector",
    "WorkloadCharacterization",
    "ShiftEvent",
    "DeficitAllocator",
]
