"""Direct in-engine workload control (the paper's future work).

Section 5: "The most effective way to manage performance of OLTP workload
is to directly control it.  One approach is to implement the control
mechanism inside the DBMS itself."  This module is that approach, built on
the engine's admission-gate hook:

* :class:`EngineGate` — per-class FIFO queues and cost limits enforced at
  statement admission, *inside* the engine: no interception latency, no
  per-statement CPU overhead, and every class (including sub-second OLTP)
  is gated.
* :class:`DirectScheduler` — the control loop: measures each class
  directly from completions (the engine sees everything, no snapshot
  sampling needed), and re-plans class cost limits with the same
  utility-maximising :class:`~repro.core.solver.PerformanceSolver`.

What this buys over the paper's indirect scheme: the OLTP class itself
becomes controllable.  Under the paper's assumption (OLTP most important)
the two coincide; when the OLTP class is *low*-importance — say a
background write storm — indirect control is helpless (OLTP bypasses QP
entirely) while direct control can throttle it to protect important OLAP
classes (see ``benchmarks/bench_extension_direct.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.config import PlannerConfig, SimulationConfig
from repro.core.modeling import (
    ClassMixState,
    IntervalObservation,
    MixSnapshot,
    make_model,
)
from repro.core.plan import SchedulingPlan
from repro.core.service_class import ServiceClass
from repro.core.solver import ClassStatus, PerformanceSolver
from repro.core.utility import make_utility
from repro.dbms.query import Query
from repro.errors import SchedulingError
from repro.runtime import ExecutionEngine, TimerService
from repro.sim.stats import SlidingWindow


class _GateClassState:
    """Gate-side bookkeeping for one service class."""

    __slots__ = ("service_class", "queue", "in_flight_cost", "in_flight_count", "released")

    def __init__(self, service_class: ServiceClass) -> None:
        self.service_class = service_class
        self.queue: Deque[Query] = deque()
        self.in_flight_cost = 0.0
        self.in_flight_count = 0
        self.released = 0


class EngineGate:
    """In-engine admission gate: class cost limits with zero overhead.

    Implements the engine's ``AdmissionGate`` protocol: ``admit(query)``
    returns True to let the statement through immediately or False to take
    ownership (the gate re-admits it later via ``engine.admit_released``).
    """

    def __init__(
        self,
        engine: ExecutionEngine,
        classes: List[ServiceClass],
        initial_plan: SchedulingPlan,
    ) -> None:
        self.engine = engine
        self._states: Dict[str, _GateClassState] = {
            c.name: _GateClassState(c) for c in classes
        }
        for name in initial_plan:
            if name not in self._states:
                raise SchedulingError("plan covers unknown class {!r}".format(name))
        self._plan = initial_plan
        self._gated: Dict[int, str] = {}  # query_id -> class (for accounting)
        engine.add_completion_listener(self._on_completion)
        engine.set_admission_gate(self)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def plan(self) -> SchedulingPlan:
        """The currently enforced plan."""
        return self._plan

    def queue_length(self, class_name: str) -> int:
        """Statements of the class waiting for admission."""
        return len(self._state(class_name).queue)

    def in_flight_cost(self, class_name: str) -> float:
        """Estimated cost of the class's admitted, unfinished statements."""
        return self._state(class_name).in_flight_cost

    def in_flight_count(self, class_name: str) -> int:
        """Admitted, unfinished statements of the class."""
        return self._state(class_name).in_flight_count

    def released_count(self, class_name: str) -> int:
        """Total statements of the class admitted so far."""
        return self._state(class_name).released

    def _state(self, class_name: str) -> _GateClassState:
        state = self._states.get(class_name)
        if state is None:
            raise SchedulingError("gate knows no class {!r}".format(class_name))
        return state

    # ------------------------------------------------------------------
    # AdmissionGate protocol
    # ------------------------------------------------------------------
    def admit(self, query: Query) -> bool:
        """Engine hook: immediately admit, or queue and return False."""
        state = self._states.get(query.class_name)
        if state is None:
            return True  # unmanaged class: pass through
        if self._eligible(state, query):
            self._account_admission(state, query)
            return True
        state.queue.append(query)
        return False

    def install_plan(self, plan: SchedulingPlan) -> int:
        """Adopt a new plan, admitting whatever the new limits allow."""
        for name in plan:
            if name not in self._states:
                raise SchedulingError("plan covers unknown class {!r}".format(name))
        self._plan = plan
        admitted = 0
        for state in self._states.values():
            admitted += self._drain(state)
        return admitted

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _eligible(self, state: _GateClassState, query: Query) -> bool:
        if state.service_class.name not in self._plan:
            return True
        limit = self._plan.limit(state.service_class.name)
        fits = state.in_flight_cost + query.estimated_cost <= limit
        alone = state.in_flight_count == 0
        return fits or alone

    def _account_admission(self, state: _GateClassState, query: Query) -> None:
        state.in_flight_cost += query.estimated_cost
        state.in_flight_count += 1
        state.released += 1
        self._gated[query.query_id] = state.service_class.name

    def _drain(self, state: _GateClassState) -> int:
        admitted = 0
        while state.queue and self._eligible(state, state.queue[0]):
            query = state.queue.popleft()
            self._account_admission(state, query)
            self.engine.admit_released(query)
            admitted += 1
        return admitted

    def _on_completion(self, query: Query) -> None:
        class_name = self._gated.pop(query.query_id, None)
        if class_name is None:
            return
        state = self._states[class_name]
        state.in_flight_cost -= query.estimated_cost
        state.in_flight_count -= 1
        if state.in_flight_cost < 0:
            state.in_flight_cost = 0.0
        self._drain(state)


class DirectScheduler:
    """The in-engine control loop (future-work extension).

    Measures every class from completed statements over a sliding window
    (inside the engine there is no need for control-table polling or
    snapshot sampling), and re-plans with the shared solver.  OLAP classes
    keep the velocity model; the OLTP class keeps the linear response-time
    model — under direct control its response time still falls as its own
    limit grows (queueing delay shrinks), so the sign convention holds.
    """

    name = "direct"

    def __init__(
        self,
        sim: TimerService,
        engine: ExecutionEngine,
        classes: List[ServiceClass],
        config: SimulationConfig,
        initial_plan: Optional[SchedulingPlan] = None,
    ) -> None:
        config.validate()
        if not classes:
            raise SchedulingError("DirectScheduler needs at least one class")
        self.sim = sim
        self.engine = engine
        self.classes = list(classes)
        self.config = config
        if initial_plan is None:
            initial_plan = SchedulingPlan.even_split(
                [c.name for c in classes], config.system_cost_limit, created_at=sim.now
            )
        self.gate = EngineGate(engine, self.classes, initial_plan)
        planner: PlannerConfig = config.planner
        self.solver = PerformanceSolver(
            utility=make_utility(
                planner.utility,
                surplus_slope=planner.surplus_slope,
                importance_base=planner.importance_base,
            ),
            model=make_model(planner.model, planner),
            system_cost_limit=config.system_cost_limit,
            grid_timerons=planner.grid_timerons,
            min_class_limit=planner.min_class_limit,
            oltp_target_margin=planner.oltp_target_margin,
        )
        self._windows: Dict[str, SlidingWindow] = {
            c.name: SlidingWindow(capacity=1024) for c in self.classes
        }
        self._last_value: Dict[str, float] = {}
        self.plans: List[SchedulingPlan] = []
        self._started = False
        self.intervals_run = 0
        engine.add_completion_listener(self._on_completion)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin the periodic re-planning loop."""
        if self._started:
            raise SchedulingError("DirectScheduler started twice")
        self._started = True
        self.sim.schedule(
            self.config.planner.control_interval, self._tick, label="direct:tick"
        )

    def describe(self) -> str:
        """One-line description for reports."""
        return "Direct in-engine control ({} classes, interval {:.0f}s)".format(
            len(self.classes), self.config.planner.control_interval
        )

    @property
    def plan(self) -> SchedulingPlan:
        """The currently enforced plan."""
        return self.gate.plan

    # ------------------------------------------------------------------
    # Measurement
    # ------------------------------------------------------------------
    def _on_completion(self, query: Query) -> None:
        window = self._windows.get(query.class_name)
        if window is None:
            return
        if query.kind == "olap":
            window.add(query.finish_time, query.velocity)
        else:
            window.add(query.finish_time, query.response_time)

    def measure(self, class_name: str) -> Optional[float]:
        """Windowed mean of the class's goal metric (None if no data)."""
        window = self._windows[class_name]
        window.evict_older_than(self.sim.now - self.config.monitor.velocity_window)
        if len(window) == 0:
            return self._last_value.get(class_name)
        value = window.mean
        self._last_value[class_name] = value
        return value

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def run_interval(self) -> SchedulingPlan:
        """One measurement + re-plan round (public for tests)."""
        now = self.sim.now
        values = {c.name: self.measure(c.name) for c in self.classes}
        mix = self._mix_snapshot(values, now)
        model = getattr(self.solver, "model", None)
        if model is not None:
            model.observe(IntervalObservation(time=now, mix=mix))
        statuses = [
            ClassStatus(
                service_class=service_class,
                current_limit=self.gate.plan.limit(service_class.name),
                current_value=values[service_class.name],
            )
            for service_class in self.classes
        ]
        plan = self.solver.solve(statuses, now=now, mix=mix)
        self.gate.install_plan(plan)
        self.plans.append(plan)
        self.intervals_run += 1
        return plan

    def _mix_snapshot(
        self, values: Dict[str, Optional[float]], now: float
    ) -> MixSnapshot:
        """The concurrent-mix view of the gate, for mix-aware models."""
        states = tuple(
            ClassMixState(
                name=c.name,
                kind=c.kind,
                limit=self.gate.plan.limit(c.name),
                value=values[c.name],
                queue_length=self.gate.queue_length(c.name),
                in_flight_count=self.gate.in_flight_count(c.name),
                in_flight_cost=self.gate.in_flight_cost(c.name),
            )
            for c in self.classes
        )
        return MixSnapshot(time=now, classes=states)

    def _tick(self) -> None:
        self.run_interval()
        self.sim.schedule(
            self.config.planner.control_interval, self._tick, label="direct:tick"
        )
