"""A deficit-weighted heuristic allocator (solver ablation).

The paper frames plan construction as utility optimization.  A natural
question is how much the optimization buys over the obvious heuristic:
give each class a share of the system cost limit proportional to
``importance x deficit``, where deficit measures how far the class is below
its goal.  :class:`DeficitAllocator` implements that heuristic behind the
same interface as :class:`~repro.core.solver.PerformanceSolver` (a
``solve(statuses, now)`` method), so the planner can run either; the
ablation bench compares them.

Known weaknesses (by design — they are what the solver fixes):

* it reacts to *measured* deficits only, with no model of what a limit
  change will do, so it overshoots on classes whose metric responds
  nonlinearly;
* a satisfied class keeps a floor share rather than being stripped to
  need, so violators recover more slowly.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.plan import SchedulingPlan
from repro.core.solver import ClassStatus
from repro.errors import SchedulingError

#: Deficit assigned to a class exactly at its goal, so satisfied classes
#: keep a small share instead of collapsing to the minimum.
_FLOOR_DEFICIT = 0.05


class DeficitAllocator:
    """Importance-x-deficit proportional allocation of the system limit."""

    def __init__(
        self,
        system_cost_limit: float,
        grid_timerons: float = 1000.0,
        min_class_limit: float = 1000.0,
    ) -> None:
        if system_cost_limit <= 0:
            raise SchedulingError("system_cost_limit must be positive")
        if grid_timerons <= 0:
            raise SchedulingError("grid_timerons must be positive")
        if min_class_limit < 0:
            raise SchedulingError("min_class_limit must be non-negative")
        self.system_cost_limit = system_cost_limit
        self.grid = grid_timerons
        self.min_class_limit = min_class_limit
        self._solve_calls = 0

    @property
    def solve_calls(self) -> int:
        """Number of plans produced."""
        return self._solve_calls

    def set_system_cost_limit(self, limit: float) -> None:
        """Retarget the allocator to a new global budget.

        Stateless between solves (no solution cache), so this is a plain
        guarded assignment — kept as a method so both solver kinds share
        the interface the sharded rebalancer calls.
        """
        if limit <= 0:
            raise SchedulingError("system_cost_limit must be positive")
        self.system_cost_limit = limit

    def register_instruments(self, registry: "MetricsRegistry") -> None:  # noqa: F821
        """Publish the allocator's counters into a registry."""
        registry.counter(
            "solver_solve_calls_total",
            description="Plans produced by the deficit allocator",
            callback=lambda: self._solve_calls,
        )

    @staticmethod
    def deficit(status: ClassStatus) -> float:
        """How far below goal the class currently is (floored when met)."""
        achievement = status.service_class.goal.achievement(status.current_value)
        return max(_FLOOR_DEFICIT, 1.0 - achievement)

    def solve(
        self, statuses: Sequence[ClassStatus], now: float = 0.0, mix=None
    ) -> SchedulingPlan:
        """Allocate proportionally to importance x deficit.

        ``mix`` is accepted (and ignored) so the planner can hand every
        allocator the same mix snapshot that model-driven solvers use.
        """
        if not statuses:
            raise SchedulingError("allocator needs at least one class status")
        self._solve_calls += 1
        minimum = max(self.min_class_limit, self.grid)
        budget = self.system_cost_limit - minimum * len(statuses)
        if budget < 0:
            raise SchedulingError(
                "system cost limit cannot give every class its minimum"
            )
        weights = [
            status.service_class.importance * self.deficit(status)
            for status in statuses
        ]
        total_weight = sum(weights)
        limits = {}
        for status, weight in zip(statuses, weights):
            share = budget * weight / total_weight if total_weight > 0 else 0.0
            quantised = minimum + self.grid * round(share / self.grid)
            limits[status.service_class.name] = quantised
        # Quantisation can overshoot the budget; shave the largest class.
        total = sum(limits.values())
        while total > self.system_cost_limit + 1e-9:
            largest = max(limits, key=lambda name: limits[name])
            if limits[largest] <= minimum:
                break
            limits[largest] -= self.grid
            total -= self.grid
        return SchedulingPlan(limits, self.system_cost_limit, created_at=now)
