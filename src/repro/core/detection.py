"""Workload detection.

Section 2: "We view workload adaptation in general as consisting of two
processes, workload detection and workload control.  Workload detection
identifies workload changes by monitoring and characterizing current
workloads and predicting future workload trends."

The prototype evaluated in the paper re-plans on a fixed interval, so
detection is implicit.  This module makes it explicit (and ablatable):

* :class:`WorkloadCharacterization` — per-class arrival rate and mean
  estimated cost over bucketed windows;
* :class:`WorkloadDetector` — compares the latest bucket against an
  exponentially weighted baseline per class and fires *shift* callbacks
  when intensity changes by more than a configurable factor.  Wired to the
  planner's early-trigger hook, a detected shift cuts the worst-case
  reaction latency from a full control interval to one detection bucket.
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Sequence

from repro.core.service_class import ServiceClass
from repro.dbms.query import Query
from repro.errors import ConfigurationError
from repro.runtime import TimerService


class WorkloadCharacterization(NamedTuple):
    """One class's observed workload over a detection bucket."""

    class_name: str
    bucket_start: float
    arrivals: int
    arrival_rate: float  # statements per second
    mean_cost: float  # mean estimated timerons (0 with no arrivals)


class ShiftEvent(NamedTuple):
    """A detected intensity change for one class."""

    class_name: str
    time: float
    baseline_rate: float
    observed_rate: float

    @property
    def factor(self) -> float:
        """Observed over baseline rate (guards a zero baseline)."""
        if self.baseline_rate <= 0:
            return float("inf") if self.observed_rate > 0 else 1.0
        return self.observed_rate / self.baseline_rate


ShiftListener = Callable[[ShiftEvent], None]


class WorkloadDetector:
    """Bucketed arrival-rate change detector with an EWMA baseline.

    Parameters
    ----------
    sim:
        The simulator (buckets close on scheduled events).
    classes:
        Service classes to characterise.
    bucket_seconds:
        Width of one observation bucket.
    ewma_alpha:
        Weight of the newest bucket in the baseline (0..1).
    shift_factor:
        Fire a shift when the observed rate leaves
        ``[baseline/shift_factor, baseline*shift_factor]``.
    warmup_buckets:
        Buckets observed before any shift may fire (baseline settling).
    min_shift_gap:
        Minimum seconds between two fired shifts (rate-limits triggers).
    """

    def __init__(
        self,
        sim: TimerService,
        classes: Sequence[ServiceClass],
        bucket_seconds: float = 10.0,
        ewma_alpha: float = 0.3,
        shift_factor: float = 1.4,
        warmup_buckets: int = 2,
        min_shift_gap: float = 20.0,
    ) -> None:
        if bucket_seconds <= 0:
            raise ConfigurationError("bucket_seconds must be positive")
        if not 0 < ewma_alpha <= 1:
            raise ConfigurationError("ewma_alpha must be in (0, 1]")
        if shift_factor <= 1:
            raise ConfigurationError("shift_factor must exceed 1")
        if warmup_buckets < 1:
            raise ConfigurationError("warmup_buckets must be >= 1")
        if min_shift_gap < 0:
            raise ConfigurationError("min_shift_gap must be non-negative")
        self.sim = sim
        self.bucket_seconds = bucket_seconds
        self.ewma_alpha = ewma_alpha
        self.shift_factor = shift_factor
        self.warmup_buckets = warmup_buckets
        self.min_shift_gap = min_shift_gap
        self._class_names = [c.name for c in classes]
        self._arrivals: Dict[str, int] = {name: 0 for name in self._class_names}
        self._cost_sum: Dict[str, float] = {name: 0.0 for name in self._class_names}
        self._baseline: Dict[str, Optional[float]] = {
            name: None for name in self._class_names
        }
        self._buckets_seen = 0
        self._bucket_start = sim.now
        self._last_shift_at = -float("inf")
        self._listeners: List[ShiftListener] = []
        self.history: List[WorkloadCharacterization] = []
        self.shifts: List[ShiftEvent] = []
        self._started = False

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def add_shift_listener(self, listener: ShiftListener) -> None:
        """Subscribe to detected workload shifts."""
        self._listeners.append(listener)

    def observe(self, query: Query) -> None:
        """Submit-path hook: record one arrival."""
        if query.class_name not in self._arrivals:
            return
        self._arrivals[query.class_name] += 1
        self._cost_sum[query.class_name] += query.estimated_cost

    def start(self) -> None:
        """Begin closing buckets on schedule."""
        if self._started:
            raise ConfigurationError("WorkloadDetector started twice")
        self._started = True
        self._bucket_start = self.sim.now
        self.sim.schedule(self.bucket_seconds, self._close_bucket, label="detector:bucket")

    def register_instruments(self, registry: "MetricsRegistry") -> None:  # noqa: F821
        """Publish the detector's live counters into a registry."""
        registry.counter(
            "detection_shifts_total",
            description="Workload intensity shifts detected",
            callback=lambda: len(self.shifts),
        )
        registry.counter(
            "detection_buckets_total",
            description="Detection buckets closed",
            callback=lambda: self._buckets_seen,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def baseline_rate(self, class_name: str) -> Optional[float]:
        """Current EWMA arrival-rate baseline for a class."""
        return self._baseline.get(class_name)

    @property
    def buckets_seen(self) -> int:
        """Buckets closed so far."""
        return self._buckets_seen

    def forecast_rate(
        self,
        class_name: str,
        horizon: float,
        lookback_buckets: int = 6,
    ) -> Optional[float]:
        """Predict a class's arrival rate ``horizon`` seconds ahead.

        "Predicting future workload trends" (Section 2): a least-squares
        linear trend over the last ``lookback_buckets`` closed buckets,
        extrapolated and floored at zero.  Returns None until at least two
        buckets exist for the class.
        """
        if horizon < 0:
            raise ConfigurationError("forecast horizon must be non-negative")
        recent = [
            h for h in self.history if h.class_name == class_name
        ][-lookback_buckets:]
        if len(recent) < 2:
            return None
        times = [h.bucket_start for h in recent]
        rates = [h.arrival_rate for h in recent]
        n = len(recent)
        mean_t = sum(times) / n
        mean_r = sum(rates) / n
        sxx = sum((t - mean_t) ** 2 for t in times)
        if sxx <= 0:
            return max(0.0, mean_r)
        slope = sum((t - mean_t) * (r - mean_r) for t, r in zip(times, rates)) / sxx
        intercept = mean_r - slope * mean_t
        predicted = intercept + slope * (self.sim.now + horizon)
        return max(0.0, predicted)

    # ------------------------------------------------------------------
    # Bucket lifecycle
    # ------------------------------------------------------------------
    def _close_bucket(self) -> None:
        now = self.sim.now
        span = max(now - self._bucket_start, 1e-9)
        self._buckets_seen += 1
        for name in self._class_names:
            arrivals = self._arrivals[name]
            rate = arrivals / span
            mean_cost = self._cost_sum[name] / arrivals if arrivals else 0.0
            self.history.append(
                WorkloadCharacterization(
                    class_name=name,
                    bucket_start=self._bucket_start,
                    arrivals=arrivals,
                    arrival_rate=rate,
                    mean_cost=mean_cost,
                )
            )
            self._maybe_fire(name, rate, now)
            baseline = self._baseline[name]
            if baseline is None:
                self._baseline[name] = rate
            else:
                self._baseline[name] = (
                    self.ewma_alpha * rate + (1 - self.ewma_alpha) * baseline
                )
            self._arrivals[name] = 0
            self._cost_sum[name] = 0.0
        self._bucket_start = now
        self.sim.schedule(self.bucket_seconds, self._close_bucket, label="detector:bucket")

    def _maybe_fire(self, name: str, rate: float, now: float) -> None:
        baseline = self._baseline[name]
        if baseline is None or self._buckets_seen <= self.warmup_buckets:
            return
        if now - self._last_shift_at < self.min_shift_gap:
            return
        if baseline <= 0 and rate <= 0:
            return
        shifted_up = rate > baseline * self.shift_factor
        shifted_down = rate < baseline / self.shift_factor
        if not (shifted_up or shifted_down):
            return
        event = ShiftEvent(
            class_name=name, time=now, baseline_rate=baseline, observed_rate=rate
        )
        self._last_shift_at = now
        self.shifts.append(event)
        for listener in self._listeners:
            listener(event)
