"""The Classifier.

"The Classifier assigns the query to an appropriate service class based on
its performance goal and places the query in the associated queue
manipulated by the dispatcher" (Section 2).

Classification is rule-based: rules match on the query's submitter tag, its
workload kind, or its estimated cost, in order; the first match wins.  The
default rule set used by the experiments trusts the submitter's class tag
(clients connect "as" a class, exactly like DB2 QP submitter profiles) and
validates it against the registered classes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.service_class import ServiceClass
from repro.dbms.query import Query
from repro.errors import SchedulingError

#: A classification rule: returns a class name or None to pass.
Rule = Callable[[Query], Optional[str]]


@dataclass(frozen=True)
class CostBandRule:
    """Assigns queries whose estimated cost falls in (low, high]."""

    class_name: str
    low_cost: float
    high_cost: float

    def __call__(self, query: Query) -> Optional[str]:
        if self.low_cost < query.estimated_cost <= self.high_cost:
            return self.class_name
        return None


@dataclass(frozen=True)
class KindRule:
    """Assigns queries by workload kind ('olap'/'oltp')."""

    class_name: str
    kind: str

    def __call__(self, query: Query) -> Optional[str]:
        if query.kind == self.kind:
            return self.class_name
        return None


def submitter_tag_rule(query: Query) -> Optional[str]:
    """Trust the class tag the submitting client attached to the query."""
    return query.class_name or None


class Classifier:
    """Maps incoming queries to registered service classes."""

    def __init__(
        self,
        classes: Sequence[ServiceClass],
        rules: Optional[Sequence[Rule]] = None,
    ) -> None:
        if not classes:
            raise SchedulingError("classifier needs at least one service class")
        self._classes: Dict[str, ServiceClass] = {}
        for service_class in classes:
            if service_class.name in self._classes:
                raise SchedulingError(
                    "duplicate service class {!r}".format(service_class.name)
                )
            self._classes[service_class.name] = service_class
        self.rules: List[Rule] = list(rules) if rules is not None else [submitter_tag_rule]
        self._classified = 0

    @property
    def classes(self) -> List[ServiceClass]:
        """Registered classes (insertion order)."""
        return list(self._classes.values())

    @property
    def class_names(self) -> List[str]:
        """Names of the registered classes."""
        return list(self._classes)

    @property
    def classified_count(self) -> int:
        """Queries classified so far."""
        return self._classified

    def get(self, class_name: str) -> ServiceClass:
        """Look up a registered class."""
        service_class = self._classes.get(class_name)
        if service_class is None:
            raise SchedulingError("unknown service class {!r}".format(class_name))
        return service_class

    def classify(self, query: Query) -> ServiceClass:
        """Assign the query to a service class; updates ``query.class_name``.

        Raises SchedulingError if no rule matches or a rule names an
        unregistered class — a misrouted query must never be silently
        dropped from workload control.
        """
        for rule in self.rules:
            name = rule(query)
            if name is None:
                continue
            service_class = self._classes.get(name)
            if service_class is None:
                raise SchedulingError(
                    "rule assigned query {} to unknown class {!r}".format(
                        query.query_id, name
                    )
                )
            query.class_name = service_class.name
            self._classified += 1
            return service_class
        raise SchedulingError(
            "no classification rule matched query {}".format(query.query_id)
        )
