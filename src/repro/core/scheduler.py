"""The Query Scheduler facade (paper Figure 1).

Wires the full pipeline onto a database engine and its Query Patroller:

* QP intercepts queries of the directly controlled (OLAP) classes and hands
  them to the **Monitor**;
* the **Classifier** assigns each query to its service class and places it
  in the class queue of the **Dispatcher**;
* the **Scheduling Planner** periodically consults the **Performance
  Solver** (utility maximisation over the performance models) and installs
  the resulting plan on the Dispatcher;
* the Dispatcher releases queries under the class cost limits through QP's
  unblocking API.

The OLTP class is never intercepted (QP is "turned off" for it); its plan
limit acts purely as a reservation that bounds the OLAP classes — the
paper's indirect control (Section 3).
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import SimulationConfig
from repro.core.classifier import Classifier
from repro.core.detection import WorkloadDetector
from repro.core.heuristic import DeficitAllocator
from repro.core.dispatcher import Dispatcher
from repro.core.modeling import make_model
from repro.core.monitor import Monitor
from repro.core.plan import SchedulingPlan
from repro.core.planner import SchedulingPlanner
from repro.core.service_class import ServiceClass
from repro.core.solver import PerformanceSolver
from repro.core.utility import make_utility
from repro.dbms.query import Query
from repro.errors import SchedulingError
from repro.metrics.telemetry import ControllerTelemetry
from repro.obs.registry import MetricsRegistry
from repro.patroller.patroller import QueryPatroller
from repro.runtime import ExecutionEngine, TimerService


class QueryScheduler:
    """The paper's prototype: dynamic cost-based workload adaptation."""

    name = "query_scheduler"

    def __init__(
        self,
        sim: TimerService,
        engine: ExecutionEngine,
        patroller: QueryPatroller,
        classes: List[ServiceClass],
        config: SimulationConfig,
        initial_plan: Optional[SchedulingPlan] = None,
    ) -> None:
        config.validate()
        if not classes:
            raise SchedulingError("QueryScheduler needs at least one service class")
        self.sim = sim
        self.engine = engine
        self.patroller = patroller
        self.classes = list(classes)
        self.config = config

        for service_class in self.classes:
            if service_class.directly_controlled:
                patroller.enable_for_class(service_class.name)
            else:
                patroller.disable_for_class(service_class.name)

        if initial_plan is None:
            initial_plan = SchedulingPlan.even_split(
                [c.name for c in self.classes],
                config.system_cost_limit,
                created_at=sim.now,
            )
        #: One instrument registry for the whole controller: the Dispatcher,
        #: Monitor, Planner, Solver, Patroller and (optional) detector all
        #: publish into it, and it is sampled once per plan decision.
        self.registry = MetricsRegistry()
        self.classifier = Classifier(self.classes)
        self.dispatcher = Dispatcher(
            patroller,
            engine,
            self.classes,
            initial_plan,
            discipline=config.planner.queue_discipline,
            registry=self.registry,
        )
        self.monitor = Monitor(sim, engine, self.classes, config.monitor)
        if config.planner.allocator == "deficit":
            self.solver = DeficitAllocator(
                system_cost_limit=config.system_cost_limit,
                grid_timerons=config.planner.grid_timerons,
                min_class_limit=config.planner.min_class_limit,
            )
        else:
            self.solver = PerformanceSolver(
                utility=make_utility(
                    config.planner.utility,
                    surplus_slope=config.planner.surplus_slope,
                    importance_base=config.planner.importance_base,
                ),
                model=make_model(config.planner.model, config.planner),
                system_cost_limit=config.system_cost_limit,
                grid_timerons=config.planner.grid_timerons,
                min_class_limit=config.planner.min_class_limit,
                oltp_target_margin=config.planner.oltp_target_margin,
            )
        self.planner = SchedulingPlanner(
            sim, self.monitor, self.dispatcher, self.solver, self.classes, config.planner
        )
        self.telemetry = ControllerTelemetry(
            planner=self.planner,
            dispatcher=self.dispatcher,
            solver=self.solver,
            classes=self.classes,
        )
        self.monitor.set_forward(self._classify_and_enqueue)
        patroller.set_release_handler(self.monitor.on_intercepted)
        patroller.add_cancel_listener(self.monitor.on_cancelled)
        self.monitor.register_instruments(self.registry)
        self.solver.register_instruments(self.registry)
        self.planner.register_instruments(self.registry)
        patroller.register_instruments(self.registry)
        self.planner.add_plan_listener(
            lambda record: self.registry.sample(record.time)
        )
        self.detector: Optional[WorkloadDetector] = None
        self._started = False

    def _classify_and_enqueue(self, query: Query) -> None:
        self.classifier.classify(query)
        self.dispatcher.enqueue(query)

    def enable_detection(self, **detector_kwargs) -> WorkloadDetector:
        """Attach explicit workload detection (Section 2's first process).

        The detector characterises per-class arrival rates from the submit
        path (it sees the OLTP traffic QP never intercepts) and triggers an
        early re-plan on intensity shifts, cutting reaction latency below
        the fixed control interval.  Call before :meth:`start`.
        """
        if self.detector is not None:
            raise SchedulingError("detection already enabled")
        detector = WorkloadDetector(self.sim, self.classes, **detector_kwargs)
        self.patroller.add_submit_listener(detector.observe)
        detector.add_shift_listener(lambda event: self.planner.trigger_early())
        detector.register_instruments(self.registry)
        self.detector = detector
        if self._started:
            detector.start()
        return detector

    def start(self) -> None:
        """Begin monitoring and the planning control loop."""
        if self._started:
            raise SchedulingError("QueryScheduler started twice")
        self._started = True
        self.monitor.start()
        self.planner.start()
        if self.detector is not None:
            self.detector.start()

    @property
    def plan(self) -> SchedulingPlan:
        """The currently active scheduling plan."""
        return self.dispatcher.plan

    def describe(self) -> str:
        """One-line description for reports."""
        return (
            "Query Scheduler (dynamic cost-based control, {} classes, "
            "interval {:.0f}s, utility {!r})".format(
                len(self.classes),
                self.config.planner.control_interval,
                self.config.planner.utility,
            )
        )
