"""The Scheduling Planner.

"The Scheduling Planner consults with the Performance Solver at regular
intervals to determine an optimal scheduling plan, and passes this plan to
the Dispatcher" (Section 2).  Each control interval the planner:

1. collects per-class measurements from the Monitor;
2. feeds the OLTP model one (Δ limit, Δ response time) regression
   observation from the interval that just ended (Section 3.2);
3. asks the solver for the utility-optimal plan given the measurements and
   the active limits;
4. installs the plan on the dispatcher and records it (the record is what
   Figure 7 plots).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.config import PlannerConfig
from repro.core.dispatcher import Dispatcher
from repro.core.modeling import (
    ClassMixState,
    IntervalObservation,
    MixSnapshot,
    OLTPResponseTimeModel,
    PerformanceModel,
)
from repro.core.monitor import ClassMeasurement, Monitor
from repro.core.plan import SchedulingPlan
from repro.core.service_class import ServiceClass
from repro.core.solver import ClassStatus, PerformanceSolver
from repro.errors import SchedulingError
from repro.obs.profiling import IntervalProfiler
from repro.runtime import TimerService


class PlanRecord(NamedTuple):
    """One control-interval decision, kept for analysis and Figure 7.

    ``predictions`` holds the solver's predicted goal-metric value per class
    under the plan just installed (what the models expect the *next*
    measurement to look like); ``trigger`` distinguishes the fixed-interval
    loop from detection-driven early re-plans; ``interval_index`` counts
    decisions from zero.  ``overhead`` is the real wall-clock cost of this
    decision (``monitor_s``/``solver_s``/``dispatcher_s``/``total_s``),
    measured with ``time.perf_counter`` — never simulated time.
    """

    time: float
    plan: SchedulingPlan
    measurements: Dict[str, ClassMeasurement]
    predictions: Dict[str, float] = {}
    trigger: str = "scheduled"
    interval_index: int = 0
    overhead: Dict[str, float] = {}


PlanListener = Callable[[PlanRecord], None]


class SchedulingPlanner:
    """Closed control loop: measure -> model -> solve -> install."""

    def __init__(
        self,
        sim: TimerService,
        monitor: Monitor,
        dispatcher: Dispatcher,
        solver: PerformanceSolver,
        classes: List[ServiceClass],
        config: PlannerConfig,
    ) -> None:
        config.validate()
        self.sim = sim
        self.monitor = monitor
        self.dispatcher = dispatcher
        self.solver = solver
        self.config = config
        self.classes = list(classes)
        oltp_classes = [c for c in self.classes if c.kind == "oltp"]
        if len(oltp_classes) > 1:
            raise SchedulingError(
                "the paper's framework models a single OLTP class; got {}".format(
                    [c.name for c in oltp_classes]
                )
            )
        self._oltp_class: Optional[ServiceClass] = (
            oltp_classes[0] if oltp_classes else None
        )
        self.history: List[PlanRecord] = []
        self._listeners: List[PlanListener] = []
        self._previous_oltp: Optional[ClassMeasurement] = None
        self._started = False
        self._intervals = 0
        self._last_interval_at: Optional[float] = None
        self.early_triggers = 0
        #: Wall-clock self-profiler; tests may replace it with one driven by
        #: a fake clock for deterministic overhead values.
        self.profiler = IntervalProfiler()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    @property
    def model(self) -> Optional[PerformanceModel]:
        """The solver's performance model (None for model-free allocators
        like the deficit heuristic)."""
        return getattr(self.solver, "model", None)

    @property
    def oltp_model(self) -> Optional[OLTPResponseTimeModel]:
        """The solver's OLTP response-time model (None for model-free
        allocators and for learned models without a scalar regression)."""
        return getattr(self.solver, "oltp_model", None)

    @property
    def intervals_run(self) -> int:
        """Control intervals executed so far."""
        return self._intervals

    def add_plan_listener(self, listener: PlanListener) -> None:
        """Subscribe to every plan decision."""
        self._listeners.append(listener)

    def register_instruments(self, registry: "MetricsRegistry") -> None:  # noqa: F821
        """Publish the planner's decision counters into a registry."""
        registry.counter(
            "planner_intervals_total",
            description="Scheduled control intervals executed",
            callback=lambda: self._intervals,
        )
        registry.counter(
            "planner_early_triggers_total",
            description="Detection-driven early re-plans executed",
            callback=lambda: self.early_triggers,
        )

    def start(self) -> None:
        """Schedule the recurring control loop."""
        if self._started:
            raise SchedulingError("planner started twice")
        self._started = True
        self.sim.schedule(
            self.config.control_interval, self._tick, label="planner:tick"
        )

    # ------------------------------------------------------------------
    # Control loop
    # ------------------------------------------------------------------
    def _tick(self) -> None:
        self._intervals += 1
        self.run_interval()
        self.sim.schedule(
            self.config.control_interval, self._tick, label="planner:tick"
        )

    def trigger_early(self, min_spacing: Optional[float] = None) -> bool:
        """Run an off-schedule control interval now (detection hook).

        Workload detection (Section 2) can request immediate re-planning
        when it sees an intensity shift, instead of waiting out the fixed
        interval.  ``min_spacing`` (default: a quarter interval) rate-limits
        back-to-back triggers.  Returns True if an interval actually ran.
        """
        if min_spacing is None:
            min_spacing = self.config.control_interval / 4.0
        now = self.sim.now
        if self._last_interval_at is not None and now - self._last_interval_at < min_spacing:
            return False
        self.early_triggers += 1
        self.run_interval(trigger="early")
        return True

    def run_interval(self, trigger: str = "scheduled") -> PlanRecord:
        """One control-interval decision (public for tests and manual use)."""
        now = self.sim.now
        self._last_interval_at = now
        self.profiler.begin()
        with self.profiler.section("monitor"):
            measurements = self.monitor.measure_all()
        mix = self._mix_snapshot(measurements, now)
        self._observe_model(measurements, mix)
        statuses = [
            ClassStatus(
                service_class=service_class,
                current_limit=self.dispatcher.plan.limit(service_class.name),
                current_value=self._value_of(measurements, service_class.name),
            )
            for service_class in self.classes
        ]
        with self.profiler.section("solver"):
            plan = self.solver.solve(statuses, now=now, mix=mix)
        with self.profiler.section("dispatcher"):
            self.dispatcher.install_plan(plan)
        overhead = self.profiler.finish()
        if self._oltp_class is not None:
            self._previous_oltp = measurements.get(self._oltp_class.name)
        record = PlanRecord(
            time=now,
            plan=plan,
            measurements=measurements,
            predictions=self._predict_under(statuses, plan, mix),
            trigger=trigger,
            interval_index=len(self.history),
            overhead=overhead,
        )
        self.history.append(record)
        for listener in self._listeners:
            listener(record)
        return record

    def _predict_under(
        self,
        statuses: List[ClassStatus],
        plan: SchedulingPlan,
        mix: Optional[MixSnapshot] = None,
    ) -> Dict[str, float]:
        """Per-class predicted metric value under the plan just chosen.

        Model-free allocators (the deficit heuristic) expose no
        ``predict_value``; they simply yield an empty prediction set.
        """
        predict = getattr(self.solver, "predict_value", None)
        if predict is None:
            return {}
        return {
            status.service_class.name: predict(
                status, plan.limit(status.service_class.name), mix
            )
            for status in statuses
        }

    @staticmethod
    def _value_of(
        measurements: Dict[str, ClassMeasurement], class_name: str
    ) -> Optional[float]:
        measurement = measurements.get(class_name)
        return measurement.value if measurement is not None else None

    def _mix_snapshot(
        self, measurements: Dict[str, ClassMeasurement], now: float
    ) -> MixSnapshot:
        """The full concurrent mix as mix-aware models see it.

        Limits are the ones *active right now* (the previous decision's
        plan — the solve for this interval has not happened yet), queue
        depths and in-flight load come from the dispatcher.
        """
        states = []
        for service_class in self.classes:
            name = service_class.name
            states.append(
                ClassMixState(
                    name=name,
                    kind=service_class.kind,
                    limit=self.dispatcher.plan.limit(name),
                    value=self._value_of(measurements, name),
                    queue_length=self.dispatcher.queue_length(name),
                    in_flight_count=self.dispatcher.in_flight_count(name),
                    in_flight_cost=self.dispatcher.in_flight_cost(name),
                )
            )
        return MixSnapshot(time=now, classes=tuple(states))

    def _observe_model(
        self, measurements: Dict[str, ClassMeasurement], mix: MixSnapshot
    ) -> None:
        """Hand the performance model this interval's observation."""
        model = self.model
        if model is None:
            return
        model.observe(
            IntervalObservation(
                time=mix.time,
                mix=mix,
                oltp_delta=self._oltp_delta(measurements),
            )
        )

    def _oltp_delta(
        self, measurements: Dict[str, ClassMeasurement]
    ) -> Optional[Tuple[float, float]]:
        """The (Δ limit, Δ response time) regression pair of last interval.

        Only produced with ``config.online_regression`` (the paper uses
        the offline regression constant, Section 3.2) and when a valid
        consecutive measurement pair exists — the same gating the
        pre-seam planner applied before feeding the OLTP model directly.
        """
        if not self.config.online_regression:
            return None
        if self._oltp_class is None:
            return None
        current = measurements.get(self._oltp_class.name)
        if current is None or self._previous_oltp is None or len(self.history) < 2:
            return None
        # The limit active during the interval that just ended was installed
        # by the last tick; the one before it by the tick before that.
        name = self._oltp_class.name
        delta_limit = self.history[-1].plan.limit(name) - self.history[-2].plan.limit(
            name
        )
        delta_rt = current.value - self._previous_oltp.value
        return (delta_limit, delta_rt)
