"""MPL-based admission control (extension baseline).

The paper contrasts its cost-based control with Schroeder et al.'s
multiprogramming-level (MPL) approach ("A similar framework by Schroeder et
al controls OLTP workloads based on multiprogramming levels (MPL) by
intercepting queries and performing admission control", Section 1, ref [5]).
This module implements that alternative on the same substrate so the two can
be compared head-to-head (``benchmarks/bench_extension_mpl.py``):

* each directly controlled class has an MPL — a cap on its *number* of
  concurrently executing queries, cost-blind;
* a feedback loop adapts the MPLs additively-increase / multiplicatively-
  decrease style: when the (indirectly controlled) OLTP class violates its
  goal, every OLAP MPL is cut; when all goals are met, MPLs creep back up.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.core.service_class import ServiceClass
from repro.dbms.query import Query, QueryState
from repro.errors import ConfigurationError, SchedulingError
from repro.patroller.patroller import QueryPatroller
from repro.runtime import ExecutionEngine, TimerService


class MPLController:
    """Per-class MPL admission control with AIMD adaptation."""

    name = "mpl"

    def __init__(
        self,
        sim: TimerService,
        patroller: QueryPatroller,
        engine: ExecutionEngine,
        classes: List[ServiceClass],
        initial_mpl: int = 4,
        min_mpl: int = 1,
        max_mpl: int = 64,
        control_interval: float = 60.0,
        decrease_factor: float = 0.5,
        snapshot_staleness: float = 30.0,
    ) -> None:
        if initial_mpl < min_mpl or min_mpl < 1 or max_mpl < initial_mpl:
            raise ConfigurationError("inconsistent MPL bounds")
        if not 0 < decrease_factor < 1:
            raise ConfigurationError("decrease_factor must be in (0, 1)")
        if control_interval <= 0:
            raise ConfigurationError("control_interval must be positive")
        self.sim = sim
        self.patroller = patroller
        self.engine = engine
        self.classes = list(classes)
        self.min_mpl = min_mpl
        self.max_mpl = max_mpl
        self.control_interval = control_interval
        self.decrease_factor = decrease_factor
        self.snapshot_staleness = snapshot_staleness
        self.mpl: Dict[str, int] = {
            c.name: initial_mpl for c in self.classes if c.directly_controlled
        }
        self._queues: Dict[str, Deque[Query]] = {name: deque() for name in self.mpl}
        self._executing: Dict[str, int] = {name: 0 for name in self.mpl}
        self._oltp_class: Optional[ServiceClass] = next(
            (c for c in self.classes if c.kind == "oltp"), None
        )
        self._started = False
        self.adjustments = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Install handlers and begin the adaptation loop."""
        if self._started:
            raise SchedulingError("MPLController started twice")
        self._started = True
        for service_class in self.classes:
            if service_class.directly_controlled:
                self.patroller.enable_for_class(service_class.name)
            else:
                self.patroller.disable_for_class(service_class.name)
        self.patroller.set_release_handler(self._on_intercepted)
        self.engine.add_completion_listener(self._on_completed)
        self.sim.schedule(self.control_interval, self._tick, label="mpl:tick")

    def describe(self) -> str:
        """One-line description for reports."""
        return "MPL admission control (AIMD, interval {:.0f}s)".format(
            self.control_interval
        )

    # ------------------------------------------------------------------
    # Admission path
    # ------------------------------------------------------------------
    def _on_intercepted(self, query: Query) -> None:
        queue = self._queues.get(query.class_name)
        if queue is None:
            raise SchedulingError(
                "MPL controller got query of unmanaged class {!r}".format(
                    query.class_name
                )
            )
        queue.append(query)
        self._release_eligible(query.class_name)

    def _on_completed(self, query: Query) -> None:
        if query.class_name not in self._executing:
            return
        if self._executing[query.class_name] > 0:
            self._executing[query.class_name] -= 1
        self._release_eligible(query.class_name)

    def _release_eligible(self, class_name: str) -> int:
        queue = self._queues[class_name]
        released = 0
        while queue and self._executing[class_name] < self.mpl[class_name]:
            query = queue.popleft()
            if query.state == QueryState.CANCELLED:
                continue  # abandoned while waiting; drop
            self._executing[class_name] += 1
            self.patroller.release(query)
            released += 1
        return released

    # ------------------------------------------------------------------
    # Adaptation loop
    # ------------------------------------------------------------------
    def _oltp_violating(self) -> Optional[bool]:
        if self._oltp_class is None:
            return None
        average = self.engine.snapshot_monitor.average_response_time(
            class_name=self._oltp_class.name,
            since=self.sim.now - self.snapshot_staleness,
        )
        if average is None:
            return None
        return not self._oltp_class.goal.satisfied(average)

    def _tick(self) -> None:
        violating = self._oltp_violating()
        if violating is True:
            for name in self.mpl:
                reduced = int(self.mpl[name] * self.decrease_factor)
                self.mpl[name] = max(self.min_mpl, reduced)
            self.adjustments += 1
        elif violating is False:
            for name in self.mpl:
                self.mpl[name] = min(self.max_mpl, self.mpl[name] + 1)
                self._release_eligible(name)
            self.adjustments += 1
        self.sim.schedule(self.control_interval, self._tick, label="mpl:tick")
