"""Service classes, performance goals, and business importance.

Section 4: "Class 1 and Class 2 were OLAP classes with importance levels of
1 and 2, and query velocity goals of 0.4 and 0.6, respectively. ... Class 3
was the OLTP class with the highest importance level of 3, and was assigned
average response time goal 0.25 seconds."

A goal knows two things: whether a measured value satisfies it, and the
*achievement ratio* — a normalized ≥-is-better number that equals 1.0 exactly
at the goal.  Utility functions consume achievement ratios so that velocity
goals (higher is better) and response-time goals (lower is better) live on
one scale.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError

#: Floor applied to measured/predicted response times when computing ratios,
#: so a momentarily idle OLTP class cannot produce an infinite achievement.
_MIN_RESPONSE_TIME = 1e-3


class PerformanceGoal(ABC):
    """A per-class service level objective."""

    #: The paper's metric name for reporting.
    metric: str = ""

    @property
    @abstractmethod
    def target(self) -> float:
        """The goal value on the metric's own scale."""

    @abstractmethod
    def achievement(self, value: float) -> float:
        """Normalized achievement ratio: 1.0 at goal, >1 when exceeded."""

    def satisfied(self, value: float) -> bool:
        """Whether the measured value meets the goal."""
        return self.achievement(value) >= 1.0


@dataclass(frozen=True)
class VelocityGoal(PerformanceGoal):
    """Query-velocity goal for OLAP classes (higher is better).

    Velocity is ``execution_time / response_time`` in (0, 1]; "a larger
    value means a shorter waiting time compared with execution time and
    hence better performance" (Section 3.1).
    """

    velocity: float
    metric: str = field(default="velocity", init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.velocity <= 1.0:
            raise ConfigurationError(
                "velocity goal must be in (0, 1], got {}".format(self.velocity)
            )

    @property
    def target(self) -> float:
        return self.velocity

    def achievement(self, value: float) -> float:
        return max(0.0, value) / self.velocity


@dataclass(frozen=True)
class ResponseTimeGoal(PerformanceGoal):
    """Average response-time goal for OLTP classes (lower is better).

    The achievement ratio is the *linear* deficit form ``2 - t/goal``:
    exactly 1.0 at goal, and — because the paper's OLTP performance model is
    linear in the class cost limit (Section 3.2) — linear in allocated
    timerons, so a deep violation stays exactly as urgent per timeron as a
    shallow one.  It goes negative for response times beyond twice the
    goal on purpose: clamping at zero would flatten the solver's gradient
    exactly when a class needs rescuing most.  (The naive ``goal/t`` ratio
    is hyperbolic: it makes badly-violating classes look progressively
    cheaper to ignore, inverting the paper's importance semantics.)
    """

    seconds: float
    metric: str = field(default="response_time", init=False)

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ConfigurationError(
                "response-time goal must be positive, got {}".format(self.seconds)
            )

    @property
    def target(self) -> float:
        return self.seconds

    def achievement(self, value: float) -> float:
        return 2.0 - max(value, _MIN_RESPONSE_TIME) / self.seconds


@dataclass(frozen=True)
class ServiceClass:
    """A workload class with a goal and a business importance level.

    "The importance level of a class is in effect only when the class
    violates its performance goals and is not synonymous with priority"
    (Section 4.3) — that semantics lives in the utility functions; the class
    itself is pure description.

    Parameters
    ----------
    name:
        Unique class name.
    kind:
        ``"olap"`` (directly controlled, velocity metric) or ``"oltp"``
        (indirectly controlled, response-time metric).
    goal:
        The class's SLO.
    importance:
        Business importance (higher = more important when violating).
    """

    name: str
    kind: str
    goal: PerformanceGoal
    importance: float

    def __post_init__(self) -> None:
        if self.kind not in ("olap", "oltp"):
            raise ConfigurationError(
                "service class {!r}: unknown kind {!r}".format(self.name, self.kind)
            )
        if self.importance <= 0:
            raise ConfigurationError(
                "service class {!r}: importance must be positive".format(self.name)
            )
        if self.kind == "oltp" and not isinstance(self.goal, ResponseTimeGoal):
            raise ConfigurationError(
                "OLTP class {!r} needs a ResponseTimeGoal".format(self.name)
            )
        if self.kind == "olap" and not isinstance(self.goal, VelocityGoal):
            raise ConfigurationError(
                "OLAP class {!r} needs a VelocityGoal".format(self.name)
            )

    @property
    def directly_controlled(self) -> bool:
        """OLAP classes are gated by the dispatcher; OLTP is not."""
        return self.kind == "olap"


def paper_classes(
    class1_goal: float = 0.40,
    class2_goal: float = 0.60,
    class3_goal: float = 0.25,
) -> "tuple[ServiceClass, ServiceClass, ServiceClass]":
    """The three service classes of the paper's Section 4 experiments."""
    return (
        ServiceClass("class1", "olap", VelocityGoal(class1_goal), importance=1),
        ServiceClass("class2", "olap", VelocityGoal(class2_goal), importance=2),
        ServiceClass("class3", "oltp", ResponseTimeGoal(class3_goal), importance=3),
    )


def find_class(classes, name: str) -> Optional[ServiceClass]:
    """Locate a class by name in an iterable of classes."""
    for service_class in classes:
        if service_class.name == name:
            return service_class
    return None
