"""The Monitor.

"The Monitor collects the information about the query from the DB2 QP
control tables, including the query identification, query cost and query
execution information.  The Monitor passes the query information to the
Classifier and to the Scheduling Planner" (Section 2).

Two measurement paths, one per metric (Section 3.1):

* **OLAP query velocity** — computed from queries of the class that
  completed within a sliding window, blended with the *instantaneous*
  velocity of queries still in the system (time-executing over
  time-in-system).  The blend matters because scaled-down OLAP queries
  complete only a few times per control interval: without the in-flight
  signal, a class whose queue is stalled would keep reporting its last happy
  measurement forever.
* **OLTP average response time** — the paper turns QP off for the OLTP
  class, so the Monitor samples the DB2 snapshot monitor at a fixed interval
  and averages the most recent response time of every OLTP client
  (Section 3.3).
"""

from __future__ import annotations

from typing import Callable, Dict, List, NamedTuple, Optional

from repro.config import MonitorConfig
from repro.core.service_class import ServiceClass
from repro.dbms.query import Query, QueryState
from repro.errors import SchedulingError
from repro.runtime import Clock, ExecutionEngine, TimerService
from repro.sim.stats import SlidingWindow


class ClassMeasurement(NamedTuple):
    """One per-class performance measurement handed to the planner."""

    class_name: str
    metric: str  # "velocity" or "response_time"
    value: float
    sample_count: int
    measured_at: float


class Monitor:
    """Collects per-class performance measurements for the planner."""

    #: Queries younger than this (seconds in system) are excluded from the
    #: in-flight velocity blend; their ratio is numerically meaningless.
    MIN_IN_FLIGHT_AGE = 5.0

    def __init__(
        self,
        sim: TimerService,
        engine: ExecutionEngine,
        classes: List[ServiceClass],
        config: MonitorConfig,
        clock: Optional[Clock] = None,
    ) -> None:
        config.validate()
        self.sim = sim
        #: Every time *read* (staleness bounds, window eviction, measurement
        #: stamps) goes through this clock; ``sim`` is used only to
        #: schedule.  Injectable so backends can separate the two.
        self.clock: Clock = clock if clock is not None else sim
        self.engine = engine
        self.config = config
        self._classes: Dict[str, ServiceClass] = {c.name: c for c in classes}
        self._open: Dict[int, Query] = {}
        # Completed-velocity samples per OLAP class: (finish_time, velocity).
        self._velocity_samples: Dict[str, SlidingWindow] = {
            c.name: SlidingWindow(capacity=512) for c in classes if c.kind == "olap"
        }
        # Snapshot-sampled average response time per OLTP class.
        self._rt_samples: Dict[str, SlidingWindow] = {
            c.name: SlidingWindow(capacity=256) for c in classes if c.kind == "oltp"
        }
        self._last_measurement: Dict[str, ClassMeasurement] = {}
        self._snapshots_taken = 0
        self._started = False
        self._forward: Optional[Callable[[Query], None]] = None
        engine.add_completion_listener(self._on_completion)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def set_forward(self, forward: Callable[[Query], None]) -> None:
        """Where intercepted queries go next (Classifier -> Dispatcher)."""
        self._forward = forward

    def on_intercepted(self, query: Query) -> None:
        """QP release-handler hook: record the arrival, pass it on."""
        self._open[query.query_id] = query
        if self._forward is None:
            raise SchedulingError("monitor has no forward target installed")
        self._forward(query)

    def start(self) -> None:
        """Begin periodic OLTP snapshot sampling."""
        if self._started:
            raise SchedulingError("monitor started twice")
        self._started = True
        if self._rt_samples:
            self.sim.schedule(
                self.config.snapshot_interval,
                self._take_snapshot,
                label="monitor:snapshot",
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def snapshots_taken(self) -> int:
        """Number of snapshot-sampling rounds performed."""
        return self._snapshots_taken

    @property
    def open_queries(self) -> int:
        """Intercepted queries not yet completed."""
        return len(self._open)

    def open_snapshot(self) -> List[Query]:
        """The intercepted-and-unfinished queries (a copy).

        Read-only view for the validation harness: every entry must be a
        submitted query that has not yet completed or been cancelled.
        """
        return list(self._open.values())

    def register_instruments(self, registry: "MetricsRegistry") -> None:  # noqa: F821
        """Publish the Monitor's live state into an instrument registry."""
        registry.gauge(
            "monitor_open_queries",
            description="Intercepted queries not yet completed",
            callback=lambda: len(self._open),
        )
        registry.counter(
            "monitor_snapshots_total",
            description="OLTP snapshot-sampling rounds performed",
            callback=lambda: self._snapshots_taken,
        )

    def retained_measurement(self, class_name: str) -> Optional[ClassMeasurement]:
        """The class's retained last measurement, without re-measuring.

        Unlike :meth:`measure` this performs no window eviction, no
        in-flight blending, and no fallback bookkeeping — it is a pure read
        used by the validation harness and diagnostics.
        """
        if class_name not in self._classes:
            raise SchedulingError("monitor knows no class {!r}".format(class_name))
        return self._last_measurement.get(class_name)

    # ------------------------------------------------------------------
    # Event handlers
    # ------------------------------------------------------------------
    def _on_completion(self, query: Query) -> None:
        self._open.pop(query.query_id, None)
        window = self._velocity_samples.get(query.class_name)
        if window is not None and query.kind == "olap":
            window.add(query.finish_time, query.velocity)

    def on_cancelled(self, query: Query) -> None:
        """Patroller cancel-listener hook: forget an abandoned query.

        Cancelled queries never complete through the engine, so purging here
        (rather than lazily inside velocity measurement) keeps ``_open``
        bounded even for deployments with no OLAP class, where velocity is
        never measured.
        """
        self._open.pop(query.query_id, None)

    def _take_snapshot(self) -> None:
        self._snapshots_taken += 1
        now = self.clock.now
        # Ignore connections idle for several sampling rounds: their "last
        # statement" predates the current workload intensity.
        staleness_cutoff = now - 3.0 * self.config.snapshot_interval
        for class_name in self._rt_samples:
            average = self.engine.snapshot_monitor.average_response_time(
                class_name=class_name, since=staleness_cutoff
            )
            if average is not None:
                self._rt_samples[class_name].add(now, average)
        self.sim.schedule(
            self.config.snapshot_interval,
            self._take_snapshot,
            label="monitor:snapshot",
        )

    # ------------------------------------------------------------------
    # Measurements
    # ------------------------------------------------------------------
    def measure(self, class_name: str) -> Optional[ClassMeasurement]:
        """Current measurement for a class (None if nothing observed yet).

        When the class's sample windows are empty the last measurement is
        returned as a fallback, but only while it is younger than
        ``config.max_measurement_age`` — an idle class must not keep feeding
        the solver an arbitrarily old value forever.
        """
        service_class = self._classes.get(class_name)
        if service_class is None:
            raise SchedulingError("monitor knows no class {!r}".format(class_name))
        if service_class.kind == "olap":
            measurement = self._measure_velocity(service_class)
        else:
            measurement = self._measure_response_time(service_class)
        if measurement is not None:
            self._last_measurement[class_name] = measurement
            return measurement
        retained = self._last_measurement.get(class_name)
        if retained is None:
            return None
        if self.clock.now - retained.measured_at > self.config.max_measurement_age:
            # Too stale to stand in for a live measurement; drop it so the
            # planner treats the class as unmeasured (at-goal) instead.
            del self._last_measurement[class_name]
            return None
        return retained

    def measure_all(self) -> Dict[str, ClassMeasurement]:
        """Measurements for every class that has one."""
        results = {}
        for name in self._classes:
            measurement = self.measure(name)
            if measurement is not None:
                results[name] = measurement
        return results

    def _measure_velocity(self, service_class: ServiceClass) -> Optional[ClassMeasurement]:
        now = self.clock.now
        window = self._velocity_samples[service_class.name]
        window.evict_older_than(now - self.config.velocity_window)
        values = window.values()
        # Blend in queries currently in the system (released or queued):
        # their velocity-so-far is the freshest signal of queueing pressure.
        for query in self._open.values():
            if query.class_name != service_class.name:
                continue
            if query.state == QueryState.CANCELLED:
                # Stale entry from an unwired cancellation path; it carries
                # no pressure signal (it will never execute).
                continue
            if query.submit_time is None:
                continue
            age = now - query.submit_time
            if age < self.MIN_IN_FLIGHT_AGE:
                continue
            if query.release_time is not None and query.state in (
                QueryState.RELEASED,
                QueryState.EXECUTING,
            ):
                executing = now - query.release_time
            else:
                executing = 0.0
            values.append(min(1.0, executing / age))
        if not values:
            return None
        return ClassMeasurement(
            class_name=service_class.name,
            metric="velocity",
            value=sum(values) / len(values),
            sample_count=len(values),
            measured_at=now,
        )

    def _measure_response_time(
        self, service_class: ServiceClass
    ) -> Optional[ClassMeasurement]:
        now = self.clock.now
        window = self._rt_samples[service_class.name]
        # Average the snapshot samples of (roughly) one control interval.
        window.evict_older_than(now - self.config.response_time_window)
        if len(window) == 0:
            return None
        return ClassMeasurement(
            class_name=service_class.name,
            metric="response_time",
            value=window.mean,
            sample_count=len(window),
            measured_at=now,
        )
