"""The Performance Solver.

"The Scheduling Planner consults with the Performance Solver at regular
intervals to determine an optimal scheduling plan" (Section 2): maximise the
summed utility of predicted per-class achievement, subject to the class cost
limits summing to the system cost limit.

The search space is the allocation simplex discretised at a timeron
granularity.  Utilities are non-decreasing in a class's own limit (more
budget never hurts a class), so the optimum always spends the whole system
limit; we therefore enumerate full allocations only.  For up to three
classes (the paper's experiment) exhaustive enumeration is a few hundred
points; beyond that a greedy unit-reallocation ascent is used.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.core.models import OLAPVelocityModel, OLTPResponseTimeModel
from repro.core.plan import SchedulingPlan
from repro.core.service_class import ServiceClass
from repro.core.utility import UtilityFunction
from repro.errors import SchedulingError

#: Class counts up to which the solver enumerates the simplex exhaustively.
_EXHAUSTIVE_MAX_CLASSES = 3


class ClassStatus:
    """Solver input for one class: where it is now."""

    __slots__ = ("service_class", "current_limit", "current_value")

    def __init__(
        self,
        service_class: ServiceClass,
        current_limit: float,
        current_value: Optional[float],
    ) -> None:
        self.service_class = service_class
        self.current_limit = current_limit
        # With no measurement yet, assume the class sits exactly at goal:
        # the solver then has no reason to move resources toward or away.
        if current_value is None:
            current_value = service_class.goal.target
        self.current_value = current_value


class PerformanceSolver:
    """Utility-maximising allocator of the system cost limit."""

    def __init__(
        self,
        utility: UtilityFunction,
        oltp_model: OLTPResponseTimeModel,
        system_cost_limit: float,
        grid_timerons: float = 1000.0,
        min_class_limit: float = 1000.0,
        oltp_target_margin: float = 1.0,
    ) -> None:
        if grid_timerons <= 0:
            raise SchedulingError("grid_timerons must be positive")
        if min_class_limit < 0:
            raise SchedulingError("min_class_limit must be non-negative")
        if system_cost_limit <= 0:
            raise SchedulingError("system_cost_limit must be positive")
        if not 0 < oltp_target_margin <= 1:
            raise SchedulingError("oltp_target_margin must be in (0, 1]")
        self.utility = utility
        self.oltp_model = oltp_model
        self.system_cost_limit = system_cost_limit
        self.grid = grid_timerons
        self.min_class_limit = min_class_limit
        self.oltp_target_margin = oltp_target_margin
        self._solve_calls = 0
        self._evaluations = 0
        self._last_score: Optional[float] = None
        self._last_evaluations = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def solve_calls(self) -> int:
        """Number of plans produced."""
        return self._solve_calls

    @property
    def evaluations(self) -> int:
        """Candidate allocations evaluated across all solves."""
        return self._evaluations

    @property
    def last_score(self) -> Optional[float]:
        """Objective score of the most recent solve's chosen allocation.

        None before the first solve, and when every candidate scored NaN
        (the fallback allocation was used unscored).
        """
        return self._last_score

    @property
    def last_evaluations(self) -> int:
        """Candidate allocations evaluated by the most recent solve."""
        return self._last_evaluations

    def register_instruments(self, registry: "MetricsRegistry") -> None:  # noqa: F821
        """Publish the solver's search counters into a registry."""
        registry.counter(
            "solver_solve_calls_total",
            description="Plans produced by the Performance Solver",
            callback=lambda: self._solve_calls,
        )
        registry.counter(
            "solver_evaluations_total",
            description="Candidate allocations evaluated across all solves",
            callback=lambda: self._evaluations,
        )
        registry.gauge(
            "solver_last_score",
            description="Objective score of the most recent solve",
            callback=lambda: self._last_score if self._last_score is not None else 0.0,
        )

    # ------------------------------------------------------------------
    # Prediction and objective
    # ------------------------------------------------------------------
    def predict_value(self, status: ClassStatus, new_limit: float) -> float:
        """Predicted metric value for a class under a candidate limit."""
        service_class = status.service_class
        if service_class.kind == "olap":
            return OLAPVelocityModel.predict(
                status.current_value, status.current_limit, new_limit
            )
        return self.oltp_model.predict(
            status.current_value, status.current_limit, new_limit
        )

    def class_utility(self, status: ClassStatus, new_limit: float) -> float:
        """Utility contribution of one class under a candidate limit.

        The OLTP class is scored against ``goal * oltp_target_margin`` so
        the controller aims slightly below its SLO (control headroom);
        reported attainment elsewhere always uses the true goal.
        """
        predicted = self.predict_value(status, new_limit)
        service_class = status.service_class
        if service_class.kind == "oltp" and self.oltp_target_margin < 1.0:
            # Equivalent to achievement against a margin-scaled target
            # (unclamped, like ResponseTimeGoal.achievement).
            target = service_class.goal.target * self.oltp_target_margin
            achievement = 2.0 - predicted / target
        else:
            achievement = service_class.goal.achievement(predicted)
        return self.utility.value(achievement, service_class.importance)

    def objective(self, statuses: Sequence[ClassStatus], limits: Sequence[float]) -> float:
        """Total utility of a full candidate allocation."""
        self._evaluations += 1
        return sum(
            self.class_utility(status, limit)
            for status, limit in zip(statuses, limits)
        )

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self, statuses: Sequence[ClassStatus], now: float = 0.0) -> SchedulingPlan:
        """Produce the utility-optimal plan for the given class statuses."""
        if not statuses:
            raise SchedulingError("solver needs at least one class status")
        self._solve_calls += 1
        names = [s.service_class.name for s in statuses]
        if len(set(names)) != len(names):
            raise SchedulingError("duplicate class names in solver input")
        min_units = max(0, int(round(self.min_class_limit / self.grid)))
        total_units = int(self.system_cost_limit // self.grid)
        if total_units < min_units * len(statuses):
            raise SchedulingError(
                "system cost limit {} cannot give {} classes {} timerons each".format(
                    self.system_cost_limit, len(statuses), self.min_class_limit
                )
            )
        evaluations_before = self._evaluations
        if len(statuses) <= _EXHAUSTIVE_MAX_CLASSES:
            best_units, best_score = self._solve_exhaustive(
                statuses, total_units, min_units
            )
        else:
            best_units, best_score = self._solve_greedy(
                statuses, total_units, min_units
            )
        self._last_evaluations = self._evaluations - evaluations_before
        self._last_score = None if math.isnan(best_score) else best_score
        if len(best_units) != len(names):
            raise SchedulingError(
                "solver produced {} limits for {} classes".format(
                    len(best_units), len(names)
                )
            )
        limits = {
            name: units * self.grid for name, units in zip(names, best_units)
        }
        return SchedulingPlan(limits, self.system_cost_limit, created_at=now)

    @staticmethod
    def _fallback_units(count: int, total_units: int, min_units: int) -> Tuple[int, ...]:
        """An even full allocation, used when no candidate scores finitely."""
        free_units = total_units - min_units * count
        base, remainder = divmod(free_units, count)
        return tuple(
            min_units + base + (1 if index < remainder else 0)
            for index in range(count)
        )

    def _solve_exhaustive(
        self,
        statuses: Sequence[ClassStatus],
        total_units: int,
        min_units: int,
    ) -> Tuple[Tuple[int, ...], float]:
        free_units = total_units - min_units * len(statuses)
        # Seed with the even split so a degenerate objective (every score
        # NaN, e.g. a NaN measurement reaching the utility) still yields a
        # complete allocation instead of the empty tuple.
        best_units = self._fallback_units(len(statuses), total_units, min_units)
        best_score = float("nan")
        for combo in _compositions(free_units, len(statuses)):
            units = tuple(min_units + c for c in combo)
            limits = [u * self.grid for u in units]
            score = self.objective(statuses, limits)
            if math.isnan(score):
                continue
            if math.isnan(best_score) or score > best_score:
                best_units, best_score = units, score
        return best_units, best_score

    def _solve_greedy(
        self,
        statuses: Sequence[ClassStatus],
        total_units: int,
        min_units: int,
    ) -> Tuple[Tuple[int, ...], float]:
        count = len(statuses)
        # Start proportional to current limits (projected onto the grid).
        current_total = sum(max(s.current_limit, 1.0) for s in statuses)
        units: List[int] = []
        for status in statuses:
            share = max(status.current_limit, 1.0) / current_total
            units.append(max(min_units, int(round(share * total_units))))
        # Repair the sum.
        while sum(units) > total_units:
            index = max(range(count), key=lambda i: units[i])
            if units[index] <= min_units:
                break
            units[index] -= 1
        while sum(units) < total_units:
            index = min(range(count), key=lambda i: units[i])
            units[index] += 1
        # Hill-climb single-unit transfers until no move improves.
        best_score = self.objective(statuses, [u * self.grid for u in units])
        improved = True
        while improved:
            improved = False
            best_move: Optional[Tuple[float, int, int]] = None
            for donor in range(count):
                if units[donor] <= min_units:
                    continue
                for recipient in range(count):
                    if recipient == donor:
                        continue
                    units[donor] -= 1
                    units[recipient] += 1
                    score = self.objective(statuses, [u * self.grid for u in units])
                    units[donor] += 1
                    units[recipient] -= 1
                    if math.isnan(score):
                        continue
                    improves = math.isnan(best_score) or score > best_score
                    if improves and (best_move is None or score > best_move[0]):
                        best_move = (score, donor, recipient)
            if best_move is not None:
                _, donor, recipient = best_move
                units[donor] -= 1
                units[recipient] += 1
                best_score = best_move[0]
                improved = True
        return tuple(units), best_score


def _compositions(total: int, parts: int):
    """Yield every tuple of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail
