"""The Performance Solver.

"The Scheduling Planner consults with the Performance Solver at regular
intervals to determine an optimal scheduling plan" (Section 2): maximise the
summed utility of predicted per-class achievement, subject to the class cost
limits summing to the system cost limit.

The search space is the allocation simplex discretised at a timeron
granularity.  Utilities are non-decreasing in a class's own limit (more
budget never hurts a class), so the optimum always spends the whole system
limit; we therefore enumerate full allocations only.  For up to three
classes (the paper's experiment) exhaustive enumeration is a few hundred
points; beyond that a greedy unit-reallocation ascent is used.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.modeling import (
    MixSnapshot,
    OLTPResponseTimeModel,
    PaperAnalyticModel,
    PerformanceModel,
)
from repro.core.plan import SchedulingPlan
from repro.core.service_class import ServiceClass
from repro.core.utility import UtilityFunction
from repro.errors import SchedulingError

#: Class counts up to which the solver enumerates the simplex exhaustively.
_EXHAUSTIVE_MAX_CLASSES = 3

#: Solved-plan cache entries kept before the cache is dropped wholesale.
#: Statuses repeat only while measurements are stable, so the cache stays
#: tiny in practice; the cap merely bounds pathological churn.
_SOLUTION_CACHE_MAX = 64


class ClassStatus:
    """Solver input for one class: where it is now."""

    __slots__ = ("service_class", "current_limit", "current_value")

    def __init__(
        self,
        service_class: ServiceClass,
        current_limit: float,
        current_value: Optional[float],
    ) -> None:
        self.service_class = service_class
        self.current_limit = current_limit
        # With no measurement yet, assume the class sits exactly at goal:
        # the solver then has no reason to move resources toward or away.
        if current_value is None:
            current_value = service_class.goal.target
        self.current_value = current_value


class PerformanceSolver:
    """Utility-maximising allocator of the system cost limit."""

    def __init__(
        self,
        utility: UtilityFunction,
        oltp_model: Optional[OLTPResponseTimeModel] = None,
        system_cost_limit: float = 0.0,
        grid_timerons: float = 1000.0,
        min_class_limit: float = 1000.0,
        oltp_target_margin: float = 1.0,
        model: Optional[PerformanceModel] = None,
    ) -> None:
        if grid_timerons <= 0:
            raise SchedulingError("grid_timerons must be positive")
        if min_class_limit < 0:
            raise SchedulingError("min_class_limit must be non-negative")
        if system_cost_limit <= 0:
            raise SchedulingError("system_cost_limit must be positive")
        if not 0 < oltp_target_margin <= 1:
            raise SchedulingError("oltp_target_margin must be in (0, 1]")
        if model is not None and oltp_model is not None:
            raise SchedulingError(
                "pass either a PerformanceModel or an oltp_model, not both"
            )
        if model is None:
            # Back-compat construction: an OLTP model (or nothing) wraps
            # into the paper's analytic pair, the bit-identical default.
            model = PaperAnalyticModel(oltp_model=oltp_model)
        self.model: PerformanceModel = model
        self.utility = utility
        self.system_cost_limit = system_cost_limit
        self.grid = grid_timerons
        self.min_class_limit = min_class_limit
        self.oltp_target_margin = oltp_target_margin
        self._solve_calls = 0
        self._evaluations = 0
        self._last_score: Optional[float] = None
        self._last_evaluations = 0
        # Solved (units, score) keyed by the full solver input: reused when
        # the class statuses and the OLTP model are unchanged between
        # control intervals.
        self._solution_cache: Dict[tuple, Tuple[Tuple[int, ...], float]] = {}
        self._cache_hits = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def solve_calls(self) -> int:
        """Number of plans produced."""
        return self._solve_calls

    @property
    def evaluations(self) -> int:
        """Candidate allocations evaluated across all solves."""
        return self._evaluations

    @property
    def last_score(self) -> Optional[float]:
        """Objective score of the most recent solve's chosen allocation.

        None before the first solve, and when every candidate scored NaN
        (the fallback allocation was used unscored).
        """
        return self._last_score

    @property
    def last_evaluations(self) -> int:
        """Candidate allocations evaluated by the most recent solve.

        Zero when the solve was served from the solution cache.
        """
        return self._last_evaluations

    @property
    def cache_hits(self) -> int:
        """Solves answered from the solution cache (inputs unchanged)."""
        return self._cache_hits

    @property
    def oltp_model(self) -> Optional[OLTPResponseTimeModel]:
        """The analytic OLTP regression, when the model keeps one.

        Back-compat accessor: the paper model exposes its
        :class:`OLTPResponseTimeModel` as ``.oltp``; learned/oracle
        models have no scalar-slope regression and yield ``None``.
        """
        return getattr(self.model, "oltp", None)

    def set_system_cost_limit(self, limit: float) -> None:
        """Retarget the solver to a new global budget.

        The solution cache is keyed only by class statuses and model
        state (the budget is normally fixed per instance), so changing
        the budget must drop it — a cached plan for the old budget would
        otherwise be replayed under the new one.  The sharded control
        plane's interval rebalancing re-splits the global limit across
        shard solvers through this.
        """
        if limit <= 0:
            raise SchedulingError("system_cost_limit must be positive")
        if limit != self.system_cost_limit:
            self.system_cost_limit = limit
            self._solution_cache.clear()

    def register_instruments(self, registry: "MetricsRegistry") -> None:  # noqa: F821
        """Publish the solver's search counters into a registry."""
        registry.counter(
            "solver_solve_calls_total",
            description="Plans produced by the Performance Solver",
            callback=lambda: self._solve_calls,
        )
        registry.counter(
            "solver_evaluations_total",
            description="Candidate allocations evaluated across all solves",
            callback=lambda: self._evaluations,
        )
        registry.gauge(
            "solver_last_score",
            description="Objective score of the most recent solve",
            callback=lambda: self._last_score if self._last_score is not None else 0.0,
        )
        registry.counter(
            "solver_cache_hits_total",
            description="Solves answered from the solution cache",
            callback=lambda: self._cache_hits,
        )

    # ------------------------------------------------------------------
    # Prediction and objective
    # ------------------------------------------------------------------
    def predict_value(
        self,
        status: ClassStatus,
        new_limit: float,
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        """Predicted metric value for a class under a candidate limit."""
        return self.model.predict(status, new_limit, mix)

    def class_utility(
        self,
        status: ClassStatus,
        new_limit: float,
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        """Utility contribution of one class under a candidate limit.

        The OLTP class is scored against ``goal * oltp_target_margin`` so
        the controller aims slightly below its SLO (control headroom);
        reported attainment elsewhere always uses the true goal.
        """
        predicted = self.predict_value(status, new_limit, mix)
        service_class = status.service_class
        if service_class.kind == "oltp" and self.oltp_target_margin < 1.0:
            # Equivalent to achievement against a margin-scaled target
            # (unclamped, like ResponseTimeGoal.achievement).
            target = service_class.goal.target * self.oltp_target_margin
            achievement = 2.0 - predicted / target
        else:
            achievement = service_class.goal.achievement(predicted)
        return self.utility.value(achievement, service_class.importance)

    def objective(
        self,
        statuses: Sequence[ClassStatus],
        limits: Sequence[float],
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        """Total utility of a full candidate allocation."""
        self._evaluations += 1
        return sum(
            self.class_utility(status, limit, mix)
            for status, limit in zip(statuses, limits)
        )

    def _memo_objective(
        self,
        statuses: Sequence[ClassStatus],
        memos: List[Dict[int, float]],
        units: Sequence[int],
        mix: Optional[MixSnapshot] = None,
    ) -> float:
        """:meth:`objective` with per-class utilities memoized by unit count.

        The objective is separable — a sum of per-class utilities, each a
        function of that class's limit alone — so within one solve a class
        utility at a given unit count never changes and can be computed
        once.  The candidate score is still accumulated left-to-right in
        status order, exactly as :meth:`objective`'s ``sum`` does, so
        scores (and therefore tie-breaks and chosen plans) are bit-identical
        to the unmemoized search.
        """
        self._evaluations += 1
        score = 0.0
        grid = self.grid
        for index, count in enumerate(units):
            memo = memos[index]
            utility = memo.get(count)
            if utility is None:
                utility = self.class_utility(statuses[index], count * grid, mix)
                memo[count] = utility
            score += utility
        return score

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self,
        statuses: Sequence[ClassStatus],
        now: float = 0.0,
        mix: Optional[MixSnapshot] = None,
    ) -> SchedulingPlan:
        """Produce the utility-optimal plan for the given class statuses."""
        if not statuses:
            raise SchedulingError("solver needs at least one class status")
        self._solve_calls += 1
        names = [s.service_class.name for s in statuses]
        if len(set(names)) != len(names):
            raise SchedulingError("duplicate class names in solver input")
        min_units = max(0, int(round(self.min_class_limit / self.grid)))
        total_units = int(self.system_cost_limit // self.grid)
        if total_units < min_units * len(statuses):
            raise SchedulingError(
                "system cost limit {} cannot give {} classes {} timerons each".format(
                    self.system_cost_limit, len(statuses), self.min_class_limit
                )
            )
        cache_key = self._cache_key(statuses, mix)
        cached = self._solution_cache.get(cache_key)
        if cached is not None:
            best_units, best_score = cached
            self._cache_hits += 1
            self._last_evaluations = 0
        else:
            evaluations_before = self._evaluations
            if len(statuses) <= _EXHAUSTIVE_MAX_CLASSES:
                best_units, best_score = self._solve_exhaustive(
                    statuses, total_units, min_units, mix
                )
            else:
                best_units, best_score = self._solve_greedy(
                    statuses, total_units, min_units, mix
                )
            self._last_evaluations = self._evaluations - evaluations_before
            if len(self._solution_cache) >= _SOLUTION_CACHE_MAX:
                self._solution_cache.clear()
            self._solution_cache[cache_key] = (best_units, best_score)
        self._last_score = None if math.isnan(best_score) else best_score
        if len(best_units) != len(names):
            raise SchedulingError(
                "solver produced {} limits for {} classes".format(
                    len(best_units), len(names)
                )
            )
        limits = {
            name: units * self.grid for name, units in zip(names, best_units)
        }
        return SchedulingPlan(limits, self.system_cost_limit, created_at=now)

    def _cache_key(
        self, statuses: Sequence[ClassStatus], mix: Optional[MixSnapshot] = None
    ) -> tuple:
        """Hashable fingerprint of everything a solve's outcome depends on.

        Covers each class's identity, goal, importance and measured state,
        plus the model's :meth:`~repro.core.modeling.PerformanceModel.fingerprint`
        — it changes whenever learned state shifts predictions, versioning
        the model without hashing its full internals.  Mix-aware models
        additionally contribute a mix fingerprint (mix-blind models return
        None there, preserving their cache behaviour).  The solver's own
        parameters (grid, limits, utility shape) are fixed per instance and
        need no key component.
        """
        parts = []
        for status in statuses:
            service_class = status.service_class
            goal = service_class.goal
            parts.append(
                (
                    service_class.name,
                    service_class.kind,
                    type(goal).__name__,
                    goal.target,
                    service_class.importance,
                    status.current_limit,
                    status.current_value,
                )
            )
        return (
            tuple(parts),
            self.model.fingerprint(),
            self.model.mix_fingerprint(mix),
        )

    @staticmethod
    def _fallback_units(count: int, total_units: int, min_units: int) -> Tuple[int, ...]:
        """An even full allocation, used when no candidate scores finitely."""
        free_units = total_units - min_units * count
        base, remainder = divmod(free_units, count)
        return tuple(
            min_units + base + (1 if index < remainder else 0)
            for index in range(count)
        )

    def _solve_exhaustive(
        self,
        statuses: Sequence[ClassStatus],
        total_units: int,
        min_units: int,
        mix: Optional[MixSnapshot] = None,
    ) -> Tuple[Tuple[int, ...], float]:
        free_units = total_units - min_units * len(statuses)
        # Seed with the even split so a degenerate objective (every score
        # NaN, e.g. a NaN measurement reaching the utility) still yields a
        # complete allocation instead of the empty tuple.
        best_units = self._fallback_units(len(statuses), total_units, min_units)
        best_score = float("nan")
        memos: List[Dict[int, float]] = [{} for _ in statuses]
        for combo in _compositions(free_units, len(statuses)):
            units = tuple(min_units + c for c in combo)
            score = self._memo_objective(statuses, memos, units, mix)
            if math.isnan(score):
                continue
            if math.isnan(best_score) or score > best_score:
                best_units, best_score = units, score
        return best_units, best_score

    def _solve_greedy(
        self,
        statuses: Sequence[ClassStatus],
        total_units: int,
        min_units: int,
        mix: Optional[MixSnapshot] = None,
    ) -> Tuple[Tuple[int, ...], float]:
        count = len(statuses)
        # Start proportional to current limits (projected onto the grid).
        current_total = sum(max(s.current_limit, 1.0) for s in statuses)
        units: List[int] = []
        for status in statuses:
            share = max(status.current_limit, 1.0) / current_total
            units.append(max(min_units, int(round(share * total_units))))
        # Repair the sum.
        while sum(units) > total_units:
            index = max(range(count), key=lambda i: units[i])
            if units[index] <= min_units:
                break
            units[index] -= 1
        while sum(units) < total_units:
            index = min(range(count), key=lambda i: units[i])
            units[index] += 1
        # Hill-climb single-unit transfers until no move improves.  A move
        # only changes the donor's and recipient's unit counts, so with the
        # per-class memo every candidate rescore costs two utility lookups
        # (new counts) plus the cheap status-order re-sum; the model and
        # utility evaluations that used to dominate are computed once per
        # distinct (class, unit count) pair.
        memos: List[Dict[int, float]] = [{} for _ in statuses]
        best_score = self._memo_objective(statuses, memos, units, mix)
        improved = True
        while improved:
            improved = False
            best_move: Optional[Tuple[float, int, int]] = None
            for donor in range(count):
                if units[donor] <= min_units:
                    continue
                for recipient in range(count):
                    if recipient == donor:
                        continue
                    units[donor] -= 1
                    units[recipient] += 1
                    score = self._memo_objective(statuses, memos, units, mix)
                    units[donor] += 1
                    units[recipient] -= 1
                    if math.isnan(score):
                        continue
                    improves = math.isnan(best_score) or score > best_score
                    if improves and (best_move is None or score > best_move[0]):
                        best_move = (score, donor, recipient)
            if best_move is not None:
                _, donor, recipient = best_move
                units[donor] -= 1
                units[recipient] += 1
                best_score = best_move[0]
                improved = True
        return tuple(units), best_score


def _compositions(total: int, parts: int):
    """Yield every tuple of ``parts`` non-negative ints summing to ``total``."""
    if parts == 1:
        yield (total,)
        return
    for head in range(total + 1):
        for tail in _compositions(total - head, parts - 1):
            yield (head,) + tail
