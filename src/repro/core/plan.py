"""Scheduling plans.

"A scheduling plan is ... expressed as a set of class cost limits, which
determine the number of queries of each class that can execute at any one
time. ... The sum of all class cost limits must not exceed the system cost
limit" (Section 2).  :class:`SchedulingPlan` is that immutable set of limits
plus the invariant checks.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import SchedulingError

#: Slack tolerated when checking the sum-of-limits invariant (float safety).
_SUM_TOLERANCE = 1e-6


class SchedulingPlan:
    """Immutable mapping of service-class name to class cost limit."""

    __slots__ = ("_limits", "system_cost_limit", "created_at")

    def __init__(
        self,
        limits: Mapping[str, float],
        system_cost_limit: float,
        created_at: float = 0.0,
    ) -> None:
        if system_cost_limit <= 0:
            raise SchedulingError("system cost limit must be positive")
        if not limits:
            raise SchedulingError("a scheduling plan needs at least one class")
        for name, limit in limits.items():
            if limit < 0:
                raise SchedulingError(
                    "class {!r} has negative cost limit {}".format(name, limit)
                )
        total = sum(limits.values())
        if total > system_cost_limit * (1 + _SUM_TOLERANCE):
            raise SchedulingError(
                "class cost limits sum to {:.1f} > system cost limit {:.1f}".format(
                    total, system_cost_limit
                )
            )
        self._limits: Dict[str, float] = dict(limits)
        self.system_cost_limit = float(system_cost_limit)
        self.created_at = float(created_at)

    # ------------------------------------------------------------------
    # Mapping-ish interface
    # ------------------------------------------------------------------
    def limit(self, class_name: str) -> float:
        """The cost limit of a class; raises SchedulingError if unknown."""
        try:
            return self._limits[class_name]
        except KeyError:
            raise SchedulingError(
                "plan has no cost limit for class {!r}".format(class_name)
            )

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._limits

    def __iter__(self) -> Iterator[str]:
        return iter(self._limits)

    def __len__(self) -> int:
        return len(self._limits)

    def items(self) -> Iterator[Tuple[str, float]]:
        """(class, limit) pairs."""
        return iter(self._limits.items())

    def as_dict(self) -> Dict[str, float]:
        """A mutable copy of the limits."""
        return dict(self._limits)

    @property
    def total_allocated(self) -> float:
        """Sum of all class cost limits."""
        return sum(self._limits.values())

    @property
    def slack(self) -> float:
        """Unallocated timerons under the system cost limit."""
        return self.system_cost_limit - self.total_allocated

    # ------------------------------------------------------------------
    # Derivation
    # ------------------------------------------------------------------
    def replace(
        self, created_at: Optional[float] = None, **limits: float
    ) -> "SchedulingPlan":
        """A new plan with some class limits replaced."""
        new_limits = dict(self._limits)
        for name, limit in limits.items():
            if name not in new_limits:
                raise SchedulingError("plan has no class {!r} to replace".format(name))
            new_limits[name] = limit
        return SchedulingPlan(
            new_limits,
            self.system_cost_limit,
            self.created_at if created_at is None else created_at,
        )

    @staticmethod
    def even_split(
        class_names,
        system_cost_limit: float,
        created_at: float = 0.0,
    ) -> "SchedulingPlan":
        """An initial plan dividing the system limit equally."""
        names = list(class_names)
        if not names:
            raise SchedulingError("even_split needs at least one class")
        share = system_cost_limit / len(names)
        return SchedulingPlan(
            {name: share for name in names}, system_cost_limit, created_at
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SchedulingPlan):
            return NotImplemented
        return (
            self._limits == other._limits
            and self.system_cost_limit == other.system_cost_limit
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(
            "{}={:.0f}".format(name, limit) for name, limit in sorted(self._limits.items())
        )
        return "SchedulingPlan({}, system={:.0f})".format(body, self.system_cost_limit)
