"""Utility functions over goal achievement.

"We use utility functions to capture the goals and importance of a workload
and then view the development of a scheduling plan as an optimization
problem involving the utility functions" (Section 2).  The paper's observed
semantics (Section 4.3): importance matters *only while a class violates its
goal* — a satisfied class, however important, releases resources to classes
in violation.

Every utility maps an *achievement ratio* ``r`` (1.0 exactly at goal, see
:mod:`repro.core.service_class`) and an importance ``w`` to a scalar.  The
shared contract that produces the paper's behaviour:

* below goal, utility grows with slope proportional to importance — the
  solver fixes violations in importance order;
* above goal, extra achievement earns only a small importance-independent
  bonus (capped), so surplus resources are spread rather than hoarded.

Three families are provided; the piecewise-linear one is the default, the
others exist for the utility-family ablation bench.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError

#: Achievement beyond which extra performance earns nothing at all.
_SURPLUS_CAP = 2.0

#: Default base of the exponential importance weighting (see below).
DEFAULT_IMPORTANCE_BASE = 4.0


def effective_weight(importance: float, base: float) -> float:
    """Below-goal weight of a class: ``base ** (importance - 1)``.

    The paper ranks *violations* by business importance: a violating
    important class must win resources from less important classes even
    when those are also below goal.  Linear weights cannot guarantee that —
    a class's marginal utility per timeron also depends on how efficiently
    timerons move its own metric — so importance enters exponentially.
    ``base = 1`` degrades to plain linear weighting.
    """
    if base <= 1.0:
        return importance
    return base ** (importance - 1.0)


class UtilityFunction(ABC):
    """Maps (achievement ratio, importance) to a utility scalar."""

    @abstractmethod
    def value(self, achievement: float, importance: float) -> float:
        """Utility of a class at ``achievement`` with ``importance``."""

    def __call__(self, achievement: float, importance: float) -> float:
        return self.value(achievement, importance)


class PiecewiseLinearUtility(UtilityFunction):
    """Default family: importance-sloped below goal, flat-ish above.

    ``u(r, w) = W * r``                          for r < 1
    ``u(r, w) = W + surplus_slope * (min(r, cap) - 1)``  for r >= 1

    with ``W = effective_weight(importance, importance_base)``.
    """

    def __init__(
        self,
        surplus_slope: float = 0.05,
        importance_base: float = DEFAULT_IMPORTANCE_BASE,
    ) -> None:
        if surplus_slope < 0:
            raise ConfigurationError("surplus_slope must be non-negative")
        if importance_base < 1:
            raise ConfigurationError("importance_base must be >= 1")
        self.surplus_slope = surplus_slope
        self.importance_base = importance_base

    def value(self, achievement: float, importance: float) -> float:
        # Deliberately unclamped below goal: a deeply violating class must
        # keep a slope, or the solver loses its gradient toward rescue.
        r = achievement
        weight = effective_weight(importance, self.importance_base)
        if r < 1.0:
            return weight * r
        return weight + self.surplus_slope * (min(r, _SURPLUS_CAP) - 1.0)


class SigmoidUtility(UtilityFunction):
    """Smooth family: importance-weighted sigmoid *below* goal.

    ``u = W * sigmoid(k * (min(r, 1) - 1))`` — smooth diminishing urgency as
    a violation closes — plus an importance-free ramp ``epsilon * (r - 1)``
    above goal (capped), preserving the shared contract that importance
    stops mattering once the goal is met.
    """

    def __init__(
        self,
        steepness: float = 4.0,
        epsilon: float = 0.01,
        importance_base: float = DEFAULT_IMPORTANCE_BASE,
    ) -> None:
        if steepness <= 0:
            raise ConfigurationError("steepness must be positive")
        if epsilon < 0:
            raise ConfigurationError("epsilon must be non-negative")
        if importance_base < 1:
            raise ConfigurationError("importance_base must be >= 1")
        self.steepness = steepness
        self.epsilon = epsilon
        self.importance_base = importance_base

    def value(self, achievement: float, importance: float) -> float:
        r = achievement
        weight = effective_weight(importance, self.importance_base)
        below = min(r, 1.0)
        # Clamp the exponent so absurd violations cannot overflow exp().
        exponent = max(-60.0, -self.steepness * (below - 1.0))
        sigmoid = 1.0 / (1.0 + math.exp(exponent))
        surplus = self.epsilon * (min(r, _SURPLUS_CAP) - 1.0) if r > 1.0 else 0.0
        return weight * sigmoid + surplus

class StepUtility(UtilityFunction):
    """All-or-nothing family: the full importance on meeting the goal.

    A small linear term below goal keeps the solver's search surface from
    being totally flat (otherwise every failing allocation looks alike).
    """

    def __init__(
        self,
        ramp: float = 0.10,
        importance_base: float = DEFAULT_IMPORTANCE_BASE,
    ) -> None:
        if ramp < 0:
            raise ConfigurationError("ramp must be non-negative")
        if importance_base < 1:
            raise ConfigurationError("importance_base must be >= 1")
        self.ramp = ramp
        self.importance_base = importance_base

    def value(self, achievement: float, importance: float) -> float:
        r = achievement
        weight = effective_weight(importance, self.importance_base)
        if r >= 1.0:
            return weight + self.ramp * (min(r, _SURPLUS_CAP) - 1.0)
        return weight * self.ramp * r


def make_utility(
    name: str,
    surplus_slope: float = 0.05,
    importance_base: float = DEFAULT_IMPORTANCE_BASE,
) -> UtilityFunction:
    """Factory keyed by the :class:`~repro.config.PlannerConfig` name."""
    if name == "piecewise":
        return PiecewiseLinearUtility(
            surplus_slope=surplus_slope, importance_base=importance_base
        )
    if name == "sigmoid":
        return SigmoidUtility(importance_base=importance_base)
    if name == "step":
        return StepUtility(importance_base=importance_base)
    raise ConfigurationError("unknown utility family {!r}".format(name))
