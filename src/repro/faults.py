"""Fault injection for the control loop.

:class:`FaultInjector` perturbs a running :class:`SimulationBundle` in two
deliberately different ways:

* **Behavioral faults** are legitimate-but-hostile workload events driven
  through the public APIs — cancel storms, arrival bursts, release-latency
  jitter.  A correct controller must absorb these with its invariants
  intact; tests use them to show the accounting fixes hold under stress.
* **State corruptions** are white-box mutations of component internals —
  a leaked dispatcher slot, an undersumming plan, a completed query stuck
  in the monitor's open set.  Each models a specific historical bug class
  and exists to prove the matching invariant actually fires; reaching into
  private state is the point, not an accident.

Every injection is appended to :attr:`FaultInjector.injected` so tests can
correlate violations with their seeded faults.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

from repro.dbms.query import Query, QueryState
from repro.errors import SchedulingError

#: Behavioral fault kinds a :class:`ScheduledFault` may name.  These drive
#: public APIs only, so a correct controller must absorb them with its
#: invariants intact; white-box corruptions are deliberately not
#: schedulable from data (they exist to *trip* invariants).
BEHAVIORAL_FAULTS = (
    "cancel_storm",
    "arrival_burst",
    "release_latency_jitter",
    "drop_completions",
)


@dataclass(frozen=True)
class ScheduledFault:
    """A picklable, data-driven description of one behavioral fault.

    ``kind`` names a behavioral :class:`FaultInjector` method (see
    :data:`BEHAVIORAL_FAULTS`); ``at`` is the injection time in seconds
    from the start of the run; ``params`` are the method's keyword
    arguments (``class_name``, ``count``, ...).  Scenario files compile
    their ``faults:`` section into these, and
    :meth:`FaultInjector.apply` turns one back into a live injection.
    """

    kind: str
    at: float = 0.0
    params: Mapping = field(default_factory=dict)

    def validate(self) -> None:
        if self.kind not in BEHAVIORAL_FAULTS:
            raise SchedulingError(
                "unknown behavioral fault {!r}; expected one of {}".format(
                    self.kind, BEHAVIORAL_FAULTS
                )
            )
        if self.at < 0:
            raise SchedulingError(
                "fault {!r}: injection time must be >= 0, got {}".format(
                    self.kind, self.at
                )
            )


class FaultInjector:
    """Injects faults into an assembled experiment bundle.

    Behavioral faults accept a ``delay`` (seconds from now; 0 applies
    immediately), so storms and bursts can be planted before ``run()``.
    State corruptions always apply immediately — they model drift that has
    already happened.
    """

    def __init__(self, bundle: "SimulationBundle") -> None:  # noqa: F821
        self.bundle = bundle
        self.sim = bundle.sim
        self.engine = bundle.engine
        self.patroller = bundle.patroller
        self.factory = bundle.factory
        controller = bundle.controller
        self.dispatcher = getattr(controller, "dispatcher", None)
        self.monitor = getattr(controller, "monitor", None)
        self.planner = getattr(controller, "planner", None)
        #: Log of every injection: {"fault": name, "time": when, **params}.
        self.injected: List[Dict] = []

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _log(self, fault: str, **params) -> None:
        entry = {"fault": fault, "time": self.sim.now}
        entry.update(params)
        self.injected.append(entry)

    def _at(self, delay: float, action: Callable[[], None], label: str) -> None:
        if delay <= 0:
            action()
        else:
            self.sim.schedule(delay, action, label="fault:{}".format(label))

    def _missing(self, fault: str, component: str) -> SchedulingError:
        controller = type(self.bundle.controller).__name__ \
            if self.bundle.controller is not None else "None"
        return SchedulingError(
            "fault {!r} needs a {} but the bundle's controller ({}) has "
            "none".format(fault, component, controller)
        )

    def _need_dispatcher(self, fault: str = "fault") -> "Dispatcher":  # noqa: F821
        if self.dispatcher is None:
            raise self._missing(fault, "dispatcher")
        return self.dispatcher

    def _need_monitor(self, fault: str = "fault") -> "Monitor":  # noqa: F821
        if self.monitor is None:
            raise self._missing(fault, "monitor")
        return self.monitor

    def apply(self, fault: ScheduledFault) -> None:
        """Inject one data-described behavioral fault.

        Validates the fault, checks *now* that the controller has every
        component the fault needs (a clear :class:`SchedulingError` beats
        a silent no-op at injection time), and schedules the injection at
        ``fault.at`` seconds (relative to the timer service's current
        time; past times apply immediately).
        """
        fault.validate()
        delay = max(0.0, fault.at - self.sim.now)
        method = getattr(self, fault.kind)
        method(delay=delay, **dict(fault.params))

    # ------------------------------------------------------------------
    # Behavioral faults (public-API driven)
    # ------------------------------------------------------------------
    def cancel_storm(
        self,
        class_name: Optional[str] = None,
        fraction: float = 1.0,
        delay: float = 0.0,
    ) -> None:
        """Cancel a fraction of every (or one) class queue through QP.

        Models a user or admin abandoning a pile of waiting statements at
        once — the event that historically exposed queue-accounting leaks.

        A ``class_name`` the dispatcher does not queue (unknown, or an
        indirectly-controlled OLTP class) is not an accounting event at
        all, so it is recorded as a skip in :attr:`injected` instead of
        silently cancelling nothing.
        """
        if not 0.0 < fraction <= 1.0:
            raise SchedulingError(
                "cancel_storm fraction must be in (0, 1], got {}".format(fraction)
            )
        dispatcher = self._need_dispatcher("cancel_storm")

        def storm() -> None:
            if class_name is not None:
                state = dispatcher._states.get(class_name)
                if state is None or not state.service_class.directly_controlled:
                    self._log(
                        "cancel_storm",
                        class_name=class_name,
                        cancelled=0,
                        skipped="class {!r} is not queued by the dispatcher".format(
                            class_name
                        ),
                    )
                    return
            cancelled = 0
            for name, state in dispatcher._states.items():
                if class_name is not None and name != class_name:
                    continue
                if not state.service_class.directly_controlled:
                    continue
                victims = list(state.queue)
                victims = victims[: max(1, int(len(victims) * fraction))] if victims else []
                for query in victims:
                    if self.patroller.cancel(query):
                        cancelled += 1
            self._log("cancel_storm", class_name=class_name, cancelled=cancelled)

        self._at(delay, storm, "cancel_storm")

    def arrival_burst(
        self,
        class_name: str,
        count: int,
        delay: float = 0.0,
    ) -> None:
        """Submit ``count`` extra queries of a class in the same instant.

        Stresses the release loop and conservation accounting with a
        thundering herd the schedule never planned for.
        """
        mix = self.bundle.mixes.get(class_name)
        if mix is None:
            raise SchedulingError("no workload mix for class {!r}".format(class_name))

        def burst() -> None:
            for index in range(count):
                query = self.factory.create(
                    mix, class_name, client_id="fault:burst:{}".format(index)
                )
                self.patroller.submit(query)
            self._log("arrival_burst", class_name=class_name, count=count)

        self._at(delay, burst, "arrival_burst")

    def release_latency_jitter(
        self,
        release_latency: float,
        delay: float = 0.0,
    ) -> None:
        """Change QP's release latency mid-run.

        Widens (or collapses) the window in which released queries are
        neither queued nor executing — the window cancel-after-release
        bugs live in.
        """

        def jitter() -> None:
            self.patroller.config = dataclasses.replace(
                self.patroller.config, release_latency=release_latency
            )
            self._log("release_latency_jitter", release_latency=release_latency)

        self._at(delay, jitter, "release_latency_jitter")

    def drop_completions(
        self,
        count: int = 1,
        component: str = "dispatcher",
        class_name: Optional[str] = None,
        delay: float = 0.0,
    ) -> None:
        """Silently swallow the next ``count`` completion callbacks.

        Models a lost engine notification: the component keeps carrying a
        statement that already finished.  ``component`` picks whose
        listener is wrapped (``"dispatcher"`` or ``"monitor"``);
        ``class_name`` restricts the drops to one class's completions (by
        default any completion counts, including bypassing OLTP traffic the
        component may not even track).
        """
        if component == "dispatcher":
            target = self._need_dispatcher("drop_completions")._on_completion
        elif component == "monitor":
            target = self._need_monitor("drop_completions")._on_completion
        else:
            raise SchedulingError(
                "unknown component {!r}; expected 'dispatcher' or 'monitor'".format(
                    component
                )
            )

        def install() -> None:
            listeners = self.engine._listeners
            try:
                index = listeners.index(target)
            except ValueError:
                raise SchedulingError(
                    "{} completion listener not subscribed to the engine".format(
                        component
                    )
                )
            remaining = {"count": count}

            def dropping(query: Query) -> None:
                if remaining["count"] > 0 and (
                    class_name is None or query.class_name == class_name
                ):
                    remaining["count"] -= 1
                    return
                target(query)

            listeners[index] = dropping
            self._log(
                "drop_completions",
                component=component,
                count=count,
                class_name=class_name,
            )

        self._at(delay, install, "drop_completions")

    # ------------------------------------------------------------------
    # State corruptions (white-box, immediate)
    # ------------------------------------------------------------------
    def leak_dispatcher_slot(self, class_name: str, cost: float = 500.0) -> None:
        """Inflate a class's in-flight cost with no query behind it.

        The exact signature of the historical accounting leak: budget
        consumed forever, releases throttled, nothing to retire.  Trips
        ``dispatcher_in_flight_consistent``.
        """
        state = self._need_dispatcher("leak_dispatcher_slot")._state(class_name)
        state.in_flight_cost += cost
        state.in_flight_count += 1
        self._log("leak_dispatcher_slot", class_name=class_name, cost=cost)

    def corrupt_plan(self, mode: str = "undersum", amount: float = 5_000.0) -> None:
        """Damage the active plan in place, bypassing plan validation.

        ``"undersum"`` strands ``amount`` timerons below the system limit
        (trips ``plan_spends_system_limit``); ``"negative"`` drives one
        class limit below zero (trips ``plan_limits_nonnegative``).
        """
        plan = self._need_dispatcher("corrupt_plan").plan
        name = next(iter(plan))
        if mode == "undersum":
            plan._limits[name] = max(0.0, plan._limits[name] - amount)
        elif mode == "negative":
            plan._limits[name] = -abs(amount)
        else:
            raise SchedulingError(
                "unknown plan corruption {!r}; expected 'undersum' or 'negative'".format(
                    mode
                )
            )
        self._log("corrupt_plan", mode=mode, class_name=name, amount=amount)

    def corrupt_monitor_open(self, class_name: str) -> None:
        """Plant an already-completed query in the monitor's open set.

        Models the stale-entry leak of an unwired cancellation/completion
        path.  Trips ``monitor_open_is_live``.
        """
        monitor = self._need_monitor("corrupt_monitor_open")
        mix = self.bundle.mixes.get(class_name)
        if mix is None:
            raise SchedulingError("no workload mix for class {!r}".format(class_name))
        query = self.factory.create(mix, class_name, client_id="fault:stale")
        query.submit_time = self.sim.now
        query.state = QueryState.COMPLETED
        monitor._open[query.query_id] = query
        self._log("corrupt_monitor_open", class_name=class_name, query_id=query.query_id)

    def corrupt_velocity_sample(self, class_name: str, value: float = 1.5) -> None:
        """Retain an out-of-range velocity measurement for a class.

        Trips ``velocity_in_unit_interval``.
        """
        from repro.core.monitor import ClassMeasurement

        monitor = self._need_monitor("corrupt_velocity_sample")
        monitor._last_measurement[class_name] = ClassMeasurement(
            class_name=class_name,
            metric="velocity",
            value=value,
            sample_count=1,
            measured_at=self.sim.now,
        )
        self._log("corrupt_velocity_sample", class_name=class_name, value=value)

    def corrupt_oltp_regression(self) -> None:
        """Corrupt the performance model's regression state.

        Goes through the model's public ``corrupt()`` seam (no reaching
        into private normal equations).  For the paper's analytic model
        the slope computation then divides by zero — exactly the kind of
        broken internal state an invariant check must survive *and* report.
        Trips ``oltp_slope_in_clamp_band`` through its exception path.
        """
        model = getattr(self.planner, "model", None) if self.planner else None
        if model is None:
            raise self._missing("corrupt_oltp_regression", "planner with a model")
        model.corrupt("regression")
        self._log("corrupt_oltp_regression")
