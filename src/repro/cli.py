"""Command-line interface.

Subcommands::

    python -m repro run        # run a controller on the paper workload
    python -m repro run --scenario flash-crowd   # ... or on a named scenario
    python -m repro run --dashboard              # ... streaming a live dashboard
    python -m repro serve      # run + live dashboard, held open until Ctrl-C
    python -m repro scenarios  # list / validate the YAML scenario library
    python -m repro calibrate  # throughput-vs-system-cost-limit sweep
    python -m repro figure     # regenerate one of the paper's figures
    python -m repro trace      # run the Query Scheduler, dump telemetry JSONL
    python -m repro check      # run with the invariant harness in strict mode
    python -m repro replicate  # multi-seed controller comparison (--jobs N)
    python -m repro sweep      # config-field sensitivity sweep (--jobs N)
    python -m repro bench      # micro+macro benchmark suite -> BENCH_<n>.json

Every command prints the same ASCII tables the benchmark harness uses, so
the CLI is the quickest way to poke at the system without writing code.
``replicate`` and ``sweep`` fan their runs over worker processes with
``--jobs`` (0 = one per CPU); results are identical at any worker count.
``--dashboard`` (or ``serve``) attaches the stdlib-only live telemetry
hub and serves it over HTTP: ``/`` (the embedded dashboard), ``/events``
(SSE), ``/api/snapshot`` and ``/metrics``.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.config import (
    MonitorConfig,
    PlannerConfig,
    WorkloadScaleConfig,
    default_config,
)
from repro.experiments.calibration import pick_knee_limit, sweep_system_cost_limit
from repro.experiments.figures import figure2, figure3
from repro.experiments.runner import (
    CONTROLLER_NAMES,
    ExperimentSpec,
    run_experiment,
    run_spec,
)
from repro.runtime import BACKEND_NAMES
from repro.metrics.report import (
    format_figure_series,
    format_period_table,
    format_plan_table,
    format_prediction_summary,
    format_summary,
    render_series_chart,
)


def _sweep_value(text: str):
    """Parse one ``sweep --values`` token: int, then float, then string."""
    for parse in (int, float):
        try:
            return parse(text)
        except ValueError:
            continue
    return text


def _build_config(args: argparse.Namespace):
    return default_config(
        seed=args.seed,
        scale=WorkloadScaleConfig(
            period_seconds=args.period_seconds, num_periods=args.periods
        ),
        monitor=MonitorConfig(
            snapshot_interval=min(10.0, max(0.05, args.control_interval / 2.0)),
            response_time_window=max(args.control_interval / 2.0, 10.0),
        ),
        planner=PlannerConfig(
            control_interval=args.control_interval,
            model=getattr(args, "model", None) or "paper",
        ),
    )


def _scenario_result(args: argparse.Namespace, hub=None):
    """Resolve, compile and run ``--scenario``; returns the result."""
    from repro.scenarios import find_scenario, to_experiment_spec

    scenario = find_scenario(args.scenario)
    spec = to_experiment_spec(
        scenario,
        smoke=args.smoke,
        invariants=args.invariants,
        seed=args.seed,
    )
    overrides = {"tracing": bool(args.trace_events)}
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.horizon is not None:
        overrides["horizon"] = args.horizon
    if getattr(args, "model", None):
        from repro.experiments.sensitivity import set_config_field

        overrides["config"] = set_config_field(
            spec.config, "planner.model", args.model
        )
    spec = spec.with_overrides(**overrides)
    print(
        "scenario {} (controller={}, backend={}, {} periods x {:g}s, "
        "invariants={}{})".format(
            scenario.name,
            spec.controller,
            spec.backend,
            spec.schedule.num_periods,
            spec.schedule.period_seconds,
            spec.invariants,
            ", smoke" if args.smoke else "",
        )
    )
    if scenario.description:
        print(scenario.description.strip())
    return run_spec(spec, hub=hub)


def _start_live(args: argparse.Namespace):
    """Start the telemetry hub + dashboard server when asked for.

    Returns ``(hub, server)`` — both ``None`` without ``--dashboard``.
    ``--port 0`` (the default) binds an ephemeral port; ``--port-file``
    writes the bound port for harnesses that need to find the server.
    """
    if not getattr(args, "dashboard", False):
        return None, None
    from repro.obs.live import LiveServer, TelemetryHub

    hub = TelemetryHub()
    server = LiveServer(hub, host=args.host, port=args.port).start()
    print("dashboard: {}".format(server.url), file=sys.stderr)
    if args.port_file:
        with open(args.port_file, "w") as handle:
            handle.write("{}\n".format(server.port))
    return hub, server


def _linger_live(args: argparse.Namespace, server) -> None:
    """Hold the dashboard open after a finished run (``--linger``)."""
    if server is None or args.linger == 0:
        return
    if args.linger < 0:
        print("run finished; serving until Ctrl-C", file=sys.stderr)
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
    else:
        time.sleep(args.linger)


def _stop_live(server) -> None:
    if server is not None:
        server.stop()


def _cmd_run_sharded(args: argparse.Namespace) -> int:
    """The ``run --shards`` path: fleet run, merged cross-shard report."""
    from repro.errors import (
        ConfigurationError,
        ExperimentError,
        InvariantViolation,
        ScenarioError,
    )
    from repro.experiments.runner import ExperimentSpec
    from repro.shard import (
        ShardedExperimentSpec,
        format_sharded_report,
        run_sharded,
        save_sharded_report,
    )

    if args.trace_events:
        print(
            "--trace-events is not supported with sharded runs (each shard "
            "would need its own trace file)",
            file=sys.stderr,
        )
        return 2
    hub = server = None
    try:
        if args.scenario:
            from repro.scenarios import find_scenario, to_sharded_experiment_spec

            scenario = find_scenario(args.scenario)
            spec = to_sharded_experiment_spec(
                scenario,
                smoke=args.smoke,
                invariants=args.invariants,
                seed=args.seed,
                shards=args.shards,
                router=args.router,
                rebalance=args.rebalance,
            )
            overrides = {}
            if args.backend is not None:
                overrides["backend"] = args.backend
            if args.horizon is not None:
                overrides["horizon"] = args.horizon
            if getattr(args, "model", None):
                from repro.experiments.sensitivity import set_config_field

                overrides["config"] = set_config_field(
                    spec.base.config, "planner.model", args.model
                )
            if overrides:
                spec = spec.with_overrides(
                    base=spec.base.with_overrides(**overrides)
                ).validate()
            source = "scenario {}".format(scenario.name)
        else:
            backend = args.backend if args.backend is not None else "sim"
            sim_defaults = (9, 120.0, 60.0)
            sqlite_defaults = (3, 2.0, 1.0)
            defaults = sim_defaults if backend == "sim" else sqlite_defaults
            if args.periods is None:
                args.periods = defaults[0]
            if args.period_seconds is None:
                args.period_seconds = defaults[1]
            if args.control_interval is None:
                args.control_interval = defaults[2]
            if args.seed is None:
                args.seed = 7
            base = ExperimentSpec(
                controller=args.controller,
                config=_build_config(args),
                invariants=args.invariants or "off",
                backend=backend,
                horizon=args.horizon,
            )
            spec = ShardedExperimentSpec(
                base=base,
                shards=args.shards if args.shards is not None else 1,
                router=args.router or "hash",
                rebalance=args.rebalance or "static",
            ).validate()
            source = "paper workload"
        print(
            "sharded run: {} ({} shards, router={}, rebalance={}, "
            "controller={}, invariants={})".format(
                source,
                spec.shards,
                spec.router,
                spec.rebalance,
                spec.base.controller,
                spec.base.invariants,
            )
        )
        hub, server = _start_live(args)
        result = run_sharded(spec, jobs=_jobs_arg(args), hub=hub)
    except (ConfigurationError, ScenarioError) as exc:
        _stop_live(server)
        print("sharded run error: {}".format(exc), file=sys.stderr)
        return 2
    except InvariantViolation as exc:
        _stop_live(server)
        print("invariant violation: {}".format(exc), file=sys.stderr)
        return 1
    except ExperimentError as exc:
        _stop_live(server)
        print("shard failure: {}".format(exc), file=sys.stderr)
        return 1
    print()
    print(format_sharded_report(result.report))
    if args.output:
        save_sharded_report(result.report, args.output, overwrite=True)
        print("wrote {}".format(args.output))
    _linger_live(args, server)
    _stop_live(server)
    return 0 if result.ok else 1


def _check_model_arg(args: argparse.Namespace) -> Optional[str]:
    """Early validation of ``--model``; returns an error string or None."""
    spec = getattr(args, "model", None)
    if not spec:
        return None
    import os

    from repro.core.modeling import parse_model_spec
    from repro.errors import ConfigurationError

    try:
        _, argument = parse_model_spec(spec)
    except ConfigurationError as exc:
        return str(exc)
    if argument is not None and not os.path.exists(argument):
        return "trained model file {!r} not found".format(argument)
    return None


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.errors import ScenarioError

    model_error = _check_model_arg(args)
    if model_error:
        print("model error: {}".format(model_error), file=sys.stderr)
        return 2
    if args.smoke and not args.scenario:
        print("--smoke only applies to --scenario runs", file=sys.stderr)
        return 2
    if args.shards is not None and args.shards > 1:
        return _cmd_run_sharded(args)
    if (args.router or args.rebalance) and args.shards is None:
        print(
            "--router/--rebalance only apply to sharded runs (pass --shards N)",
            file=sys.stderr,
        )
        return 2
    if args.scenario and args.shards is None:
        # A scenario with a multi-shard ``shards:`` block takes the
        # sharded path by itself; --shards 1 forces the unsharded path.
        try:
            from repro.scenarios import find_scenario

            scenario = find_scenario(args.scenario)
        except ScenarioError as exc:
            print("scenario error: {}".format(exc), file=sys.stderr)
            return 2
        if scenario.shards is not None and scenario.shards.count > 1:
            return _cmd_run_sharded(args)
    if args.scenario:
        conflicting = [
            flag
            for flag, value in (
                ("--periods", args.periods),
                ("--period-seconds", args.period_seconds),
                ("--control-interval", args.control_interval),
            )
            if value is not None
        ]
        if conflicting:
            print(
                "{} conflict with --scenario (the scenario owns the "
                "schedule; use 'control:' overrides in the file)".format(
                    ", ".join(conflicting)
                ),
                file=sys.stderr,
            )
            return 2
        hub, server = _start_live(args)
        try:
            result = _scenario_result(args, hub=hub)
        except ScenarioError as exc:
            _stop_live(server)
            print("scenario error: {}".format(exc), file=sys.stderr)
            return 2
    else:
        backend = args.backend if args.backend is not None else "sim"
        # Workload-scale defaults depend on the backend: the sim runs
        # minutes of virtual time for free, the sqlite backend burns real
        # wall-clock.
        sim_defaults = (9, 120.0, 60.0)
        sqlite_defaults = (3, 2.0, 1.0)
        defaults = sim_defaults if backend == "sim" else sqlite_defaults
        if args.periods is None:
            args.periods = defaults[0]
        if args.period_seconds is None:
            args.period_seconds = defaults[1]
        if args.control_interval is None:
            args.control_interval = defaults[2]
        if args.seed is None:
            args.seed = 7
        config = _build_config(args)
        hub, server = _start_live(args)
        result = run_spec(
            ExperimentSpec(
                controller=args.controller,
                config=config,
                invariants=args.invariants or "off",
                tracing=bool(args.trace_events),
                backend=backend,
                horizon=args.horizon,
            ),
            hub=hub,
        )
    if args.output:
        from repro.metrics.export import save_result

        save_result(result, args.output)
        print("wrote {}".format(args.output))
    if args.trace_events:
        from repro.obs import save_chrome_trace

        tracer = result.extras["tracer"]
        save_chrome_trace(tracer.spans, args.trace_events, overwrite=True)
        print(
            "wrote {} ({} spans, balanced={})".format(
                args.trace_events, len(tracer.spans), tracer.balanced
            )
        )
    controller = result.bundle.controller
    describe = getattr(controller, "describe", None)
    if describe is not None:
        print(describe())
    print()
    print(format_period_table(result.collector, result.classes,
                              title="Per-period goal metrics"))
    print()
    print(format_summary(result.collector, result.classes, title="Attainment"))
    if result.controller_name in ("qs", "qs_detect"):
        print()
        print(format_plan_table(
            result.collector,
            [c.name for c in result.classes],
            title="Class cost limits (period means, timerons)",
        ))
    injector = result.extras.get("faults")
    if injector is not None:
        print()
        print("Injected faults ({}):".format(len(injector.injected)))
        for entry in injector.injected:
            details = ", ".join(
                "{}={}".format(k, v)
                for k, v in entry.items()
                if k not in ("fault", "time")
            )
            print("  t={:<10.3f} {}{}".format(
                entry["time"], entry["fault"],
                " ({})".format(details) if details else "",
            ))
    harness = result.extras.get("validation")
    if harness is not None:
        print()
        print(_format_harness_summary(harness))
    _linger_live(args, server)
    _stop_live(server)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """``repro serve``: a run with the dashboard on, held open afterwards."""
    args.dashboard = True
    if args.linger == 0:
        args.linger = -1.0  # serve until Ctrl-C unless told otherwise
    return _cmd_run(args)


def _format_harness_summary(harness) -> str:
    """One block summarising a run's invariant checks."""
    lines = [
        "Invariants ({} registered, {} checks, mode={}):".format(
            len(harness.registry), harness.checks_run, harness.mode
        )
    ]
    if not harness.violations:
        lines.append("  no violations")
    for violation in harness.violations:
        lines.append("  " + violation.describe())
    return "\n".join(lines)


def _cmd_trace(args: argparse.Namespace) -> int:
    config = _build_config(args)
    result = run_experiment(
        controller=args.controller, config=config, invariants=args.invariants
    )
    store = result.extras.get("telemetry")
    if store is None:
        print(
            "controller {!r} produces no telemetry (use qs or qs_detect)".format(
                args.controller
            ),
            file=sys.stderr,
        )
        return 2
    if args.output:
        store.save_jsonl(args.output, overwrite=True)
        print("wrote {} ({} control intervals)".format(args.output, len(store)))
    else:
        sys.stdout.write(store.to_jsonl())
    if args.summary:
        print()
        print(format_prediction_summary(
            store.prediction_error_summary(),
            title="One-step prediction error per class",
        ))
        print()
        print("Dispatcher balance (released = completed + cancelled + in-flight):")
        for name, counts in sorted(store.dispatcher_balance().items()):
            print(
                "  {:<10} released={:<6} completed={:<6} cancelled={:<6} "
                "in_flight={:<6} queue_cancelled={}".format(
                    name,
                    counts["released"],
                    counts["completed"],
                    counts["cancelled"],
                    counts["in_flight"],
                    counts["queue_cancelled"],
                )
            )
        print()
        print(_format_overhead_summary(store.overhead_summary()))
        harness = result.extras.get("validation")
        if harness is not None:
            print()
            print(_format_harness_summary(harness))
    return 0


def _format_overhead_summary(summary) -> str:
    """One block with the controller's own wall-clock cost per interval."""
    lines = ["Controller overhead (wall-clock per control interval):"]
    if not summary:
        lines.append("  no overhead data recorded")
        return "\n".join(lines)
    for key in sorted(summary):
        stats = summary[key]
        lines.append(
            "  {:<14} mean={:.6f}s max={:.6f}s over {} intervals".format(
                key, stats["mean_s"], stats["max_s"], stats["count"]
            )
        )
    return "\n".join(lines)


def _format_span_breakdown(spans, top: int) -> str:
    """Per-class queue-wait/phase breakdown plus the slowest waits."""
    from repro.obs import phase_breakdown, slowest_spans
    from repro.obs.spans import PHASES

    lines = [
        "Per-class phase breakdown (sim seconds):",
        "  {:<10} {:<10} {:>6} {:>9} {:>9} {:>9} {:>9}".format(
            "class", "phase", "count", "mean", "p50", "p95", "max"
        ),
    ]
    breakdown = phase_breakdown(spans)
    for class_name in sorted(breakdown):
        by_phase = breakdown[class_name]
        for phase in PHASES:
            stats = by_phase.get(phase)
            if stats is None:
                continue
            lines.append(
                "  {:<10} {:<10} {:>6} {:>9.3f} {:>9.3f} {:>9.3f} {:>9.3f}".format(
                    class_name,
                    phase,
                    stats.count,
                    stats.mean,
                    stats.percentile(50.0),
                    stats.percentile(95.0),
                    stats.max,
                )
            )
    slowest = slowest_spans(spans, phase="queue_wait", n=top)
    lines.append("")
    lines.append("Top {} slowest queue waits:".format(top))
    if not slowest:
        lines.append("  none recorded")
    for span in slowest:
        lines.append(
            "  query {:<6} class={:<10} wait={:.3f}s cost={:.0f} "
            "period={}{}".format(
                span.query_id,
                span.class_name,
                span.duration,
                span.estimated_cost,
                span.period,
                " (truncated)" if span.truncated else "",
            )
        )
    return "\n".join(lines)


def _cmd_spans(args: argparse.Namespace) -> int:
    from repro.obs import (
        save_chrome_trace,
        save_spans_jsonl,
        load_spans,
        validate_spans,
    )

    if args.input is not None:
        spans = load_spans(args.input)
        print("loaded {} spans from {}".format(len(spans), args.input))
    else:
        config = _build_config(args)
        result = run_experiment(
            controller=args.controller, config=config, tracing=True
        )
        tracer = result.extras["tracer"]
        tracer.assert_balanced()
        spans = tracer.spans
        print(
            "traced {} spans across {} queries (balanced)".format(
                len(spans), len({s.query_id for s in spans})
            )
        )
    problems = validate_spans(spans)
    if problems:
        for problem in problems:
            print("problem: {}".format(problem), file=sys.stderr)
        return 1
    if args.output:
        save_spans_jsonl(spans, args.output, overwrite=True)
        print("wrote {}".format(args.output))
    if args.trace_events:
        save_chrome_trace(spans, args.trace_events, overwrite=True)
        print("wrote {}".format(args.trace_events))
    print()
    print(_format_span_breakdown(spans, args.top))
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.errors import ScenarioError
    from repro.scenarios import (
        find_scenario,
        library_names,
        library_paths,
        load_scenario,
        validate_library,
    )

    if args.validate_all:
        failures = list(validate_library())
        for path in args.name or []:
            # Extra positional args with --validate-all: validate files too.
            try:
                load_scenario(path)
            except ScenarioError as exc:
                failures.append((path, str(exc)))
        names = library_names() + list(args.name or [])
        for name, error in failures:
            print("INVALID {}: {}".format(name, error), file=sys.stderr)
        print(
            "{} of {} scenarios valid".format(
                len(names) - len(failures), len(names)
            )
        )
        return 1 if failures else 0
    if args.name:
        try:
            scenario = find_scenario(args.name[0])
        except ScenarioError as exc:
            print("scenario error: {}".format(exc), file=sys.stderr)
            return 2
        print("{} (format v{})".format(scenario.name, scenario.version))
        if scenario.description:
            print(scenario.description.strip())
        print(
            "controller={} backend={} invariants={} seed={} "
            "{} periods x {:g}s".format(
                scenario.controller, scenario.backend, scenario.invariants,
                scenario.seed, scenario.num_periods, scenario.period_seconds,
            )
        )
        for cls in scenario.classes:
            print("  {:<10} {:<5} {}={:g} importance={:g}".format(
                cls.name, cls.kind, cls.goal_metric, cls.goal_value,
                cls.importance,
            ))
        if scenario.control:
            print("control overrides:")
            for path in sorted(scenario.control):
                print("  {} = {}".format(path, scenario.control[path]))
        print()
        print(format_figure_series(
            {
                name: list(map(float, counts))
                for name, counts in scenario.resolved_counts().items()
            },
            x_label="period",
            title="clients per period",
            digits=0,
        ))
        if scenario.faults:
            print()
            print("faults:")
            for fault in scenario.faults:
                when = fault.seconds(scenario.period_seconds)
                details = ", ".join(
                    "{}={}".format(k.replace("class_name", "class"), v)
                    for k, v in fault.params.items()
                )
                print("  t={:<10.3f} {}{}".format(
                    when, fault.kind,
                    " ({})".format(details) if details else "",
                ))
        return 0
    print("{} library scenarios (repro run --scenario <name>):".format(
        len(library_paths())
    ))
    for name in library_names():
        try:
            scenario = find_scenario(name)
        except ScenarioError as exc:
            print("  {:<26} INVALID: {}".format(name, exc))
            continue
        print("  {:<26} {:>2} x {:>4g}s  {} classes  {} faults  [{}]".format(
            name,
            scenario.num_periods,
            scenario.period_seconds,
            len(scenario.classes),
            len(scenario.faults),
            scenario.controller,
        ))
    return 0


def _cmd_check(args: argparse.Namespace) -> int:
    from repro.errors import InvariantViolation
    from repro.experiments.runner import build_bundle, make_controller
    from repro.validation import ControlLoopWorld, core_invariants

    config = _build_config(args)
    if args.list:
        bundle = build_bundle(config=config)
        make_controller(bundle, args.controller)
        registry = core_invariants(ControlLoopWorld.from_bundle(bundle))
        for invariant in registry:
            print("{:<32} {:<8} {}".format(
                invariant.name, invariant.severity.name, invariant.message
            ))
        return 0
    try:
        result = run_experiment(
            controller=args.controller, config=config, invariants=args.mode
        )
    except InvariantViolation as violation:
        print("invariant violated: {}".format(violation), file=sys.stderr)
        return 1
    harness = result.extras["validation"]
    print(_format_harness_summary(harness))
    return 1 if harness.violations else 0


def _progress_printer(args: argparse.Namespace):
    """A run_requests progress hook printing one stderr line per run."""
    if args.quiet:
        return None

    def progress(outcome, done, total):
        status = "ok" if outcome.ok else "FAILED"
        print(
            "[{}/{}] {} {}".format(done, total, outcome.request.describe(), status),
            file=sys.stderr,
        )

    return progress


def _jobs_arg(args: argparse.Namespace):
    """Map the CLI convention (0 = one worker per CPU) onto the API's None."""
    return None if args.jobs == 0 else args.jobs


def _cmd_replicate(args: argparse.Namespace) -> int:
    from repro.experiments.replication import compare, format_comparison

    config = _build_config(args)
    summaries = compare(
        args.controllers,
        seeds=args.seeds,
        config=config,
        jobs=_jobs_arg(args),
        progress=_progress_printer(args),
    )
    class_names = sorted(
        {name for summary in summaries.values() for name in summary.per_class}
    )
    print(format_comparison(summaries, class_names))
    failures = sum(len(summary.errors) for summary in summaries.values())
    if failures:
        print(
            "{} of {} runs failed".format(
                failures, len(args.controllers) * len(args.seeds)
            ),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.experiments.sensitivity import format_sweep, sweep

    if args.smoke and not args.scenario:
        print("--smoke requires --scenario", file=sys.stderr)
        return 2
    if args.scenario:
        from repro.errors import ScenarioError
        from repro.scenarios import find_scenario, to_experiment_spec

        try:
            scenario = find_scenario(args.scenario)
            base_spec = to_experiment_spec(scenario, smoke=args.smoke)
        except ScenarioError as exc:
            print("scenario error: {}".format(exc), file=sys.stderr)
            return 2
        print("sweeping {} over scenario '{}'".format(args.path, scenario.name))
        entries = sweep(
            args.path,
            args.values,
            base_spec=base_spec,
            jobs=_jobs_arg(args),
            progress=_progress_printer(args),
        )
    else:
        config = _build_config(args)
        entries = sweep(
            args.path,
            args.values,
            controller=args.controller,
            config=config,
            jobs=_jobs_arg(args),
            progress=_progress_printer(args),
        )
    class_names = sorted({name for _, attainment in entries for name in attainment})
    print(format_sweep(args.path, entries, class_names))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    config = default_config(seed=args.seed)
    curve = sweep_system_cost_limit(
        args.limits,
        config=config,
        olap_clients=args.clients,
        period_seconds=args.period_seconds,
        num_periods=3,
        warmup_periods=1,
    )
    print("{:>12} | {:>12}".format("limit (tim)", "queries/sec"))
    print("-" * 28)
    for limit, throughput in curve:
        print("{:>12.0f} | {:>12.4f}".format(limit, throughput))
    knee = pick_knee_limit(curve, tolerance=0.05)
    print("suggested system cost limit (knee): {:.0f}".format(knee))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    config = _build_config(args)
    number = args.number
    if number == 2:
        data = figure2(
            config=default_config(seed=args.seed),
            period_seconds=args.period_seconds,
            num_periods=3,
            warmup_periods=1,
        )
        for pair, series in data.items():
            print("clients (oltp, olap) = {}:".format(pair))
            for limit, rt in series:
                print("  {:>8.0f} timerons -> {:.3f}s".format(
                    limit, rt if rt is not None else float("nan")))
        return 0
    if number == 3:
        counts = figure3(args.period_seconds)
        print(format_figure_series(
            {name: list(map(float, series)) for name, series in counts.items()},
            x_label="period",
            title="Figure 3: clients per period",
            digits=0,
        ))
        return 0
    if number in (4, 5, 6, 7):
        controller = {4: "none", 5: "qp", 6: "qs", 7: "qs"}[number]
        result = run_experiment(controller=controller, config=config)
        print(format_period_table(
            result.collector, result.classes,
            title="Figure {}: controller={}".format(number, controller),
        ))
        print()
        print(render_series_chart(
            {c.name: result.collector.performance_series(c) for c in result.classes},
            goal_lines={c.name: c.goal.target for c in result.classes},
            title="goal metrics per period (velocity / seconds)",
        ))
        if number == 7:
            print()
            print(format_plan_table(
                result.collector,
                [c.name for c in result.classes],
                title="Figure 7: class cost limits (period means)",
            ))
        return 0
    print("unknown figure {}; expected 2-7".format(number), file=sys.stderr)
    return 2


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench import (
        BenchReport,
        compare_reports,
        format_comparison,
        format_report,
        next_bench_path,
        run_suite,
    )
    from repro.errors import BenchError

    try:
        if args.compare:
            before = BenchReport.load(args.compare[0])
            after = BenchReport.load(args.compare[1])
            print(format_comparison(compare_reports(before, after)))
            return 0
        trials = args.trials
        if trials is None:
            trials = 1 if args.smoke else 3
        if not args.quiet:
            def progress(name, trial, metrics):
                wall = metrics.get("wall_s", 0.0)
                print(
                    "[bench] {} trial {}/{}: {:.3f}s".format(
                        name, trial + 1, trials, wall
                    ),
                    file=sys.stderr,
                )
        else:
            progress = None
        report = run_suite(
            trials=trials, smoke=args.smoke, only=args.only, progress=progress
        )
        path = args.output or next_bench_path(args.dir)
        report.save(path)
    except BenchError as exc:
        print("bench error: {}".format(exc), file=sys.stderr)
        return 2
    print(format_report(report))
    print("wrote {}".format(path))
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    """``repro train``: fit a learned model from exported telemetry."""
    from repro.core.modeling import (
        LearnedPerformanceModel,
        PaperAnalyticModel,
        evaluate_on_records,
        fit_from_records,
        load_telemetry_records,
        save_model,
    )
    from repro.errors import ConfigurationError, ExportError

    try:
        records = load_telemetry_records(args.telemetry)
        model = LearnedPerformanceModel(
            prior_slope=args.prior_slope,
            ridge=args.ridge,
            forgetting=args.forgetting,
        )
        fit_from_records(records, model=model)
        save_model(model, args.output, overwrite=True)
    except (ConfigurationError, ExportError) as exc:
        print("train error: {}".format(exc), file=sys.stderr)
        return 2
    print(
        "trained on {} telemetry records ({} observations) -> {}".format(
            len(records), model.observations, args.output
        )
    )
    if not args.no_eval:
        # Prequential one-step MAE on the same trace, trained vs analytic
        # (round-trip the trained weights so the scorer's online updates
        # cannot touch the saved model).
        trained = LearnedPerformanceModel.from_dict(model.to_dict())
        for label, scorer in (
            ("learned", trained),
            ("paper", PaperAnalyticModel()),
        ):
            errors = evaluate_on_records(records, scorer)
            print("prequential MAE ({}):".format(label))
            for name in sorted(errors):
                series = errors[name]
                mae = sum(e for _, e in series) / len(series) if series else 0.0
                print("  {:<12} {:.5f} ({} intervals)".format(name, mae, len(series)))
    return 0


def _cmd_ablate_models(args: argparse.Namespace) -> int:
    """``repro ablate-models``: scenario replay across model specs."""
    import json

    from repro.errors import ExperimentError, InvariantViolation, ScenarioError
    from repro.experiments.model_ablation import (
        format_ablation_table,
        run_model_ablation,
    )

    try:
        report = run_model_ablation(
            scenarios=args.scenarios,
            models=args.models,
            smoke=not args.full,
            seed=args.seed,
            invariants=args.invariants,
        )
    except (ScenarioError, ExperimentError) as exc:
        print("ablation error: {}".format(exc), file=sys.stderr)
        return 2
    except InvariantViolation as exc:
        print("invariant violation: {}".format(exc), file=sys.stderr)
        return 1
    print(format_ablation_table(report))
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("wrote {}".format(args.output))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.reportgen import quick_report_config, write_report

    config = quick_report_config().with_updates(seed=args.seed)
    text = write_report(args.output, config=config)
    print("wrote {} ({} lines)".format(args.output, text.count("\n") + 1))
    return 0


def _add_run_arguments(run_parser: argparse.ArgumentParser) -> None:
    """The full ``run`` option set (shared verbatim by ``serve``)."""
    run_parser.add_argument("--controller", choices=CONTROLLER_NAMES, default="qs")
    run_parser.add_argument(
        "--scenario", default=None, metavar="NAME|PATH",
        help="run a scenario: a library name (see 'repro scenarios') or a "
             "path to a scenario YAML file; the scenario then owns the "
             "controller, schedule, backend and invariant mode",
    )
    run_parser.add_argument(
        "--smoke", action="store_true",
        help="compress the scenario's periods to seconds of virtual time "
             "(same schedule shape; only valid with --scenario)",
    )
    run_parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="execution backend: the discrete-event simulator (default), "
             "or real SQL against in-process SQLite in wall-clock time",
    )
    run_parser.add_argument(
        "--horizon", type=float, default=None, metavar="SECONDS",
        help="stop the run at this time instead of the schedule horizon",
    )
    run_parser.add_argument("--periods", type=int, default=None)
    run_parser.add_argument("--period-seconds", type=float, default=None)
    run_parser.add_argument("--control-interval", type=float, default=None)
    run_parser.add_argument(
        "--seed", type=int, default=None,
        help="RNG seed (default 7, or the scenario's own seed)",
    )
    run_parser.add_argument(
        "--output", default=None,
        help="write results to a .json or .csv file",
    )
    run_parser.add_argument(
        "--invariants", choices=("off", "warn", "strict"), default=None,
        help="runtime invariant checking at every control interval "
             "(default off, or the scenario's own mode)",
    )
    run_parser.add_argument(
        "--model", default=None, metavar="SPEC",
        help="performance model for the utility solver: 'paper' (the "
             "analytic Section 3.2 pair, default), 'learned' (online RLS "
             "residual model), 'learned:PATH' (weights from 'repro "
             "train'), or 'oracle' (last-value baseline)",
    )
    run_parser.add_argument(
        "--trace-events", default=None, metavar="PATH",
        help="trace query lifecycles, write Chrome trace-event JSON here",
    )
    run_parser.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="run N engine shards under the sharded control plane "
             "(default: the scenario's shards block, else unsharded)",
    )
    run_parser.add_argument(
        "--router", choices=("hash", "least-loaded", "cost-aware"),
        default=None,
        help="how client sessions spread across shards (default hash, or "
             "the scenario's own policy)",
    )
    run_parser.add_argument(
        "--rebalance", choices=("static", "interval"), default=None,
        help="cost-limit partitioning: once up front (static, parallel-"
             "safe) or re-split every control interval (interval, jobs=1)",
    )
    run_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for static-mode shards (0 = one per CPU)",
    )
    run_parser.add_argument(
        "--dashboard", action="store_true",
        help="serve the live telemetry dashboard while the run executes "
             "(stdlib HTTP + SSE: /, /events, /api/snapshot, /metrics)",
    )
    run_parser.add_argument(
        "--host", default="127.0.0.1",
        help="dashboard bind address (default 127.0.0.1)",
    )
    run_parser.add_argument(
        "--port", type=int, default=0, metavar="N",
        help="dashboard port (default 0 = an ephemeral free port)",
    )
    run_parser.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the dashboard's bound port here once listening",
    )
    run_parser.add_argument(
        "--linger", type=float, default=0.0, metavar="SECONDS",
        help="keep serving the dashboard this long after the run finishes "
             "(negative = until Ctrl-C; 'serve' defaults to that)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Adapting Mixed Workloads to Meet SLOs "
                    "in Autonomic DBMSs' (ICDE 2007)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_parser = sub.add_parser(
        "run",
        help="run a controller on the paper workload or a YAML scenario",
    )
    _add_run_arguments(run_parser)
    run_parser.set_defaults(func=_cmd_run)

    serve_parser = sub.add_parser(
        "serve",
        help="run an experiment with the live dashboard attached and hold "
             "the server open afterwards (Ctrl-C to exit); accepts every "
             "'run' option",
    )
    _add_run_arguments(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)

    spans_parser = sub.add_parser(
        "spans",
        help="per-query lifecycle span breakdown (fresh traced run, or a "
             "saved spans JSONL / trace-event JSON / directory)",
    )
    spans_parser.add_argument(
        "input", nargs="?", default=None,
        help="spans .jsonl, trace-event .json, or a directory holding one "
             "(default: run a fresh traced experiment)",
    )
    spans_parser.add_argument(
        "--controller", choices=("qs", "qs_detect"), default="qs"
    )
    spans_parser.add_argument("--periods", type=int, default=9)
    spans_parser.add_argument("--period-seconds", type=float, default=120.0)
    spans_parser.add_argument("--control-interval", type=float, default=60.0)
    spans_parser.add_argument("--seed", type=int, default=7)
    spans_parser.add_argument(
        "--top", type=int, default=5,
        help="how many slowest queue waits to list",
    )
    spans_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the spans as JSONL here",
    )
    spans_parser.add_argument(
        "--trace-events", default=None, metavar="PATH",
        help="also write Chrome trace-event JSON here",
    )
    spans_parser.set_defaults(func=_cmd_spans)

    trace_parser = sub.add_parser(
        "trace", help="run the Query Scheduler and export controller telemetry"
    )
    trace_parser.add_argument(
        "--controller", choices=("qs", "qs_detect"), default="qs"
    )
    trace_parser.add_argument("--periods", type=int, default=9)
    trace_parser.add_argument("--period-seconds", type=float, default=120.0)
    trace_parser.add_argument("--control-interval", type=float, default=60.0)
    trace_parser.add_argument("--seed", type=int, default=7)
    trace_parser.add_argument(
        "--output", default=None,
        help="write telemetry JSONL here (default: stdout)",
    )
    trace_parser.add_argument(
        "--summary", action="store_true",
        help="also print prediction-error and accounting summaries",
    )
    trace_parser.add_argument(
        "--invariants", choices=("off", "warn", "strict"), default="warn",
        help="runtime invariant checking (violations ride in the JSONL)",
    )
    trace_parser.set_defaults(func=_cmd_trace)

    check_parser = sub.add_parser(
        "check",
        help="run a seeded simulation under the runtime invariant harness",
    )
    check_parser.add_argument(
        "--controller", choices=("qs", "qs_detect"), default="qs"
    )
    check_parser.add_argument("--periods", type=int, default=3)
    check_parser.add_argument("--period-seconds", type=float, default=60.0)
    check_parser.add_argument("--control-interval", type=float, default=30.0)
    check_parser.add_argument("--seed", type=int, default=7)
    check_parser.add_argument(
        "--mode", choices=("warn", "strict"), default="strict",
        help="warn records violations; strict fails fast on the first",
    )
    check_parser.add_argument(
        "--list", action="store_true",
        help="print the registered invariants and exit without running",
    )
    check_parser.set_defaults(func=_cmd_check)

    scen_parser = sub.add_parser(
        "scenarios",
        help="list, inspect, or validate the named scenario library",
    )
    scen_parser.add_argument(
        "name", nargs="*",
        help="show one scenario in detail (library name or YAML path); "
             "with --validate-all, extra paths to validate as well",
    )
    scen_parser.add_argument(
        "--validate-all", action="store_true",
        help="schema-validate and round-trip every library scenario; "
             "exit nonzero if any fails",
    )
    scen_parser.set_defaults(func=_cmd_scenarios)

    def _experiment_scale_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--periods", type=int, default=9)
        p.add_argument("--period-seconds", type=float, default=120.0)
        p.add_argument("--control-interval", type=float, default=60.0)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the run fan-out (0 = one per CPU)",
        )
        p.add_argument(
            "--quiet", action="store_true",
            help="suppress per-run progress lines on stderr",
        )

    rep_parser = sub.add_parser(
        "replicate",
        help="compare controllers across seeds (paired multi-seed runs)",
    )
    rep_parser.add_argument(
        "--controllers", nargs="+", choices=CONTROLLER_NAMES,
        default=["none", "qp", "qs"],
    )
    rep_parser.add_argument(
        "--seeds", type=int, nargs="+", default=[7, 21, 42],
    )
    _experiment_scale_args(rep_parser)
    rep_parser.set_defaults(func=_cmd_replicate)

    sweep_parser = sub.add_parser(
        "sweep", help="re-run an experiment per value of a config field"
    )
    sweep_parser.add_argument(
        "path", help="dotted config path, e.g. planner.control_interval"
    )
    sweep_parser.add_argument(
        "--values", nargs="+", required=True, type=_sweep_value,
        help="values to sweep (numbers are auto-converted)",
    )
    sweep_parser.add_argument("--controller", choices=CONTROLLER_NAMES, default="qs")
    sweep_parser.add_argument(
        "--scenario", default=None, metavar="NAME|PATH",
        help="sweep over a scenario instead of the paper workload; the "
             "scenario supplies the controller, schedule, seed and faults "
             "(--controller/--periods/--period-seconds/--control-interval/"
             "--seed are ignored)",
    )
    sweep_parser.add_argument(
        "--smoke", action="store_true",
        help="compress the scenario's periods to seconds of virtual time "
             "(only valid with --scenario)",
    )
    _experiment_scale_args(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    cal_parser = sub.add_parser("calibrate", help="throughput vs system cost limit")
    cal_parser.add_argument(
        "--limits", type=float, nargs="+",
        default=[10_000, 20_000, 30_000, 40_000, 50_000],
    )
    cal_parser.add_argument("--clients", type=int, default=32)
    cal_parser.add_argument("--period-seconds", type=float, default=120.0)
    cal_parser.add_argument("--seed", type=int, default=7)
    cal_parser.set_defaults(func=_cmd_calibrate)

    fig_parser = sub.add_parser("figure", help="regenerate a paper figure (2-7)")
    fig_parser.add_argument("number", type=int)
    fig_parser.add_argument("--periods", type=int, default=9)
    fig_parser.add_argument("--period-seconds", type=float, default=120.0)
    fig_parser.add_argument("--control-interval", type=float, default=60.0)
    fig_parser.add_argument("--seed", type=int, default=7)
    fig_parser.set_defaults(func=_cmd_figure)

    bench_parser = sub.add_parser(
        "bench",
        help="run the micro+macro benchmark suite, write BENCH_<n>.json",
    )
    bench_parser.add_argument(
        "--trials", type=int, default=None,
        help="repeated trials per benchmark (default: 3, or 1 with --smoke)",
    )
    bench_parser.add_argument(
        "--smoke", action="store_true",
        help="tiny scales for CI: seconds instead of minutes",
    )
    bench_parser.add_argument(
        "--only", nargs="+", default=None, metavar="NAME",
        help="run only these benchmarks (see docs/BENCHMARKS.md)",
    )
    bench_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report here instead of the next free BENCH_<n>.json",
    )
    bench_parser.add_argument(
        "--dir", default=".",
        help="directory scanned for the next BENCH_<n>.json (default: cwd)",
    )
    bench_parser.add_argument(
        "--compare", nargs=2, default=None, metavar=("BEFORE", "AFTER"),
        help="compare two bench reports instead of running the suite",
    )
    bench_parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-trial progress lines on stderr",
    )
    bench_parser.set_defaults(func=_cmd_bench)

    train_parser = sub.add_parser(
        "train",
        help="fit a learned performance model from exported telemetry "
             "JSONL (see 'repro trace'); load it with run --model learned:PATH",
    )
    train_parser.add_argument(
        "--telemetry", required=True, metavar="PATH",
        help="telemetry JSONL file, or a directory of .jsonl exports",
    )
    train_parser.add_argument(
        "--output", required=True, metavar="PATH",
        help="where to write the trained model JSON",
    )
    train_parser.add_argument(
        "--prior-slope", type=float, default=-4.2e-6,
        help="OLTP slope prior of the analytic base model (default %(default)s)",
    )
    train_parser.add_argument(
        "--ridge", type=float, default=4.0,
        help="ridge regularisation of the RLS correction (default %(default)s)",
    )
    train_parser.add_argument(
        "--forgetting", type=float, default=0.995,
        help="RLS forgetting factor in (0, 1] (default %(default)s)",
    )
    train_parser.add_argument(
        "--no-eval", action="store_true",
        help="skip the prequential MAE comparison against the paper model",
    )
    train_parser.set_defaults(func=_cmd_train)

    ablate_parser = sub.add_parser(
        "ablate-models",
        help="replay library scenarios once per performance model and "
             "compare SLO attainment and prediction error",
    )
    ablate_parser.add_argument(
        "--scenarios", nargs="+", metavar="NAME",
        default=["paper-figure3", "diurnal", "flash-crowd"],
        help="scenario names to replay (default: %(default)s)",
    )
    ablate_parser.add_argument(
        "--models", nargs="+", metavar="SPEC",
        default=["paper", "learned", "oracle"],
        help="model specs to compare (default: %(default)s); 'learned' is "
             "trained on each scenario's own paper-model trace first",
    )
    ablate_parser.add_argument(
        "--full", action="store_true",
        help="full-length scenario runs (default: smoke-compressed)",
    )
    ablate_parser.add_argument(
        "--seed", type=int, default=None,
        help="override each scenario's own seed",
    )
    ablate_parser.add_argument(
        "--invariants", choices=("off", "warn", "strict"), default="warn",
        help="invariant mode for the replays (default warn: violations "
             "are counted in the table instead of aborting)",
    )
    ablate_parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the full comparison report as JSON",
    )
    ablate_parser.set_defaults(func=_cmd_ablate_models)

    report_parser = sub.add_parser(
        "report", help="run the figure 4/5/6/7 comparison, write a Markdown report"
    )
    report_parser.add_argument("--output", default="experiment_report.md")
    report_parser.add_argument("--seed", type=int, default=7)
    report_parser.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
