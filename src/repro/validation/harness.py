"""The runtime validation harness.

A closed control loop is very good at *hiding* its own bugs: when the
dispatcher leaks an in-flight slot or the monitor feeds the solver a stale
measurement, the loop quietly re-plans around the corrupted state and the
headline metrics only drift.  The harness makes that class of bug loud by
re-deriving the controller's accounting from ground truth at every control
interval and comparing.

Three pieces:

* :class:`ControlLoopWorld` — a read-only view over the live components
  (sim, engine, patroller, dispatcher, monitor, planner, solver) that
  invariant checks receive;
* :func:`core_invariants` — the built-in suite covering dispatcher
  accounting, dispatcher/engine agreement, plan shape, monitor liveness,
  per-class conservation, velocity range and the OLTP slope clamp band;
* :class:`ValidationHarness` — evaluates a registry against the world at
  every plan decision (and on demand), records violations into the
  controller telemetry, and in strict mode raises
  :class:`~repro.errors.InvariantViolation`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.config import SimulationConfig
from repro.core.dispatcher import Dispatcher
from repro.core.modeling import OLTPResponseTimeModel
from repro.core.monitor import Monitor
from repro.core.planner import PlanRecord, SchedulingPlanner
from repro.core.service_class import ServiceClass
from repro.dbms.query import QueryState
from repro.errors import InvariantViolation, SchedulingError
from repro.patroller.patroller import QueryPatroller
from repro.runtime import ExecutionEngine, TimerService
from repro.validation.invariants import (
    Invariant,
    InvariantRegistry,
    Severity,
    Violation,
)

#: Harness modes: ``"off"`` (never attached), ``"warn"`` (record violations
#: into telemetry only) and ``"strict"`` (additionally raise
#: :class:`InvariantViolation` for severity ERROR and above).
MODES = ("off", "warn", "strict")

#: Absolute slack tolerated when comparing incrementally maintained costs
#: against a ground-truth re-sum (float accumulation drift).
_COST_TOLERANCE = 1e-6


@dataclass
class ControlLoopWorld:
    """Read-only view of the live control loop handed to invariant checks.

    Components a deployment does not have (e.g. no planner under the
    baseline controllers) are ``None``; :func:`core_invariants` only
    registers the checks whose subjects are present.
    """

    sim: TimerService
    engine: ExecutionEngine
    classes: Sequence[ServiceClass]
    config: Optional[SimulationConfig] = None
    patroller: Optional[QueryPatroller] = None
    dispatcher: Optional[Dispatcher] = None
    monitor: Optional[Monitor] = None
    planner: Optional[SchedulingPlanner] = None

    @property
    def now(self) -> float:
        """Current backend time (virtual or wall-clock)."""
        return self.sim.now

    @property
    def oltp_model(self) -> Optional[OLTPResponseTimeModel]:
        """The planner's OLTP model, if the solver keeps one."""
        return self.planner.oltp_model if self.planner is not None else None

    def controlled_classes(self) -> List[ServiceClass]:
        """The directly controlled (dispatcher-queued) classes."""
        return [c for c in self.classes if c.directly_controlled]

    @staticmethod
    def from_scheduler(scheduler: "QueryScheduler") -> "ControlLoopWorld":  # noqa: F821
        """Build a world from a wired :class:`QueryScheduler`."""
        return ControlLoopWorld(
            sim=scheduler.sim,
            engine=scheduler.engine,
            classes=scheduler.classes,
            config=scheduler.config,
            patroller=scheduler.patroller,
            dispatcher=scheduler.dispatcher,
            monitor=scheduler.monitor,
            planner=scheduler.planner,
        )

    @staticmethod
    def from_bundle(bundle: "SimulationBundle") -> "ControlLoopWorld":  # noqa: F821
        """Build a world from an assembled experiment bundle.

        Reaches into the attached controller for the dispatcher, monitor
        and planner when it has them (the Query Scheduler); baseline
        controllers yield a world with only the engine-level components.
        """
        controller = bundle.controller
        return ControlLoopWorld(
            sim=bundle.sim,
            engine=bundle.engine,
            classes=bundle.classes,
            config=bundle.config,
            patroller=bundle.patroller,
            dispatcher=getattr(controller, "dispatcher", None),
            monitor=getattr(controller, "monitor", None),
            planner=getattr(controller, "planner", None),
        )


# ----------------------------------------------------------------------
# The core suite
# ----------------------------------------------------------------------
def _check_dispatcher_accounting(world: ControlLoopWorld):
    dispatcher = world.dispatcher
    for service_class in world.controlled_classes():
        name = service_class.name
        queries = dispatcher.in_flight_queries(name)
        true_cost = sum(q.estimated_cost for q in queries)
        cost = dispatcher.in_flight_cost(name)
        count = dispatcher.in_flight_count(name)
        if count != len(queries):
            return "class {!r}: count {} but {} in-flight queries".format(
                name, count, len(queries)
            )
        if abs(cost - true_cost) > _COST_TOLERANCE * max(1.0, true_cost):
            return "class {!r}: cost {:.6f} but in-flight queries sum to {:.6f}".format(
                name, cost, true_cost
            )
    return True


def _check_engine_agreement(world: ControlLoopWorld):
    dispatcher = world.dispatcher
    controlled = {c.name for c in world.controlled_classes()}
    in_flight = {
        name: {q.query_id for q in dispatcher.in_flight_queries(name)}
        for name in controlled
    }
    # Every dispatcher-routed statement the engine is executing must still
    # be on the dispatcher's books (queue_time distinguishes routed queries
    # from bypassing clients sharing the engine).
    for query in world.engine.executing_snapshot():
        if query.class_name not in controlled or query.queue_time is None:
            continue
        if query.query_id not in in_flight[query.class_name]:
            return "engine executes query {} of class {!r} unknown to dispatcher".format(
                query.query_id, query.class_name
            )
    # And every in-flight query the dispatcher believes is executing must
    # actually be executing in the engine — and a finished statement must
    # not linger on the dispatcher's books (dropped completion callback).
    executing = {q.query_id for q in world.engine.executing_snapshot()}
    for name in controlled:
        for query in dispatcher.in_flight_queries(name):
            if query.state == QueryState.EXECUTING and query.query_id not in executing:
                return "dispatcher holds query {} of class {!r} as executing; engine disagrees".format(
                    query.query_id, name
                )
            if query.state in (QueryState.COMPLETED, QueryState.CANCELLED):
                return "dispatcher still holds {} query {} of class {!r} in flight".format(
                    query.state.name.lower(), query.query_id, name
                )
    return True


def _check_plan_limits_nonnegative(world: ControlLoopWorld):
    for name, limit in world.dispatcher.plan.items():
        if limit < 0 or math.isnan(limit):
            return "class {!r} has cost limit {}".format(name, limit)
    return True


def _check_plan_spends_system_limit(world: ControlLoopWorld):
    plan = world.dispatcher.plan
    total = plan.total_allocated
    system = plan.system_cost_limit
    # Grid quantisation may legitimately leave up to one grid step per
    # class unallocated; anything beyond that is a solver/plan bug.
    grid = (
        world.config.planner.grid_timerons if world.config is not None else 1_000.0
    )
    tolerance = max(grid * max(1, len(world.classes)), _COST_TOLERANCE)
    if total > system * (1 + _COST_TOLERANCE):
        return "limits sum to {:.1f} > system cost limit {:.1f}".format(total, system)
    if total < system - tolerance:
        return "limits sum to {:.1f}, stranding {:.1f} of the {:.1f} system limit".format(
            total, system - total, system
        )
    return True


def _check_monitor_open_is_live(world: ControlLoopWorld):
    for query in world.monitor.open_snapshot():
        if query.state in (QueryState.COMPLETED, QueryState.CANCELLED):
            return "query {} of class {!r} is {} but still tracked as open".format(
                query.query_id, query.class_name, query.state.name
            )
        if query.submit_time is None:
            return "query {} of class {!r} tracked as open but never submitted".format(
                query.query_id, query.class_name
            )
    return True


def _check_class_conservation(world: ControlLoopWorld):
    dispatcher = world.dispatcher
    for service_class in world.controlled_classes():
        name = service_class.name
        enqueued = dispatcher.enqueued_count(name)
        accounted = (
            dispatcher.queue_length(name)
            + dispatcher.queue_cancelled_count(name)
            + dispatcher.released_count(name)
        )
        if enqueued != accounted:
            return (
                "class {!r}: {} enqueued but queue+queue_cancelled+released "
                "accounts for {}".format(name, enqueued, accounted)
            )
        released = dispatcher.released_count(name)
        settled = (
            dispatcher.in_flight_count(name)
            + dispatcher.completed_count(name)
            + dispatcher.cancelled_count(name)
        )
        if released != settled:
            return (
                "class {!r}: {} released but in_flight+completed+cancelled "
                "accounts for {}".format(name, released, settled)
            )
    return True


def _check_velocity_range(world: ControlLoopWorld):
    for service_class in world.classes:
        if service_class.kind != "olap":
            continue
        measurement = world.monitor.retained_measurement(service_class.name)
        if measurement is None or measurement.metric != "velocity":
            continue
        value = measurement.value
        if math.isnan(value) or not 0.0 <= value <= 1.0:
            return "class {!r} reports velocity {}".format(service_class.name, value)
    return True


def _check_oltp_slope_band(world: ControlLoopWorld):
    model = world.oltp_model
    if model is None:
        return True
    slope = model.slope  # raises on corrupted regression state -> violation
    steepest, shallowest = model.slope_bounds()
    if math.isnan(slope) or not steepest <= slope <= shallowest:
        return "slope {} outside clamp band [{}, {}]".format(
            slope, steepest, shallowest
        )
    return True


def core_invariants(world: ControlLoopWorld) -> InvariantRegistry:
    """The built-in invariant suite for ``world``.

    Only invariants whose subject components exist are registered, so the
    same suite attaches to a full Query Scheduler or to a baseline bundle.
    """
    registry = InvariantRegistry()
    if world.dispatcher is not None:
        registry.register(
            Invariant(
                name="dispatcher_in_flight_consistent",
                check=_check_dispatcher_accounting,
                message=(
                    "the dispatcher's incremental in-flight cost/count has "
                    "drifted from its own released-query set"
                ),
                severity=Severity.CRITICAL,
            )
        )
        registry.register(
            Invariant(
                name="dispatcher_engine_agreement",
                check=_check_engine_agreement,
                message=(
                    "the dispatcher's in-flight set disagrees with the "
                    "engine's executing set"
                ),
                severity=Severity.CRITICAL,
            )
        )
        registry.register(
            Invariant(
                name="plan_limits_nonnegative",
                check=_check_plan_limits_nonnegative,
                message="the active plan contains a negative class cost limit",
                severity=Severity.CRITICAL,
            )
        )
        registry.register(
            Invariant(
                name="plan_spends_system_limit",
                check=_check_plan_spends_system_limit,
                message=(
                    "the active plan's class limits do not add up to the "
                    "system cost limit (beyond grid quantisation slack)"
                ),
                severity=Severity.ERROR,
            )
        )
        registry.register(
            Invariant(
                name="class_conservation",
                check=_check_class_conservation,
                message=(
                    "per-class query conservation is broken: enqueued != "
                    "queued + queue-cancelled + released, or released != "
                    "in-flight + completed + cancelled"
                ),
                severity=Severity.CRITICAL,
            )
        )
    if world.monitor is not None:
        registry.register(
            Invariant(
                name="monitor_open_is_live",
                check=_check_monitor_open_is_live,
                message=(
                    "the monitor tracks a completed or cancelled query as "
                    "still open (stale-entry leak)"
                ),
                severity=Severity.ERROR,
            )
        )
        registry.register(
            Invariant(
                name="velocity_in_unit_interval",
                check=_check_velocity_range,
                message="a measured OLAP velocity left the [0, 1] interval",
                severity=Severity.ERROR,
            )
        )
    if world.oltp_model is not None:
        registry.register(
            Invariant(
                name="oltp_slope_in_clamp_band",
                check=_check_oltp_slope_band,
                message=(
                    "the OLTP regression slope left its clamp band (or the "
                    "regression state is corrupted)"
                ),
                severity=Severity.ERROR,
            )
        )
    return registry


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
class ValidationHarness:
    """Evaluates an invariant registry against the live loop.

    Attach with :meth:`on_plan` as a plan listener (after the telemetry
    layer, so the current interval's record exists) or call :meth:`check`
    directly at any simulation time.
    """

    def __init__(
        self,
        world: ControlLoopWorld,
        registry: Optional[InvariantRegistry] = None,
        mode: str = "warn",
        store: Optional["TelemetryStore"] = None,  # noqa: F821
    ) -> None:
        if mode not in MODES:
            raise SchedulingError(
                "unknown harness mode {!r}; expected one of {}".format(mode, MODES)
            )
        self.world = world
        self.registry = registry if registry is not None else core_invariants(world)
        self.mode = mode
        self.store = store
        self.violations: List[Violation] = []
        self.checks_run = 0

    def on_plan(self, record: PlanRecord) -> None:
        """Plan-listener hook: validate at a control-interval boundary."""
        self.check(now=record.time)

    def check(self, now: Optional[float] = None) -> List[Violation]:
        """Run every invariant now; record (and maybe raise) violations.

        Violations are appended to the harness's log and, when the current
        telemetry record carries the same timestamp (i.e. the check runs at
        a control-interval boundary), embedded into that record so they
        ride along in exports and ``repro trace``.  In strict mode any
        violation of severity ERROR or above raises
        :class:`InvariantViolation` after recording.
        """
        if self.mode == "off":
            return []
        if now is None:
            now = self.world.now
        self.checks_run += 1
        found = self.registry.evaluate(self.world, now=now)
        if not found:
            return []
        self.violations.extend(found)
        if self.store is not None:
            last = self.store.last
            if last is not None and last.time == now:
                last.violations.extend(v.to_dict() for v in found)
        if self.mode == "strict":
            fatal = [v for v in found if v.severity >= Severity.ERROR]
            if fatal:
                raise InvariantViolation(
                    "; ".join(v.describe() for v in fatal)
                )
        return found


def attach_harness(
    bundle: "SimulationBundle",  # noqa: F821
    mode: str = "warn",
    registry: Optional[InvariantRegistry] = None,
) -> Optional[ValidationHarness]:
    """Wire a validation harness into an assembled experiment bundle.

    With a Query Scheduler controller the harness subscribes as the *last*
    plan listener, so it runs after the telemetry layer has recorded the
    interval and can embed violations into that record.  Other controllers
    get a recurring check at the configured control interval.  Returns the
    harness, or None when ``mode`` is ``"off"``.
    """
    if mode not in MODES:
        raise SchedulingError(
            "unknown harness mode {!r}; expected one of {}".format(mode, MODES)
        )
    if mode == "off":
        return None
    world = ControlLoopWorld.from_bundle(bundle)
    controller = bundle.controller
    store = None
    telemetry = getattr(controller, "telemetry", None)
    if telemetry is not None:
        store = telemetry.store
    harness = ValidationHarness(world, registry=registry, mode=mode, store=store)
    if world.planner is not None:
        world.planner.add_plan_listener(harness.on_plan)
    else:
        interval = bundle.config.planner.control_interval

        def _periodic() -> None:
            harness.check()
            bundle.sim.schedule(interval, _periodic, label="validation:check")

        bundle.sim.schedule(interval, _periodic, label="validation:check")
    return harness
