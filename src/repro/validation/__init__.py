"""Runtime validation: invariants over the live control loop.

The closed loop of Monitor → Planner → Solver → Dispatcher adapts *around*
internal accounting bugs instead of failing on them, so this package keeps
an explicit oracle: a registry of named invariants evaluated against the
live components at every control-interval boundary.  See
docs/VALIDATION.md for the authoring guide and ``repro check`` for the CLI
entry point.
"""

from repro.validation.harness import (
    MODES,
    ControlLoopWorld,
    ValidationHarness,
    attach_harness,
    core_invariants,
)
from repro.validation.invariants import (
    Invariant,
    InvariantRegistry,
    Severity,
    Violation,
)

__all__ = [
    "MODES",
    "ControlLoopWorld",
    "Invariant",
    "InvariantRegistry",
    "Severity",
    "ValidationHarness",
    "Violation",
    "attach_harness",
    "core_invariants",
]
