"""Invariants: named, severity-ranked self-consistency rules.

An :class:`Invariant` is a rule that must always hold over the live control
loop — the oracle that tells a long-running controller its internal state
still agrees with the engine's ground truth.  Anatomy (see
docs/VALIDATION.md for the authoring guide):

========  ==============================================================
field     purpose
========  ==============================================================
name      unique identifier, used in violation reports and telemetry
check     function of the world; True = holds, False/str = violated
message   human-readable explanation of what a violation means
severity  how serious a violation is (WARNING / ERROR / CRITICAL)
========  ==============================================================

The ``check`` callable receives a *world* (any object exposing the live
components — see :class:`~repro.validation.harness.ControlLoopWorld`) and
returns ``True`` when the invariant holds.  Returning ``False`` records a
violation with the static ``message``; returning a non-empty string records
a violation with that string as extra detail (use it to name the class or
quantity that disagreed).  A check that *raises* is itself a violation —
corrupted state frequently breaks the very code that inspects it, and an
oracle must not let that pass silently.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Union

from repro.errors import SchedulingError


class Severity(enum.IntEnum):
    """How serious an invariant violation is.

    ``WARNING`` marks drift worth surfacing but survivable; ``ERROR`` marks
    state the controller cannot be trusted with; ``CRITICAL`` marks
    corruption that invalidates the run.  Strict mode raises from ERROR up.
    """

    WARNING = 1
    ERROR = 2
    CRITICAL = 3


#: What a check may return: True (holds), False (violated, use the static
#: message) or a non-empty string (violated, with dynamic detail).
CheckResult = Union[bool, str]


@dataclass(frozen=True)
class Invariant:
    """One named self-consistency rule over the live control loop."""

    name: str
    check: Callable[[object], CheckResult]
    message: str
    severity: Severity = Severity.ERROR

    def __post_init__(self) -> None:
        if not self.name:
            raise SchedulingError("an invariant needs a non-empty name")
        if not callable(self.check):
            raise SchedulingError(
                "invariant {!r} needs a callable check".format(self.name)
            )


@dataclass(frozen=True)
class Violation:
    """One observed failure of a named invariant."""

    name: str
    message: str
    severity: Severity
    time: float
    detail: Optional[str] = None

    def describe(self) -> str:
        """One human-readable line for reports and exceptions."""
        text = "[{}] {} at t={:.1f}: {}".format(
            self.severity.name, self.name, self.time, self.message
        )
        if self.detail:
            text += " ({})".format(self.detail)
        return text

    def to_dict(self) -> Dict:
        """JSON-ready representation (embedded in telemetry records)."""
        return {
            "name": self.name,
            "message": self.message,
            "severity": self.severity.name.lower(),
            "time": self.time,
            "detail": self.detail,
        }


class InvariantRegistry:
    """An ordered, name-unique collection of invariants."""

    def __init__(self, invariants: Optional[List[Invariant]] = None) -> None:
        self._invariants: List[Invariant] = []
        self._names: Dict[str, Invariant] = {}
        for invariant in invariants or []:
            self.register(invariant)

    def register(self, invariant: Invariant) -> Invariant:
        """Add one invariant; duplicate names are rejected."""
        if invariant.name in self._names:
            raise SchedulingError(
                "invariant {!r} registered twice".format(invariant.name)
            )
        self._invariants.append(invariant)
        self._names[invariant.name] = invariant
        return invariant

    @property
    def names(self) -> List[str]:
        """Registered invariant names, in registration order."""
        return [invariant.name for invariant in self._invariants]

    def get(self, name: str) -> Invariant:
        """Look an invariant up by name."""
        try:
            return self._names[name]
        except KeyError:
            raise SchedulingError("no invariant named {!r}".format(name))

    def __len__(self) -> int:
        return len(self._invariants)

    def __iter__(self) -> Iterator[Invariant]:
        return iter(self._invariants)

    def evaluate(self, world: object, now: float = 0.0) -> List[Violation]:
        """Check every invariant against ``world``; return the violations.

        A check that raises is reported as a violation of that invariant
        (with the exception in the detail) rather than aborting the sweep:
        the remaining invariants still run, so one corrupted subsystem
        cannot hide drift in another.
        """
        violations: List[Violation] = []
        for invariant in self._invariants:
            try:
                result = invariant.check(world)
            except Exception as error:  # noqa: BLE001 - survive broken state
                violations.append(
                    Violation(
                        name=invariant.name,
                        message=invariant.message,
                        severity=invariant.severity,
                        time=now,
                        detail="check raised {}: {}".format(
                            type(error).__name__, error
                        ),
                    )
                )
                continue
            if result is True:
                continue
            violations.append(
                Violation(
                    name=invariant.name,
                    message=invariant.message,
                    severity=invariant.severity,
                    time=now,
                    detail=result if isinstance(result, str) and result else None,
                )
            )
        return violations
