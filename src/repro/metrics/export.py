"""Result export: JSON and CSV serialisation of experiment outcomes.

Downstream users want the per-period series and plan traces out of the
simulator and into their own tooling; these helpers produce plain
structures (JSON-ready dicts, CSV text) from a
:class:`~repro.experiments.runner.ExperimentResult`.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Dict, Optional

if TYPE_CHECKING:  # avoid a circular import; the functions duck-type anyway
    from repro.experiments.runner import ExperimentResult


def result_to_dict(result: "ExperimentResult") -> Dict:
    """Flatten an experiment result into a JSON-serialisable dict."""
    classes = []
    for service_class in result.classes:
        series = result.collector.performance_series(service_class)
        classes.append(
            {
                "name": service_class.name,
                "kind": service_class.kind,
                "metric": service_class.goal.metric,
                "goal": service_class.goal.target,
                "importance": service_class.importance,
                "per_period": series,
                "attainment": result.collector.goal_attainment(service_class),
                "throughput_per_period": result.collector.metric_series(
                    service_class.name, "throughput"
                ),
                "wait_time_per_period": result.collector.metric_series(
                    service_class.name, "wait_time"
                ),
                "execution_time_per_period": result.collector.metric_series(
                    service_class.name, "execution_time"
                ),
                "response_p95_per_period": result.collector.metric_series(
                    service_class.name, "response_p95"
                ),
            }
        )
    plans = {
        service_class.name: result.collector.plan_period_means(service_class.name)
        for service_class in result.classes
    }
    payload = {
        "controller": result.controller_name,
        "seed": result.config.seed,
        "system_cost_limit": result.config.system_cost_limit,
        "period_seconds": result.schedule.period_seconds,
        "num_periods": result.schedule.num_periods,
        "total_completions": result.collector.total_completions,
        "classes": classes,
        "plan_period_means": plans,
    }
    telemetry = result.extras.get("telemetry")
    if telemetry is not None:
        payload["telemetry"] = {
            "intervals": len(telemetry),
            "prediction_error": {
                name: summary.to_dict()
                for name, summary in telemetry.prediction_error_summary().items()
            },
            "dispatcher_balance": telemetry.dispatcher_balance(),
            "violations": telemetry.violations(),
            "overhead": telemetry.overhead_summary(),
        }
    harness = result.extras.get("validation")
    if harness is not None:
        payload["validation"] = {
            "mode": harness.mode,
            "checks_run": harness.checks_run,
            "invariants": harness.registry.names,
            "violations": [v.to_dict() for v in harness.violations],
        }
    return payload


def result_to_json(result: "ExperimentResult", indent: Optional[int] = 2) -> str:
    """JSON text for :func:`result_to_dict`."""
    return json.dumps(result_to_dict(result), indent=indent)


def result_to_csv(result: "ExperimentResult") -> str:
    """Per-period CSV: one row per (period, class) with all metrics."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        [
            "period",
            "class",
            "metric",
            "goal",
            "value",
            "meets_goal",
            "throughput",
            "mean_plan_limit",
            "wait_time",
            "execution_time",
            "response_p95",
        ]
    )

    def _fmt(value: Optional[float]) -> str:
        return "" if value is None else "{:.6f}".format(value)

    for service_class in result.classes:
        series = result.collector.performance_series(service_class)
        throughput = result.collector.metric_series(service_class.name, "throughput")
        plan_means = result.collector.plan_period_means(service_class.name)
        wait = result.collector.metric_series(service_class.name, "wait_time")
        execution = result.collector.metric_series(
            service_class.name, "execution_time"
        )
        p95 = result.collector.metric_series(service_class.name, "response_p95")
        for period in range(result.schedule.num_periods):
            value = series[period]
            meets: Optional[bool] = None
            if value is not None:
                meets = service_class.goal.satisfied(value)
            writer.writerow(
                [
                    period + 1,
                    service_class.name,
                    service_class.goal.metric,
                    service_class.goal.target,
                    _fmt(value),
                    "" if meets is None else meets,
                    _fmt(throughput[period]),
                    "" if plan_means[period] is None else "{:.1f}".format(
                        plan_means[period]
                    ),
                    _fmt(wait[period]),
                    _fmt(execution[period]),
                    _fmt(p95[period]),
                ]
            )
    return buffer.getvalue()


def save_result(result: "ExperimentResult", path: str) -> None:
    """Write a result to ``path`` as JSON (.json) or CSV (anything else)."""
    text = result_to_json(result) if path.endswith(".json") else result_to_csv(result)
    with open(path, "w") as handle:
        handle.write(text)


def load_result_dict(path: str) -> Dict:
    """Read back a JSON result file as a plain dict."""
    with open(path) as handle:
        return json.load(handle)
