"""Metric collection and reporting for experiments."""

from repro.metrics.collector import MetricsCollector, PeriodClassMetrics
from repro.metrics.export import (
    result_to_csv,
    result_to_dict,
    result_to_json,
    save_result,
)
from repro.metrics.report import (
    format_figure_series,
    format_period_table,
    format_plan_table,
    format_prediction_summary,
    format_summary,
    render_series_chart,
)
from repro.metrics.telemetry import (
    ControlIntervalRecord,
    ControllerTelemetry,
    DispatcherClassTelemetry,
    MeasurementTelemetry,
    PredictionErrorSummary,
    PredictionTelemetry,
    SolverTelemetry,
    TelemetryStore,
)

__all__ = [
    "ControlIntervalRecord",
    "ControllerTelemetry",
    "DispatcherClassTelemetry",
    "MeasurementTelemetry",
    "MetricsCollector",
    "PeriodClassMetrics",
    "PredictionErrorSummary",
    "PredictionTelemetry",
    "SolverTelemetry",
    "TelemetryStore",
    "format_period_table",
    "format_figure_series",
    "format_plan_table",
    "format_prediction_summary",
    "format_summary",
    "render_series_chart",
    "result_to_dict",
    "result_to_json",
    "result_to_csv",
    "save_result",
]
