"""Per-period, per-class metric aggregation.

The paper reports everything per 8-minute period: the per-class query
velocity or average response time of Figures 4-6, and the per-class cost
limits of Figure 7.  :class:`MetricsCollector` subscribes to engine
completions (and optionally to planner decisions) and buckets by the
period in which each query *finished*.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.planner import PlanRecord
from repro.core.service_class import ServiceClass
from repro.runtime import ExecutionEngine
from repro.dbms.query import Query
from repro.errors import MetricsError
from repro.sim.stats import Histogram, WelfordAccumulator
from repro.workloads.schedule import PeriodSchedule

#: Response-time histogram range for tail-latency queries (seconds).
_RT_HISTOGRAM_RANGE = (0.0, 600.0)
_RT_HISTOGRAM_BINS = 240

#: Metric names :meth:`MetricsCollector.metric_series` understands.
METRIC_NAMES = (
    "velocity",
    "response_time",
    "execution_time",
    "wait_time",
    "throughput",
    "response_p95",
    "response_p99",
)


class PeriodClassMetrics:
    """Aggregates for one (period, class) cell."""

    __slots__ = (
        "completions",
        "velocity",
        "response_time",
        "execution_time",
        "wait_time",
        "response_histogram",
    )

    def __init__(self) -> None:
        self.completions = 0
        self.velocity = WelfordAccumulator()
        self.response_time = WelfordAccumulator()
        self.execution_time = WelfordAccumulator()
        self.wait_time = WelfordAccumulator()
        self.response_histogram = Histogram(
            _RT_HISTOGRAM_RANGE[0], _RT_HISTOGRAM_RANGE[1], bins=_RT_HISTOGRAM_BINS
        )

    def add(self, query: Query) -> None:
        """Fold a completed query into the cell."""
        self.completions += 1
        # Single-pass over the query's timestamps: the response/execution/
        # velocity/wait properties each re-derive these differences, which
        # adds up at a hundred thousand completions per run.  The float
        # arithmetic below is identical to the Query properties'.
        response = query.response_time
        execution = query.execution_time
        velocity = 1.0 if response <= 0 else min(1.0, execution / response)
        # The four accumulator updates are Welford's recurrence inlined
        # (state and arithmetic identical to WelfordAccumulator.add): four
        # method calls per completion are measurable at replication scale.
        for acc, value in (
            (self.velocity, velocity),
            (self.response_time, response),
            (self.execution_time, execution),
            (self.wait_time, response - execution),
        ):
            acc.count = count = acc.count + 1
            acc.total += value
            delta = value - acc._mean
            acc._mean = mean = acc._mean + delta / count
            acc._m2 += delta * (value - mean)
            if value < acc.minimum:
                acc.minimum = value
            if value > acc.maximum:
                acc.maximum = value
        self.response_histogram.add(response)

    def response_percentile(self, q: float) -> float:
        """Approximate response-time percentile for this cell."""
        return self.response_histogram.percentile(q)


class MetricsCollector:
    """Buckets completions and plan decisions by schedule period."""

    def __init__(
        self,
        engine: ExecutionEngine,
        schedule: PeriodSchedule,
        classes: List[ServiceClass],
    ) -> None:
        self.schedule = schedule
        self.classes = list(classes)
        self._cells: Dict[Tuple[int, str], PeriodClassMetrics] = {}
        self._plan_points: List[Tuple[float, Dict[str, float]]] = []
        self._total_completions = 0
        engine.add_completion_listener(self.on_completion)

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def on_completion(self, query: Query) -> None:
        """Engine completion hook."""
        if query.finish_time is None:
            return
        period = self.schedule.period_at(query.finish_time)
        key = (period, query.class_name)
        cell = self._cells.get(key)
        if cell is None:
            cell = PeriodClassMetrics()
            self._cells[key] = cell
        cell.add(query)
        self._total_completions += 1

    def on_plan(self, record: PlanRecord) -> None:
        """Planner decision hook (register via planner.add_plan_listener)."""
        self._plan_points.append((record.time, record.plan.as_dict()))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def total_completions(self) -> int:
        """Total completed queries observed."""
        return self._total_completions

    def cell(self, period: int, class_name: str) -> Optional[PeriodClassMetrics]:
        """The aggregate for one (period, class), or None if empty."""
        return self._cells.get((period, class_name))

    def metric_series(self, class_name: str, metric: str) -> List[Optional[float]]:
        """Per-period series of a metric for one class.

        ``metric`` is one of ``velocity``, ``response_time``,
        ``execution_time``, ``wait_time`` (period means), ``throughput``
        (completions per second), or ``response_p95`` / ``response_p99``
        (tail latency).  Periods with no completions yield None.  An
        unknown metric raises :class:`~repro.errors.MetricsError` naming
        the valid choices.
        """
        if metric not in METRIC_NAMES:
            raise MetricsError(
                "unknown metric {!r}; expected one of {}".format(
                    metric, ", ".join(METRIC_NAMES)
                )
            )
        series: List[Optional[float]] = []
        for period in range(self.schedule.num_periods):
            cell = self._cells.get((period, class_name))
            if cell is None or cell.completions == 0:
                series.append(None)
                continue
            if metric == "throughput":
                series.append(cell.completions / self.schedule.period_seconds)
            elif metric == "response_p95":
                series.append(cell.response_percentile(95.0))
            elif metric == "response_p99":
                series.append(cell.response_percentile(99.0))
            else:
                series.append(getattr(cell, metric).mean)
        return series

    def performance_series(self, service_class: ServiceClass) -> List[Optional[float]]:
        """The class's goal metric per period (velocity or response time)."""
        metric = "velocity" if service_class.kind == "olap" else "response_time"
        return self.metric_series(service_class.name, metric)

    def goal_attainment(self, service_class: ServiceClass) -> float:
        """Fraction of (non-empty) periods in which the class met its goal."""
        series = self.performance_series(service_class)
        observed = [v for v in series if v is not None]
        if not observed:
            return 0.0
        met = sum(1 for v in observed if service_class.goal.satisfied(v))
        return met / len(observed)

    def completions_by_class(self) -> Dict[str, int]:
        """Total completed queries per class (zero for idle classes).

        The weights for cross-run/cross-shard attainment aggregation —
        see :func:`repro.metrics.aggregate.weighted_attainment`.
        """
        totals = {service_class.name: 0 for service_class in self.classes}
        for (_, class_name), cell in self._cells.items():
            totals[class_name] = totals.get(class_name, 0) + cell.completions
        return totals

    def class_response_histogram(self, class_name: str) -> Optional[Histogram]:
        """One response-time histogram over all periods of a class.

        Merges the per-period cell histograms (without mutating them);
        ``None`` when the class completed nothing.
        """
        from repro.metrics.aggregate import merge_histograms

        return merge_histograms(
            [
                cell.response_histogram
                for (_, name), cell in sorted(self._cells.items())
                if name == class_name
            ]
        )

    def plan_series(self, class_name: str) -> List[Tuple[float, float]]:
        """(time, cost limit) points for one class (Figure 7's raw data)."""
        return [
            (time, limits[class_name])
            for time, limits in self._plan_points
            if class_name in limits
        ]

    def plan_period_means(self, class_name: str) -> List[Optional[float]]:
        """Per-period mean cost limit of a class (Figure 7, period view)."""
        sums = [0.0] * self.schedule.num_periods
        counts = [0] * self.schedule.num_periods
        for time, limits in self._plan_points:
            if class_name not in limits:
                continue
            period = self.schedule.period_at(time)
            sums[period] += limits[class_name]
            counts[period] += 1
        return [
            (sums[i] / counts[i]) if counts[i] else None
            for i in range(self.schedule.num_periods)
        ]
