"""ASCII reporting of experiment results.

The benchmark harness prints the same rows/series the paper's figures show;
these helpers keep that formatting in one place.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.core.service_class import ServiceClass
from repro.metrics.collector import MetricsCollector

if TYPE_CHECKING:
    from repro.metrics.telemetry import PredictionErrorSummary


def _fmt(value: Optional[float], width: int = 8, digits: int = 3) -> str:
    if value is None:
        return " " * (width - 1) + "-"
    return "{:>{w}.{d}f}".format(value, w=width, d=digits)


def format_period_table(
    collector: MetricsCollector,
    classes: Sequence[ServiceClass],
    title: str = "",
) -> str:
    """Per-period goal-metric table: one row per period, one column per class."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "period |"
    for service_class in classes:
        metric = "vel" if service_class.kind == "olap" else "rt(s)"
        header += " {:>8} {:>5} |".format(service_class.name, metric)
    lines.append(header)
    lines.append("-" * len(header))
    for period in range(collector.schedule.num_periods):
        row = "{:>6} |".format(period + 1)
        for service_class in classes:
            series = collector.performance_series(service_class)
            value = series[period]
            met = ""
            if value is not None:
                met = "ok" if service_class.goal.satisfied(value) else "MISS"
            row += " {} {:>5} |".format(_fmt(value), met)
        lines.append(row)
    return "\n".join(lines)


def format_summary(
    collector: MetricsCollector,
    classes: Sequence[ServiceClass],
    title: str = "",
) -> str:
    """Per-class goal attainment summary."""
    lines: List[str] = []
    if title:
        lines.append(title)
    for service_class in classes:
        series = [v for v in collector.performance_series(service_class) if v is not None]
        mean = sum(series) / len(series) if series else float("nan")
        lines.append(
            "  {:<8} goal={:<6} mean={:<8.3f} attainment={:>5.0%}".format(
                service_class.name,
                service_class.goal.target,
                mean,
                collector.goal_attainment(service_class),
            )
        )
    return "\n".join(lines)


def format_plan_table(
    collector: MetricsCollector,
    class_names: Sequence[str],
    title: str = "",
) -> str:
    """Per-period mean class cost limits (the Figure 7 view)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "period |" + "".join(" {:>10} |".format(name) for name in class_names)
    lines.append(header)
    lines.append("-" * len(header))
    means = {name: collector.plan_period_means(name) for name in class_names}
    for period in range(collector.schedule.num_periods):
        row = "{:>6} |".format(period + 1)
        for name in class_names:
            value = means[name][period]
            row += " {} |".format(_fmt(value, width=10, digits=0))
        lines.append(row)
    return "\n".join(lines)


def format_prediction_summary(
    summaries: Dict[str, "PredictionErrorSummary"],
    title: str = "",
) -> str:
    """Per-class one-step prediction-error table from controller telemetry.

    ``mean_err`` is signed (positive = the model under-predicted the
    realised value); ``mean_|err|`` is the magnitude that matters for
    control quality.
    """
    lines: List[str] = []
    if title:
        lines.append(title)
    if not summaries:
        lines.append("(no prediction telemetry)")
        return "\n".join(lines)
    header = "{:>10} | {:>9} | {:>10} | {:>10}".format(
        "class", "intervals", "mean_|err|", "mean_err"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name in sorted(summaries):
        summary = summaries[name]
        lines.append(
            "{:>10} | {:>9} | {} | {}".format(
                name,
                summary.count,
                _fmt(summary.mean_abs_error, width=10, digits=4),
                _fmt(summary.mean_error, width=10, digits=4),
            )
        )
    return "\n".join(lines)


def render_series_chart(
    series: Dict[str, Sequence[Optional[float]]],
    height: int = 12,
    goal_lines: Optional[Dict[str, float]] = None,
    title: str = "",
) -> str:
    """Render one or more per-period series as an ASCII chart.

    Each series gets a marker (its name's first letter, upper-cased per
    series order); optional ``goal_lines`` draw a ``-`` row at a series'
    goal value.  Values are scaled to a shared y-axis; None values leave
    gaps.  Purely cosmetic but makes bench logs reviewable at a glance.
    """
    if height < 3:
        raise ValueError("chart height must be >= 3")
    lines: List[str] = []
    if title:
        lines.append(title)
    values = [
        v for s in series.values() for v in s if v is not None
    ]
    if not values:
        lines.append("(no data)")
        return "\n".join(lines)
    lo = min(values + list((goal_lines or {}).values()))
    hi = max(values + list((goal_lines or {}).values()))
    if hi <= lo:
        hi = lo + 1.0
    width = max(len(s) for s in series.values())
    markers = {}
    for index, name in enumerate(series):
        markers[name] = chr(ord("A") + (index % 26))

    def row_of(value: float) -> int:
        scaled = (value - lo) / (hi - lo)
        return min(height - 1, max(0, int(round(scaled * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]
    for name, goal in (goal_lines or {}).items():
        r = row_of(goal)
        for column in range(width):
            if grid[height - 1 - r][column] == " ":
                grid[height - 1 - r][column] = "-"
    for name, points in series.items():
        for column, value in enumerate(points):
            if value is None:
                continue
            r = row_of(value)
            grid[height - 1 - r][column] = markers[name]
    for index, row in enumerate(grid):
        level = hi - (hi - lo) * index / (height - 1)
        lines.append("{:>8.3f} |{}".format(level, "".join(row)))
    lines.append(" " * 9 + "+" + "-" * width)
    legend = "  ".join("{}={}".format(markers[name], name) for name in series)
    lines.append(" " * 10 + legend)
    return "\n".join(lines)


def format_figure_series(
    series: Dict[str, Sequence[Optional[float]]],
    x_label: str = "period",
    title: str = "",
    digits: int = 3,
) -> str:
    """Generic multi-series table keyed by series name."""
    lines: List[str] = []
    if title:
        lines.append(title)
    names = list(series)
    length = max((len(s) for s in series.values()), default=0)
    header = "{:>8} |".format(x_label) + "".join(
        " {:>10} |".format(name) for name in names
    )
    lines.append(header)
    lines.append("-" * len(header))
    for index in range(length):
        row = "{:>8} |".format(index + 1)
        for name in names:
            values = series[name]
            value = values[index] if index < len(values) else None
            row += " {} |".format(_fmt(value, width=10, digits=digits))
        lines.append(row)
    return "\n".join(lines)
