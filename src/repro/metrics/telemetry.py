"""Controller telemetry: one structured record per control interval.

The Query Scheduler is a closed-loop controller (Monitor -> Planner/Solver
-> Dispatcher), and a controller whose per-interval decisions are invisible
cannot be debugged or trusted — accounting leaks in exactly this loop went
unnoticed until it was traced.  :class:`ControllerTelemetry` attaches to the
Scheduling Planner and, at every control interval, snapshots the whole loop
into one :class:`ControlIntervalRecord`:

* **measurements** — each class's monitored value, sample count and
  staleness (how old the freshest sample is);
* **predictions** — what the performance models promised last interval
  versus what was realised this interval (the per-class prediction error),
  plus what they promise under the plan just installed;
* **solver** — the chosen allocation, its objective score, and how many
  candidate allocations were evaluated to find it;
* **dispatcher** — per-class queue length, in-flight cost/count, and the
  released / completed / cancelled counters whose balance proves the
  accounting is leak-free.

Records accumulate in a queryable in-memory :class:`TelemetryStore` and
export as JSONL (`repro trace` on the command line).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.errors import ExportError

if TYPE_CHECKING:  # imported lazily to keep this importable from anywhere
    from repro.core.dispatcher import Dispatcher
    from repro.core.planner import PlanRecord, SchedulingPlanner
    from repro.core.service_class import ServiceClass


def _finite(value: Optional[float]) -> Optional[float]:
    """A float made JSON-safe: non-finite values become None."""
    if value is None:
        return None
    value = float(value)
    return value if math.isfinite(value) else None


@dataclass(frozen=True)
class MeasurementTelemetry:
    """One class's monitored state at a control interval."""

    metric: str  # "velocity" or "response_time"
    value: float
    sample_count: int
    staleness: float  # seconds since the measurement was taken

    def to_dict(self) -> Dict:
        """JSON-ready representation."""
        return {
            "metric": self.metric,
            "value": _finite(self.value),
            "sample_count": self.sample_count,
            "staleness": _finite(self.staleness),
        }


@dataclass(frozen=True)
class PredictionTelemetry:
    """Model prediction bookkeeping for one class at one interval.

    ``predicted`` is the model's promise under the plan just installed
    (checked against the *next* interval's measurement); ``realized`` is
    this interval's measured value; ``error`` is ``realized`` minus the
    *previous* interval's promise — the one-step prediction error.
    """

    predicted: Optional[float]
    realized: Optional[float]
    error: Optional[float]

    def to_dict(self) -> Dict:
        """JSON-ready representation."""
        return {
            "predicted": _finite(self.predicted),
            "realized": _finite(self.realized),
            "error": _finite(self.error),
        }


@dataclass(frozen=True)
class SolverTelemetry:
    """The solver's decision at one control interval."""

    allocation: Dict[str, float]
    objective: Optional[float]
    evaluations: int
    solve_calls: int
    oltp_slope: Optional[float]
    oltp_observations: Optional[int]
    #: The performance model's self-description (``model.describe()``) —
    #: name, state summary, per-class weights for learned models.
    model: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-ready representation."""
        return {
            "allocation": {name: _finite(v) for name, v in self.allocation.items()},
            "objective": _finite(self.objective),
            "evaluations": self.evaluations,
            "solve_calls": self.solve_calls,
            "oltp_slope": _finite(self.oltp_slope),
            "oltp_observations": self.oltp_observations,
            "model": self.model,
        }


@dataclass(frozen=True)
class DispatcherClassTelemetry:
    """Dispatcher accounting for one class at one control interval."""

    queue_length: int
    in_flight_cost: float
    in_flight_count: int
    released_total: int
    completed_total: int
    cancelled_total: int
    released_this_interval: int
    enqueued_total: int = 0
    queue_cancelled_total: int = 0

    def to_dict(self) -> Dict:
        """JSON-ready representation."""
        return {
            "queue_length": self.queue_length,
            "in_flight_cost": _finite(self.in_flight_cost),
            "in_flight_count": self.in_flight_count,
            "released_total": self.released_total,
            "completed_total": self.completed_total,
            "cancelled_total": self.cancelled_total,
            "released_this_interval": self.released_this_interval,
            "enqueued_total": self.enqueued_total,
            "queue_cancelled_total": self.queue_cancelled_total,
        }


@dataclass(frozen=True)
class ControlIntervalRecord:
    """Everything the control loop saw and decided in one interval.

    ``violations`` holds the invariant violations the validation harness
    observed at this interval boundary (as JSON-ready dicts; empty when the
    harness is off or the loop is consistent).  The harness appends into
    the list after the record is created, which is why the field is a
    mutable list on an otherwise frozen record.

    ``overhead`` is the controller's own wall-clock cost for this decision
    (``monitor_s``/``solver_s``/``dispatcher_s``/``total_s`` from
    ``time.perf_counter``) — real seconds spent computing, never simulated
    time.
    """

    time: float
    interval_index: int
    trigger: str  # "scheduled" or "early"
    measurements: Dict[str, MeasurementTelemetry]
    predictions: Dict[str, PredictionTelemetry]
    solver: SolverTelemetry
    dispatcher: Dict[str, DispatcherClassTelemetry]
    violations: List[Dict] = field(default_factory=list)
    overhead: Dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Flatten into a JSON-serialisable dict (one JSONL line)."""
        return {
            "time": self.time,
            "interval_index": self.interval_index,
            "trigger": self.trigger,
            "measurements": {n: m.to_dict() for n, m in self.measurements.items()},
            "predictions": {n: p.to_dict() for n, p in self.predictions.items()},
            "solver": self.solver.to_dict(),
            "dispatcher": {n: d.to_dict() for n, d in self.dispatcher.items()},
            "violations": [dict(v) for v in self.violations],
            "overhead": {k: _finite(v) for k, v in self.overhead.items()},
        }


@dataclass
class PredictionErrorSummary:
    """Across-interval prediction-error aggregate for one class."""

    class_name: str
    count: int = 0
    _abs_sum: float = field(default=0.0, repr=False)
    _sum: float = field(default=0.0, repr=False)

    def add(self, error: float) -> None:
        """Fold in one interval's prediction error."""
        self.count += 1
        self._abs_sum += abs(error)
        self._sum += error

    @property
    def mean_abs_error(self) -> float:
        """Mean absolute one-step prediction error."""
        return self._abs_sum / self.count if self.count else 0.0

    @property
    def mean_error(self) -> float:
        """Mean signed error (bias: positive = model under-predicted)."""
        return self._sum / self.count if self.count else 0.0

    def to_dict(self) -> Dict:
        """JSON-ready summary."""
        return {
            "count": self.count,
            "mean_abs_error": _finite(self.mean_abs_error),
            "mean_error": _finite(self.mean_error),
        }


class TelemetryStore:
    """Queryable in-memory sequence of control-interval records."""

    def __init__(self) -> None:
        self._records: List[ControlIntervalRecord] = []

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def append(self, record: ControlIntervalRecord) -> None:
        """Add one interval record (recorder hook)."""
        self._records.append(record)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ControlIntervalRecord]:
        return iter(self._records)

    @property
    def records(self) -> List[ControlIntervalRecord]:
        """All records in interval order (a copy)."""
        return list(self._records)

    @property
    def last(self) -> Optional[ControlIntervalRecord]:
        """The most recent record (None when empty)."""
        return self._records[-1] if self._records else None

    def between(self, start: float, end: float) -> List[ControlIntervalRecord]:
        """Records with ``start <= time <= end``."""
        return [r for r in self._records if start <= r.time <= end]

    def allocation_series(self, class_name: str) -> List[float]:
        """The class's cost limit at every interval."""
        return [
            r.solver.allocation[class_name]
            for r in self._records
            if class_name in r.solver.allocation
        ]

    def prediction_errors(self, class_name: str) -> List[float]:
        """The class's realised one-step prediction errors, in order."""
        return [
            r.predictions[class_name].error
            for r in self._records
            if class_name in r.predictions
            and r.predictions[class_name].error is not None
        ]

    def prediction_error_summary(self) -> Dict[str, PredictionErrorSummary]:
        """Per-class aggregate of one-step prediction errors."""
        summaries: Dict[str, PredictionErrorSummary] = {}
        for record in self._records:
            for name, prediction in record.predictions.items():
                if prediction.error is None:
                    continue
                summary = summaries.setdefault(name, PredictionErrorSummary(name))
                summary.add(prediction.error)
        return summaries

    def violations(self) -> List[Dict]:
        """All invariant-violation dicts across records, in interval order."""
        return [v for record in self._records for v in record.violations]

    def overhead_summary(self) -> Dict[str, Dict[str, float]]:
        """Mean/max controller wall-time per overhead section across records.

        Keys are the profiled section names (``monitor_s``, ``solver_s``,
        ``dispatcher_s``, ``total_s``); empty when no record carries
        overhead data (e.g. replayed from a pre-overhead JSONL export).
        """
        from repro.obs.profiling import summarize_overhead

        return summarize_overhead([r.overhead for r in self._records])

    def dispatcher_balance(self) -> Dict[str, Dict[str, int]]:
        """Final released/completed/cancelled/in-flight counters per class.

        In a leak-free dispatcher ``released == completed + cancelled +
        in_flight_count`` for every class — the invariant the accounting
        regression tests pin.
        """
        last = self.last
        if last is None:
            return {}
        return {
            name: {
                "released": d.released_total,
                "completed": d.completed_total,
                "cancelled": d.cancelled_total,
                "in_flight": d.in_flight_count,
                "queue_cancelled": d.queue_cancelled_total,
            }
            for name, d in last.dispatcher.items()
        }

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """All records as JSON Lines text (one record per line)."""
        return "".join(json.dumps(r.to_dict()) + "\n" for r in self._records)

    def save_jsonl(self, path: str, overwrite: bool = False) -> None:
        """Write the JSONL export to ``path``.

        Refuses to clobber an existing file unless ``overwrite=True``
        (raising :class:`~repro.errors.ExportError`): several runs — or
        several shards of one run — exporting into the same directory
        must never silently truncate each other's records.
        """
        if not overwrite and os.path.exists(path):
            raise ExportError(
                "telemetry export target {!r} already exists; pass "
                "overwrite=True to replace it".format(path)
            )
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())

    @staticmethod
    def load_jsonl(path: str) -> List[Dict]:
        """Read back a JSONL export as plain dicts."""
        with open(path) as handle:
            return [json.loads(line) for line in handle if line.strip()]


class ControllerTelemetry:
    """The recorder: subscribes to the planner, snapshots the whole loop.

    Construct with the live controller components and every subsequent
    control interval (scheduled or early-triggered) appends exactly one
    :class:`ControlIntervalRecord` to :attr:`store`.  Works with any solver
    that quacks like :class:`~repro.core.solver.PerformanceSolver`; model-
    free allocators simply yield records without objective/prediction data.
    """

    def __init__(
        self,
        planner: "SchedulingPlanner",
        dispatcher: "Dispatcher",
        solver: object,
        classes: List["ServiceClass"],
        store: Optional[TelemetryStore] = None,
    ) -> None:
        self.planner = planner
        self.dispatcher = dispatcher
        self.solver = solver
        self.classes = list(classes)
        self.store = store if store is not None else TelemetryStore()
        self._previous_predictions: Dict[str, float] = {}
        self._previous_released: Dict[str, int] = {
            c.name: 0 for c in self.classes
        }
        planner.add_plan_listener(self.record_interval)

    def record_interval(self, record: "PlanRecord") -> None:
        """Planner plan-listener hook: snapshot one control interval."""
        measurements = {
            name: MeasurementTelemetry(
                metric=m.metric,
                value=m.value,
                sample_count=m.sample_count,
                staleness=record.time - m.measured_at,
            )
            for name, m in record.measurements.items()
        }
        predictions: Dict[str, PredictionTelemetry] = {}
        class_names = set(record.predictions) | set(record.measurements)
        for name in class_names:
            realized = (
                record.measurements[name].value
                if name in record.measurements
                else None
            )
            previous = self._previous_predictions.get(name)
            error = (
                realized - previous
                if realized is not None and previous is not None
                else None
            )
            predictions[name] = PredictionTelemetry(
                predicted=record.predictions.get(name),
                realized=realized,
                error=error,
            )
        self._previous_predictions = dict(record.predictions)
        model = getattr(self.solver, "model", None)
        description = model.describe() if model is not None else {}
        solver_snapshot = SolverTelemetry(
            allocation=record.plan.as_dict(),
            objective=getattr(self.solver, "last_score", None),
            evaluations=getattr(self.solver, "last_evaluations", 0),
            solve_calls=getattr(self.solver, "solve_calls", 0),
            oltp_slope=description.get("slope"),
            oltp_observations=description.get("observations"),
            model=description,
        )
        dispatcher_snapshot: Dict[str, DispatcherClassTelemetry] = {}
        for service_class in self.classes:
            name = service_class.name
            released = self.dispatcher.released_count(name)
            dispatcher_snapshot[name] = DispatcherClassTelemetry(
                queue_length=self.dispatcher.queue_length(name),
                in_flight_cost=self.dispatcher.in_flight_cost(name),
                in_flight_count=self.dispatcher.in_flight_count(name),
                released_total=released,
                completed_total=self.dispatcher.completed_count(name),
                cancelled_total=self.dispatcher.cancelled_count(name),
                released_this_interval=released - self._previous_released[name],
                enqueued_total=self.dispatcher.enqueued_count(name),
                queue_cancelled_total=self.dispatcher.queue_cancelled_count(name),
            )
            self._previous_released[name] = released
        self.store.append(
            ControlIntervalRecord(
                time=record.time,
                interval_index=record.interval_index,
                trigger=record.trigger,
                measurements=measurements,
                predictions=predictions,
                solver=solver_snapshot,
                dispatcher=dispatcher_snapshot,
                overhead=dict(record.overhead),
            )
        )
