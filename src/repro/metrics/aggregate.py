"""Cross-run and cross-shard metric aggregation.

Combining per-run (or per-shard) aggregates is where SLO reports silently
go wrong: averaging each run's *mean* attainment weights a shard that
completed 40 queries the same as one that completed 40,000 (mean of
means).  The helpers here do the composition correctly:

* :func:`weighted_attainment` — attainment pooled by completed-query
  counts, so every completed query carries equal weight regardless of
  which run or shard it finished on;
* :func:`merge_histograms` / :func:`merge_histogram_states` — exact
  distribution composition via :meth:`~repro.sim.stats.Histogram.merge`,
  so cross-shard percentiles come from the combined mass, not from
  averaging per-shard percentiles.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Optional, Sequence, Tuple

from repro.sim.stats import Histogram

#: One aggregation input: (attainment fraction, completed-query weight).
WeightedValue = Tuple[float, float]


def weighted_attainment(pairs: Iterable[WeightedValue]) -> float:
    """Pool per-run attainment fractions by completed-query counts.

    ``pairs`` are ``(attainment, completions)`` per run/shard.  Entries
    with zero weight contribute nothing — an idle shard that completed no
    queries of a class cannot drag the class's SLO report down.  When
    *every* entry has zero weight the plain mean of the attainments is
    returned (there is nothing to weight by), and an empty input yields
    ``0.0``.
    """
    pairs = list(pairs)
    if not pairs:
        return 0.0
    total_weight = sum(weight for _, weight in pairs)
    if total_weight <= 0:
        return sum(value for value, _ in pairs) / len(pairs)
    return sum(value * weight for value, weight in pairs) / total_weight


def merge_histograms(histograms: Sequence[Histogram]) -> Optional[Histogram]:
    """Merge histograms into one fresh histogram (None for empty input).

    All inputs must share the same range and bin count (they do when they
    come from :class:`~repro.metrics.collector.MetricsCollector` cells);
    the inputs are not mutated.
    """
    merged: Optional[Histogram] = None
    for histogram in histograms:
        if merged is None:
            merged = Histogram(histogram.low, histogram.high, histogram.bins)
        merged.merge(histogram)
    return merged


def merge_histogram_states(states: Sequence[Mapping]) -> Optional[Histogram]:
    """Merge serialized histogram states (``Histogram.to_dict`` dicts).

    The form cross-process summaries carry: per-shard
    :class:`~repro.experiments.parallel.RunSummary` objects hold plain
    dict states, and the sharded report merges them back into one live
    histogram for percentile queries.
    """
    if not states:
        return None
    return merge_histograms([Histogram.from_dict(state) for state in states])
