"""Closed-loop clients.

"Each client submitted queries one after another with zero think time"
(Section 4).  A :class:`ClosedLoopClient` keeps exactly one statement in the
system at a time: it submits, waits for the completion callback, optionally
thinks, and submits again.  Clients are activated and deactivated by the
period schedule; a deactivated client finishes its in-flight statement and
then goes idle, which is how "workload intensity was controlled by the
number of clients".

Clients may additionally have *patience*: if a statement is still held by
the workload-control layer (not yet released into the engine) after
``patience`` seconds, the client cancels it through QP's cancel command and
moves on — the classic user-abandonment behaviour that workload managers
must tolerate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.dbms.query import Query, QueryState
from repro.patroller.patroller import QueryPatroller
from repro.runtime import TimerService
from repro.workloads.spec import QueryFactory, WorkloadMix


class ClosedLoopClient:
    """One interactive client connection driving one workload mix."""

    def __init__(
        self,
        sim: TimerService,
        patroller: QueryPatroller,
        factory: QueryFactory,
        mix: WorkloadMix,
        class_name: str,
        client_id: str,
        think_time: float = 0.0,
        patience: Optional[float] = None,
    ) -> None:
        if patience is not None and patience <= 0:
            raise ValueError("patience must be positive (or None)")
        self.sim = sim
        self.patroller = patroller
        self.factory = factory
        self.mix = mix
        self.class_name = class_name
        self.client_id = client_id
        self.think_time = think_time
        self.patience = patience
        self.active = False
        self.queries_submitted = 0
        self.queries_completed = 0
        self.queries_abandoned = 0
        self.queries_rejected = 0
        self._in_flight: Optional[Query] = None
        #: Optional hook fired on every completion (used by tests).
        self.on_query_complete: Optional[Callable[[Query], None]] = None
        # Event labels are fixed per client; formatting them per statement
        # shows up in profiles at replication scale.
        self._think_label = "client:{}:think".format(client_id)
        self._patience_label = "client:{}:patience".format(client_id)

    @property
    def busy(self) -> bool:
        """Whether the client has a statement in the system."""
        return self._in_flight is not None

    def activate(self) -> None:
        """Start (or resume) the submit loop."""
        if self.active:
            return
        self.active = True
        if self._in_flight is None:
            self._submit_next()

    def deactivate(self) -> None:
        """Stop submitting after the current statement (if any) completes."""
        self.active = False

    def _submit_next(self) -> None:
        query = self.factory.create(self.mix, self.class_name, self.client_id)
        query.on_complete = self._on_complete
        self._in_flight = query
        self.queries_submitted += 1
        self.patroller.submit(query)
        if self.patience is not None:
            self.sim.schedule(
                self.patience,
                lambda q=query: self._maybe_abandon(q),
                self._patience_label,
            )

    def _maybe_abandon(self, query: Query) -> None:
        if self._in_flight is not query:
            return  # already completed
        if not self.patroller.cancel(query):
            return  # already released; let it finish
        self._in_flight = None
        self.queries_abandoned += 1
        if not self.active:
            return
        if self.think_time > 0:
            self.sim.schedule(self.think_time, self._maybe_submit)
        else:
            self._submit_next()

    def _on_complete(self, query: Query) -> None:
        self._in_flight = None
        if query.state == QueryState.REJECTED:
            # Policy refused the statement (e.g. QP max-cost): the user
            # sees an error and moves on to their next request.
            self.queries_rejected += 1
        else:
            self.queries_completed += 1
            if self.on_query_complete is not None:
                self.on_query_complete(query)
        if not self.active:
            return
        if self.think_time > 0:
            self.sim.schedule(
                self.think_time,
                self._maybe_submit,
                self._think_label,
            )
        else:
            self._submit_next()

    def _maybe_submit(self) -> None:
        if self.active and self._in_flight is None:
            self._submit_next()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "ClosedLoopClient({!r}, {}, active={})".format(
            self.client_id, self.class_name, self.active
        )
