"""Workload traces: record a run's arrivals, replay them later.

A :class:`TraceRecorder` hooks the Query Patroller's submit path and
captures ``(time, class, template, demands)`` for every statement.  The
resulting :class:`WorkloadTrace` can be saved/loaded as JSON and replayed
against any controller configuration via :class:`TraceReplayer` — the
standard way to compare policies on *identical* offered load, removing
closed-loop feedback effects from the comparison.
"""

from __future__ import annotations

import json
from typing import List, NamedTuple, Optional

from repro.dbms.query import Query, make_phases
from repro.errors import WorkloadError
from repro.patroller.patroller import QueryPatroller
from repro.runtime import TimerService
from repro.workloads.spec import QueryFactory


class TraceEntry(NamedTuple):
    """One recorded statement arrival."""

    time: float
    class_name: str
    client_id: str
    template: str
    kind: str
    cpu_demand: float
    io_demand: float
    rounds: int
    parallelism: int


class WorkloadTrace:
    """An ordered list of statement arrivals."""

    def __init__(self, entries: Optional[List[TraceEntry]] = None) -> None:
        self.entries: List[TraceEntry] = list(entries or [])

    def __len__(self) -> int:
        return len(self.entries)

    def append(self, entry: TraceEntry) -> None:
        """Add one arrival (must be time-ordered)."""
        if self.entries and entry.time < self.entries[-1].time:
            raise WorkloadError("trace entries must be appended in time order")
        self.entries.append(entry)

    @property
    def duration(self) -> float:
        """Time of the last arrival (0 for an empty trace)."""
        return self.entries[-1].time if self.entries else 0.0

    def classes(self) -> List[str]:
        """Distinct class names appearing in the trace."""
        return sorted({e.class_name for e in self.entries})

    # ------------------------------------------------------------------
    # (De)serialisation
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialise to a JSON string."""
        return json.dumps([e._asdict() for e in self.entries])

    @classmethod
    def from_json(cls, text: str) -> "WorkloadTrace":
        """Parse a trace from :meth:`to_json` output."""
        raw = json.loads(text)
        return cls([TraceEntry(**entry) for entry in raw])

    def save(self, path: str) -> None:
        """Write the trace to a file."""
        with open(path, "w") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "WorkloadTrace":
        """Read a trace from a file."""
        with open(path) as handle:
            return cls.from_json(handle.read())


class TraceRecorder:
    """Captures every submitted statement into a :class:`WorkloadTrace`."""

    def __init__(self, sim: TimerService, patroller: QueryPatroller) -> None:
        self.sim = sim
        self.trace = WorkloadTrace()
        patroller.add_submit_listener(self._on_submit)

    def _on_submit(self, query: Query) -> None:
        self.trace.append(
            TraceEntry(
                time=self.sim.now,
                class_name=query.class_name,
                client_id=query.client_id,
                template=query.template,
                kind=query.kind,
                cpu_demand=query.cpu_demand,
                io_demand=query.io_demand,
                rounds=max(1, sum(1 for p in query.phases if p.kind == "cpu")),
                parallelism=query.parallelism,
            )
        )


class TraceReplayer:
    """Replays a trace open-loop against a (possibly different) system.

    Demands are taken verbatim from the trace; costs are re-estimated by
    the *target* system's optimizer, so replaying under a different noise
    setting answers "what would this exact workload have done here".
    """

    def __init__(
        self,
        sim: TimerService,
        patroller: QueryPatroller,
        factory: QueryFactory,
        trace: WorkloadTrace,
        time_scale: float = 1.0,
    ) -> None:
        if time_scale <= 0:
            raise WorkloadError("time_scale must be positive")
        self.sim = sim
        self.patroller = patroller
        self.factory = factory
        self.trace = trace
        self.time_scale = time_scale
        self.replayed = 0
        self._started = False

    def start(self) -> None:
        """Schedule every trace arrival (scaled) from the current instant."""
        if self._started:
            raise WorkloadError("TraceReplayer started twice")
        self._started = True
        origin = self.sim.now
        for entry in self.trace.entries:
            self.sim.schedule_at(
                origin + entry.time * self.time_scale,
                lambda e=entry: self._replay_one(e),
                label="replay:{}".format(entry.class_name),
            )

    def _replay_one(self, entry: TraceEntry) -> None:
        estimator = self.factory.estimator
        query = Query(
            query_id=self.factory.allocate_id(),
            class_name=entry.class_name,
            client_id=entry.client_id,
            template=entry.template,
            kind=entry.kind,
            phases=make_phases(entry.cpu_demand, entry.io_demand, entry.rounds),
            true_cost=estimator.true_cost(entry.cpu_demand, entry.io_demand),
            estimated_cost=estimator.estimate(entry.cpu_demand, entry.io_demand),
        )
        query.parallelism = entry.parallelism
        self.replayed += 1
        self.patroller.submit(query)
