"""Open-loop workload sources.

The paper's experiments are closed-loop (interactive clients, zero think
time), but workload managers in production also face *open* arrival
streams — requests arrive at a rate that does not slow down when the
server does.  :class:`OpenLoopSource` submits queries from a workload mix
as a Poisson process whose rate can be changed at any time (e.g. by a
schedule), which is the classic way to push a system past saturation and
exactly what admission control exists to survive.
"""

from __future__ import annotations

from repro.errors import WorkloadError
from repro.patroller.patroller import QueryPatroller
from repro.runtime import TimerService
from repro.sim.rng import RandomStreams
from repro.workloads.spec import QueryFactory, WorkloadMix


class OpenLoopSource:
    """Poisson arrival process over a workload mix.

    Parameters
    ----------
    sim, patroller, factory, mix, class_name:
        As for :class:`~repro.workloads.client.ClosedLoopClient`.
    rng:
        Random streams; inter-arrival draws use stream
        ``"openloop:<class_name>"``.
    rate:
        Initial arrival rate in statements/second (0 = paused).
    """

    def __init__(
        self,
        sim: TimerService,
        patroller: QueryPatroller,
        factory: QueryFactory,
        mix: WorkloadMix,
        class_name: str,
        rng: RandomStreams,
        rate: float = 0.0,
    ) -> None:
        if rate < 0:
            raise WorkloadError("arrival rate must be non-negative")
        self.sim = sim
        self.patroller = patroller
        self.factory = factory
        self.mix = mix
        self.class_name = class_name
        self.rng = rng
        self._rate = rate
        self._stream = "openloop:{}".format(class_name)
        self.queries_submitted = 0
        self._running = False
        self._next_client = 0

    @property
    def rate(self) -> float:
        """Current arrival rate (statements/second)."""
        return self._rate

    def set_rate(self, rate: float) -> None:
        """Change the arrival rate; takes effect from the next arrival."""
        if rate < 0:
            raise WorkloadError("arrival rate must be non-negative")
        was_paused = self._rate == 0
        self._rate = rate
        if self._running and was_paused and rate > 0:
            self._schedule_next()

    def start(self) -> None:
        """Begin generating arrivals."""
        if self._running:
            raise WorkloadError("OpenLoopSource started twice")
        self._running = True
        if self._rate > 0:
            self._schedule_next()

    def stop(self) -> None:
        """Stop generating (already scheduled arrivals still fire)."""
        self._running = False

    def _schedule_next(self) -> None:
        if not self._running or self._rate <= 0:
            return
        gap = self.rng.exponential(self._stream, 1.0 / self._rate)
        self.sim.schedule(gap, self._arrive, label="openloop:{}".format(self.class_name))

    def _arrive(self) -> None:
        if not self._running or self._rate <= 0:
            return
        # Open-loop semantics: every arrival is its own "connection".
        client_id = "{}-open{}".format(self.class_name, self._next_client)
        self._next_client += 1
        query = self.factory.create(self.mix, self.class_name, client_id)
        self.queries_submitted += 1
        self.patroller.submit(query)
        self._schedule_next()
