"""Workload templates and the query factory.

A :class:`QueryTemplate` describes one statement type by its *true* mean
resource demands; a :class:`WorkloadMix` is a weighted set of templates; and
:class:`QueryFactory` turns a mix into concrete :class:`~repro.dbms.query.Query`
instances: it draws per-instance demands (lognormal variation around the
template means), splits them into alternating CPU/IO phases, prices the true
cost exactly, and asks the optimizer for the (noisy) estimate that all
scheduling decisions will see.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.dbms.optimizer import CostEstimator
from repro.dbms.query import Query, make_phases
from repro.errors import WorkloadError
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class QueryTemplate:
    """One statement type of a workload.

    Parameters
    ----------
    name:
        Template name (e.g. ``"q9"`` or ``"new_order"``).
    kind:
        ``"olap"`` or ``"oltp"``.
    cpu_demand:
        Mean CPU seconds-at-full-speed per instance.
    io_demand:
        Mean IO seconds-at-full-speed per instance.
    rounds:
        Number of CPU→IO interleavings execution is split into.
    weight:
        Relative selection frequency within its mix.
    variability:
        Sigma of the lognormal factor applied to the demands of each
        instance (0 = all instances identical).
    parallelism:
        Intra-query degree of parallelism: each phase executes as this many
        concurrent sub-jobs (DB2's intra-partition parallelism for DSS
        queries).  OLTP statements use 1.
    """

    name: str
    kind: str
    cpu_demand: float
    io_demand: float
    rounds: int = 1
    weight: float = 1.0
    variability: float = 0.20
    parallelism: int = 1

    def validate(self) -> None:
        if self.kind not in ("olap", "oltp"):
            raise WorkloadError("template {!r}: unknown kind {!r}".format(self.name, self.kind))
        if self.cpu_demand < 0 or self.io_demand < 0:
            raise WorkloadError("template {!r}: negative demand".format(self.name))
        if self.cpu_demand == 0 and self.io_demand == 0:
            raise WorkloadError("template {!r}: zero total demand".format(self.name))
        if self.rounds < 1:
            raise WorkloadError("template {!r}: rounds must be >= 1".format(self.name))
        if self.weight <= 0:
            raise WorkloadError("template {!r}: weight must be positive".format(self.name))
        if self.variability < 0:
            raise WorkloadError("template {!r}: negative variability".format(self.name))
        if self.parallelism < 1:
            raise WorkloadError(
                "template {!r}: parallelism must be >= 1".format(self.name)
            )


class WorkloadMix:
    """A weighted set of templates defining one workload class's statements."""

    def __init__(self, name: str, templates: Sequence[QueryTemplate]) -> None:
        if not templates:
            raise WorkloadError("workload mix {!r} has no templates".format(name))
        self.name = name
        self.templates: Tuple[QueryTemplate, ...] = tuple(templates)
        for template in self.templates:
            template.validate()
        self._by_name: Dict[str, QueryTemplate] = {t.name: t for t in self.templates}
        if len(self._by_name) != len(self.templates):
            raise WorkloadError("workload mix {!r} has duplicate template names".format(name))
        self._weights = [t.weight for t in self.templates]
        # Hot-path caches for QueryFactory.create: the selection-stream
        # name, the weight vector as a hashable tuple (the RNG's cdf-cache
        # key), and each template's demand-noise stream name.
        self._mix_stream = "mix:{}".format(name)
        self._weights_key = tuple(self._weights)
        self._demand_streams = {
            t.name: "demand:{}".format(t.name) for t in self.templates
        }

    def __len__(self) -> int:
        return len(self.templates)

    def template(self, name: str) -> QueryTemplate:
        """Look up a template by name."""
        template = self._by_name.get(name)
        if template is None:
            raise WorkloadError(
                "mix {!r} has no template {!r}".format(self.name, name)
            )
        return template

    @property
    def weights(self) -> List[float]:
        """Selection weights aligned with :attr:`templates`."""
        return list(self._weights)

    def mean_true_cost(self, estimator: CostEstimator) -> float:
        """Weight-averaged exact cost of the mix (used for calibration)."""
        total_weight = sum(self._weights)
        return (
            sum(
                t.weight * estimator.true_cost(t.cpu_demand, t.io_demand)
                for t in self.templates
            )
            / total_weight
        )


class QueryFactory:
    """Creates concrete query instances from workload mixes."""

    def __init__(self, estimator: CostEstimator, rng: RandomStreams) -> None:
        self.estimator = estimator
        self.rng = rng
        self._next_id = 1

    @property
    def queries_created(self) -> int:
        """Total instances created."""
        return self._next_id - 1

    def allocate_id(self) -> int:
        """Reserve the next query id (for externally built queries, e.g.
        trace replay)."""
        query_id = self._next_id
        self._next_id += 1
        return query_id

    def create(
        self,
        mix: WorkloadMix,
        class_name: str,
        client_id: str,
        template_name: Optional[str] = None,
    ) -> Query:
        """Instantiate one query.

        Picks a template by weight (or by ``template_name``), perturbs
        demands by the template's variability, and prices the instance.
        """
        if template_name is not None:
            template = mix.template(template_name)
        else:
            index = self.rng.choice_index(mix._mix_stream, mix._weights_key)
            template = mix.templates[index]
        stream = mix._demand_streams[template.name]
        factor = self.rng.lognormal_factor(stream, template.variability)
        cpu_demand = template.cpu_demand * factor
        io_demand = template.io_demand * factor
        true_cost = self.estimator.true_cost(cpu_demand, io_demand)
        estimated_cost = self.estimator.estimate(cpu_demand, io_demand)
        query = Query(
            query_id=self._next_id,
            class_name=class_name,
            client_id=client_id,
            template=template.name,
            kind=template.kind,
            phases=make_phases(cpu_demand, io_demand, template.rounds),
            true_cost=true_cost,
            estimated_cost=estimated_cost,
        )
        query.parallelism = template.parallelism
        self._next_id += 1
        return query
