"""Workload generation (substrate).

TPC-H-like OLAP templates, TPC-C-like OLTP transactions, closed-loop
clients with zero think time, and the reconstructed 18-period intensity
schedule of the paper's Figure 3.
"""

from repro.workloads.client import ClosedLoopClient
from repro.workloads.openloop import OpenLoopSource
from repro.workloads.trace import (
    TraceEntry,
    TraceRecorder,
    TraceReplayer,
    WorkloadTrace,
)
from repro.workloads.schedule import (
    ClientPoolManager,
    PeriodSchedule,
    paper_schedule,
)
from repro.workloads.spec import QueryFactory, QueryTemplate, WorkloadMix
from repro.workloads.tpcc import tpcc_mix
from repro.workloads.tpch import tpch_mix, TPCH_EXCLUDED

__all__ = [
    "QueryTemplate",
    "WorkloadMix",
    "QueryFactory",
    "ClosedLoopClient",
    "OpenLoopSource",
    "WorkloadTrace",
    "TraceEntry",
    "TraceRecorder",
    "TraceReplayer",
    "PeriodSchedule",
    "ClientPoolManager",
    "paper_schedule",
    "tpch_mix",
    "TPCH_EXCLUDED",
    "tpcc_mix",
]
